"""Outstanding-request demand model (Equation 3, Figure 2e).

The paper sizes the number of AxE cores from the number of in-flight
requests needed to keep a link busy:

    O_i = B_i / (sum_k C_k * P_k) * L_i

where ``B_i`` is the link's effective bandwidth, ``L_i`` its round-trip
latency, and ``sum_k C_k * P_k`` the mean request size over the access
mix. This is Little's law with the request rate expressed as
bandwidth / mean request size.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.memstore.links import LinkModel
from repro.memstore.retry import RetryPolicy, expected_attempts


def mean_request_bytes(access_mix: Mapping[int, float]) -> float:
    """Mean request size of an access mix ``{size_bytes: probability}``."""
    if not access_mix:
        raise ConfigurationError("access mix must not be empty")
    total_p = 0.0
    mean = 0.0
    for size, probability in access_mix.items():
        if size <= 0:
            raise ConfigurationError(f"request size must be positive, got {size}")
        if probability < 0:
            raise ConfigurationError(
                f"probability must be non-negative, got {probability}"
            )
        total_p += probability
        mean += size * probability
    if total_p <= 0:
        raise ConfigurationError("access mix probabilities sum to zero")
    return mean / total_p


def outstanding_requests_needed(
    bandwidth: float,
    latency_s: float,
    access_mix: Mapping[int, float],
) -> float:
    """Equation 3: in-flight requests needed to sustain ``bandwidth``."""
    if bandwidth <= 0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
    if latency_s <= 0:
        raise ConfigurationError(f"latency must be positive, got {latency_s}")
    return bandwidth / mean_request_bytes(access_mix) * latency_s


def outstanding_for_link(
    link: LinkModel,
    access_mix: Mapping[int, float],
    target_bandwidth: float = 0.0,
) -> float:
    """Outstanding requests to fill ``link`` (or ``target_bandwidth``)."""
    bandwidth = target_bandwidth if target_bandwidth > 0 else link.peak_bandwidth
    mean = mean_request_bytes(access_mix)
    return outstanding_requests_needed(
        bandwidth, link.latency(int(round(mean))), access_mix
    )


def outstanding_with_faults(
    link: LinkModel,
    access_mix: Mapping[int, float],
    policy: RetryPolicy,
    loss_rate: float = 0.0,
    hedge_rate: float = 0.0,
    target_bandwidth: float = 0.0,
) -> float:
    """Equation 3 re-sized for a faulty link.

    Retries amplify the request stream by the truncated-geometric mean
    attempt count, and hedged reads add ``hedge_rate`` duplicate
    requests per read (by construction of the p99 trigger, roughly
    ``1 - hedge_quantile/100`` of reads hedge). The concurrency budget
    — and hence the Equation-3 AxE core sizing — must absorb both, or
    the link runs below target exactly when the fabric is struggling.
    """
    if not 0 <= hedge_rate <= 1:
        raise ConfigurationError(
            f"hedge_rate must be in [0, 1], got {hedge_rate}"
        )
    amplification = expected_attempts(loss_rate, policy.max_attempts) + hedge_rate
    return amplification * outstanding_for_link(
        link, access_mix, target_bandwidth=target_bandwidth
    )


def achieved_bandwidth(
    link: LinkModel,
    access_mix: Mapping[int, float],
    outstanding: int,
) -> float:
    """Payload bandwidth achieved with a fixed concurrency budget."""
    mean = max(1, int(round(mean_request_bytes(access_mix))))
    return link.effective_bandwidth(mean, outstanding)


def outstanding_table(
    links: Sequence[LinkModel],
    bandwidth_targets: Sequence[float],
    access_mix: Mapping[int, float],
) -> Dict[str, Dict[float, float]]:
    """Figure 2(e): required outstanding requests per (link, target BW).

    Returns ``{link_name: {target_bandwidth: outstanding}}``.
    """
    table: Dict[str, Dict[float, float]] = {}
    mean = int(round(mean_request_bytes(access_mix)))
    for link in links:
        row: Dict[float, float] = {}
        for target in bandwidth_targets:
            row[target] = outstanding_requests_needed(
                target, link.latency(mean), access_mix
            )
        table[link.name] = row
    return table
