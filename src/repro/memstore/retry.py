"""Deadline-bounded retry/backoff/hedging policy for remote reads.

Fine-grained remote access is where tail latency bites hardest: a
single multi-hop sampling request issues thousands of 8-64B reads, so
one slow or lost read stalls the whole subgraph. The policy below is
the standard tail-tolerant recipe:

* a per-attempt **timeout** converts a lost request or a dead replica
  into a bounded wait instead of a hang,
* **exponential backoff** between attempts keeps retries from piling
  onto a struggling shard,
* an overall **deadline** bounds the total time a read may consume
  before the caller degrades,
* an optional **hedged read**: if the first response has not arrived
  after a p99-derived delay, issue the same read to a *different*
  replica and take whichever answers first (cancelling the loser) —
  "The Tail at Scale" style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout, backoff, deadline, and hedging parameters for one read.

    Parameters
    ----------
    attempt_timeout_s:
        Time after which one attempt (and its hedge, if any) is
        abandoned and the read retries on the next replica.
    deadline_s:
        Total budget for the read across all attempts and backoffs;
        when exhausted the read fails (degraded completion upstream).
    max_attempts:
        Attempt count bound (primary try plus retries).
    backoff_base_s:
        Backoff before the first retry; doubles (by default) per retry.
    backoff_multiplier:
        Growth factor of the exponential backoff.
    backoff_max_s:
        Cap on a single backoff interval.
    hedge:
        Enable hedged second reads.
    hedge_quantile:
        Latency quantile (over recently observed read latencies) that
        sets the hedge trigger delay — hedging past ~p95/p99 bounds the
        extra load to a few percent of reads.
    hedge_min_samples:
        Observed-latency samples required before derived hedging kicks
        in (avoids hedging off a cold, noisy estimate).
    hedge_delay_s:
        Explicit hedge delay override; ``None`` derives it from the
        observed ``hedge_quantile``.
    """

    attempt_timeout_s: float = 100e-6
    deadline_s: float = 10e-3
    max_attempts: int = 5
    backoff_base_s: float = 20e-6
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2e-3
    hedge: bool = True
    hedge_quantile: float = 99.0
    hedge_min_samples: int = 32
    hedge_delay_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.attempt_timeout_s <= 0:
            raise ConfigurationError(
                f"attempt_timeout_s must be positive, got {self.attempt_timeout_s}"
            )
        if self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.max_attempts <= 0:
            raise ConfigurationError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff intervals must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if not 0 < self.hedge_quantile <= 100:
            raise ConfigurationError(
                f"hedge_quantile must be in (0, 100], got {self.hedge_quantile}"
            )
        if self.hedge_min_samples <= 0:
            raise ConfigurationError(
                f"hedge_min_samples must be positive, got {self.hedge_min_samples}"
            )
        if self.hedge_delay_s is not None and self.hedge_delay_s <= 0:
            raise ConfigurationError(
                f"hedge_delay_s must be positive, got {self.hedge_delay_s}"
            )

    def backoff_s(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0 = first retry)."""
        if retry_index < 0:
            raise ConfigurationError(
                f"retry_index must be non-negative, got {retry_index}"
            )
        return min(
            self.backoff_base_s * self.backoff_multiplier**retry_index,
            self.backoff_max_s,
        )


def expected_attempts(loss_rate: float, max_attempts: int) -> float:
    """Mean attempts per read when each attempt is lost with ``loss_rate``.

    Truncated-geometric mean: ``sum_{i=0}^{A-1} loss^i``. This is the
    request-amplification factor retries impose on the link, used to
    re-size the Equation-3 outstanding-request budget under faults.
    """
    if not 0 <= loss_rate < 1:
        raise ConfigurationError(
            f"loss_rate must be in [0, 1), got {loss_rate}"
        )
    if max_attempts <= 0:
        raise ConfigurationError(
            f"max_attempts must be positive, got {max_attempts}"
        )
    if loss_rate == 0.0:
        return 1.0
    return (1.0 - loss_rate**max_attempts) / (1.0 - loss_rate)
