"""Online-mutation ingest path: a PartitionedStore over a DynamicGraph.

E-commerce graphs mutate continuously (§3.1: "the data size keeps
expanding"), and AliGraph — the framework layer the reproduction models
— supports dynamic graphs. :class:`DynamicPartitionedStore` closes the
gap between :class:`~repro.graph.dynamic.DynamicGraph` (delta-CSR +
compaction, previously an island) and the serving stack: it speaks the
full :class:`~repro.memstore.store.PartitionedStore` read API, accepts
interleaved mutations via :meth:`apply`, and guarantees that one
multi-hop sample reads one consistent snapshot even while edges land
and compaction swaps the CSR base underneath it.

Consistency model
-----------------
* :meth:`read_view` pins a :class:`~repro.graph.dynamic.GraphView`
  (an immutable epoch token) for the duration of a ``with`` block;
  every read inside resolves against that view. The samplers wrap each
  ``sample()`` call in it, so a 3-hop walk never sees hop 2 against a
  newer epoch than hop 1 — the "no torn multi-hop reads" invariant.
* Mutations applied while a view is pinned land in the underlying
  graph immediately but stay invisible to the pinned reader; the next
  unpinned read (or the next ``read_view``) observes them.
* Every mutated source node is invalidated in each registered
  :class:`~repro.framework.cache.HotNodeCache` (both facets). Nodes
  mutated *while pinned* are re-invalidated when the pin is released:
  the pinned sampler may legitimately re-cache pinned-epoch data after
  the mutation-time invalidation ran, and without the unpin sweep that
  stale entry would outlive the pin.

Accounting
----------
At mutation rate zero the store is accounting-identical (and
result-identical) to a static :class:`PartitionedStore` over the
equivalent CSR: base-resident adjacency costs the same index lookup +
offset pair + ID block. Delta edges cost one *extra* structure access
(the append-log block read, ``delta_degree * id_bytes``), recorded only
when the delta portion is non-empty and tallied in ``delta_hits`` /
``delta_edges_read`` — so the overhead of reading the uncompacted log
is visible in ``AccessSummary`` and the counters, and vanishes
byte-for-byte when no mutations ever landed.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.framework.cache import HotNodeCache
from repro.graph.dynamic import DynamicGraph, GraphView
from repro.graph.partition import Partitioner
from repro.memstore.store import AccessKind, NeighborBatch, PartitionedStore

#: Mutation kinds accepted by :meth:`DynamicPartitionedStore.apply`.
EDGE = "edge"
NODE = "node"


@dataclass(frozen=True)
class Mutation:
    """One graph mutation event on the ingest timeline.

    ``kind == "edge"`` adds the directed edge ``src -> dst``;
    ``kind == "node"`` appends a fresh node (``src``/``dst`` unused)
    and, when ``attach_to`` is set, one edge from the new node to it.
    ``time_s`` places the event on a serving timeline (0.0 for
    benchmarks that apply mutations between batches).
    """

    kind: str
    src: int = 0
    dst: int = 0
    attach_to: Optional[int] = None
    time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in (EDGE, NODE):
            raise ConfigurationError(
                f"mutation kind must be '{EDGE}' or '{NODE}', got {self.kind!r}"
            )


def growth_trace(
    num_nodes: int,
    num_events: int,
    new_node_probability: float = 0.05,
    duration_s: float = 0.0,
    seed: int = 0,
) -> List[Mutation]:
    """Deterministic preferential-attachment mutation trace.

    The online twin of :func:`repro.graph.dynamic.simulate_growth`:
    same Zipf-biased destination choice (draws shifted by one so node 0
    is the most popular target), but emitted as a replayable list of
    :class:`Mutation` events — optionally spread uniformly over
    ``duration_s`` for gateway timelines — instead of applied in place.
    ``num_nodes`` is the node-ID space at trace start; node events
    enlarge it for subsequent draws exactly like ``simulate_growth``.
    """
    if num_nodes <= 0:
        raise ConfigurationError(f"num_nodes must be positive, got {num_nodes}")
    if num_events < 0:
        raise ConfigurationError(f"num_events must be >= 0, got {num_events}")
    if not 0.0 <= new_node_probability <= 1.0:
        raise ConfigurationError(
            f"new_node_probability must be in [0, 1], got {new_node_probability}"
        )
    rng = np.random.default_rng(seed)
    trace: List[Mutation] = []
    population = num_nodes
    for i in range(num_events):
        time_s = duration_s * i / num_events if duration_s else 0.0
        if rng.random() < new_node_probability:
            attach = int(rng.integers(0, population))
            trace.append(Mutation(NODE, attach_to=attach, time_s=time_s))
            population += 1
        else:
            src = int(rng.integers(0, population))
            dst = (int(rng.zipf(1.8)) - 1) % population
            trace.append(Mutation(EDGE, src=src, dst=dst, time_s=time_s))
    return trace


@dataclass
class IngestStats:
    """Counters for the online-mutation path."""

    #: Mutations applied via :meth:`DynamicPartitionedStore.apply`.
    mutations: int = 0
    edges_added: int = 0
    nodes_added: int = 0
    #: Cache entries dropped across all registered caches.
    cache_invalidations: int = 0
    #: Neighbor reads whose answer included uncompacted delta edges.
    delta_hits: int = 0
    #: Total delta edges returned by those reads (occurrence-weighted).
    delta_edges_read: int = 0
    #: Compactions observed on the backing graph while this store owned it.
    compactions: int = 0


class DynamicPartitionedStore(PartitionedStore):
    """A :class:`PartitionedStore` whose graph accepts online mutations.

    ``self.graph`` is always a :class:`~repro.graph.dynamic.GraphView`:
    the *live* view (refreshed after each mutation batch) when no read
    is pinned, or the *pinned* snapshot inside :meth:`read_view`. All
    inherited attribute-path code works unchanged against the view's
    CSR-compatible surface; the neighbor path is overridden because the
    base implementation indexes the CSR arrays directly.

    The fault-injection ``reliability`` path is not supported on the
    mutable store (replicated append logs are future work) — pass
    ``reliability=None``.
    """

    def __init__(
        self,
        dynamic: DynamicGraph,
        partitioner: Partitioner,
        index_entry_bytes: int = 16,
        offset_entry_bytes: int = 16,
        id_bytes: int = 8,
        reliability: Optional[object] = None,
    ) -> None:
        if reliability is not None:
            raise ConfigurationError(
                "DynamicPartitionedStore does not support a reliability path; "
                "use a static PartitionedStore for fault-injection studies"
            )
        self.dynamic = dynamic
        super().__init__(
            dynamic.view(),
            partitioner,
            index_entry_bytes=index_entry_bytes,
            offset_entry_bytes=offset_entry_bytes,
            id_bytes=id_bytes,
            reliability=None,
        )
        self.ingest_stats = IngestStats()
        self._caches: List[HotNodeCache] = []
        self._pin_depth = 0
        #: Nodes mutated while a view was pinned: their cache entries
        #: must be invalidated *again* on unpin (see module docstring).
        self._touched_since_pin: Set[int] = set()
        #: Distinct epochs observed by reads inside the innermost
        #: pinned window — the "no torn multi-hop reads" witness.
        self._sample_epochs: Set[int] = set()
        self._last_sample_epochs: Tuple[int, ...] = ()
        self._seen_compactions = dynamic.compactions

    # ------------------------------------------------------------- views
    @property
    def view(self) -> GraphView:
        """The view reads currently resolve against (pinned or live)."""
        return self.graph

    @property
    def epoch(self) -> int:
        """Epoch of the current read view."""
        return self.graph.epoch

    def refresh(self) -> GraphView:
        """Re-mint the live view from the underlying graph.

        No-op while a read is pinned: the pinned snapshot must keep
        serving its epoch until the pin is released.
        """
        if self._pin_depth == 0:
            self.graph = self.dynamic.view()
        return self.graph

    @contextlib.contextmanager
    def read_view(self) -> Iterator["DynamicPartitionedStore"]:
        """Pin one epoch for a whole multi-hop read (reentrant).

        On entry (outermost only) the live view is re-minted and
        frozen; every read inside the block resolves against it and
        records its epoch into the torn-read witness set. On exit the
        pin is released, the live view refreshed, and any node mutated
        during the window has its cache entries invalidated again —
        the pinned reader may have re-cached pinned-epoch data after
        the mutation-time invalidation.
        """
        if self._pin_depth == 0:
            self.graph = self.dynamic.view()
            self._sample_epochs = set()
        self._pin_depth += 1
        try:
            yield self
        finally:
            self._pin_depth -= 1
            if self._pin_depth == 0:
                self._last_sample_epochs = tuple(sorted(self._sample_epochs))
                touched = self._touched_since_pin
                self._touched_since_pin = set()
                # Sorted sweep: cache_invalidations is occurrence-
                # accounted, and set order varies per process.
                for node in sorted(touched):
                    self._invalidate_node(node)
                self.graph = self.dynamic.view()

    @property
    def pinned(self) -> bool:
        return self._pin_depth > 0

    @property
    def last_sample_epochs(self) -> Tuple[int, ...]:
        """Distinct epochs observed by the most recent pinned read.

        The consistency invariant is ``len(...) <= 1``: a multi-hop
        sample that touched the store observed exactly one epoch.
        """
        return self._last_sample_epochs

    def _observe_epoch(self) -> None:
        if self._pin_depth:
            self._sample_epochs.add(self.graph.epoch)

    # --------------------------------------------------------------- caches
    def register_cache(self, cache: HotNodeCache) -> None:
        """Subscribe a cache to invalidation on mutated nodes."""
        if cache not in self._caches:
            self._caches.append(cache)

    def _invalidate_node(self, node: int) -> None:
        for cache in self._caches:
            if cache.invalidate(node):
                self.ingest_stats.cache_invalidations += 1

    # ------------------------------------------------------------ mutations
    def apply(self, mutations: Iterable[Mutation]) -> int:
        """Apply a batch of mutations to the underlying graph.

        Touched source nodes are invalidated in every registered cache
        immediately (and again on unpin if a read is pinned). Returns
        the number of mutations applied. Compaction may run mid-batch
        when the delta crosses its threshold; pinned views are immune
        by construction.
        """
        applied = 0
        for mutation in mutations:
            if mutation.kind == NODE:
                new = self.dynamic.add_node()
                self.ingest_stats.nodes_added += 1
                if mutation.attach_to is not None:
                    self.dynamic.add_edge(new, mutation.attach_to)
                    self.ingest_stats.edges_added += 1
                    self._note_touched(new)
            else:
                self.dynamic.add_edge(mutation.src, mutation.dst)
                self.ingest_stats.edges_added += 1
                self._note_touched(mutation.src)
            applied += 1
        self.ingest_stats.mutations += applied
        if self.dynamic.compactions != self._seen_compactions:
            self.ingest_stats.compactions += (
                self.dynamic.compactions - self._seen_compactions
            )
            self._seen_compactions = self.dynamic.compactions
        if applied:
            self.refresh()
        return applied

    def _note_touched(self, node: int) -> None:
        self._invalidate_node(node)
        if self._pin_depth:
            self._touched_since_pin.add(node)

    # --------------------------------------------------------------- reads
    def get_neighbors(
        self, node: int, from_partition: Optional[int] = None
    ) -> np.ndarray:
        """Adjacency of ``node`` as of the current view's epoch.

        Accounting matches the static store for the base-resident
        block (index + offset pair + ID block); a non-empty delta
        portion adds one extra structure access for the append-log
        block and bumps the delta counters.
        """
        self._observe_epoch()
        view = self.graph
        local = bool(
            self._locality(np.asarray([node], dtype=np.int64), from_partition)[0]
        )
        neighbors = view.neighbors(node)
        base_deg = view.base_degree(node)
        delta_deg = view.delta_degree(node)
        self._record(AccessKind.STRUCTURE, self.index_entry_bytes, local)
        self._record(AccessKind.STRUCTURE, self.offset_entry_bytes, local)
        if base_deg:
            self._record(AccessKind.STRUCTURE, base_deg * self.id_bytes, local)
        if delta_deg:
            self._record(AccessKind.STRUCTURE, delta_deg * self.id_bytes, local)
            self.ingest_stats.delta_hits += 1
            self.ingest_stats.delta_edges_read += delta_deg
        return neighbors

    def get_neighbors_batch(
        self,
        nodes: Sequence[int],
        from_partition: Optional[int] = None,
        counts: Optional[np.ndarray] = None,
        degraded_ok: bool = False,
    ) -> NeighborBatch:
        """Vectorized adjacency gather against the current view.

        Per node the accounting equals ``counts[i]`` calls of
        :meth:`get_neighbors` (index + offset + base ID block + delta
        ID block where non-empty); every node is served — there is no
        reliability path to degrade.
        """
        self._observe_epoch()
        view = self.graph
        nodes = np.asarray(nodes, dtype=np.int64)
        if counts is None:
            counts = np.ones(nodes.shape, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != nodes.shape:
                raise ConfigurationError(
                    f"counts shape {counts.shape} != nodes shape {nodes.shape}"
                )
        values, offsets, base_deg, delta_deg = view.gather(nodes)
        locality = self._locality(nodes, from_partition)
        self._record_batch(
            AccessKind.STRUCTURE,
            np.full(nodes.shape, self.index_entry_bytes, dtype=np.int64),
            locality,
            counts,
        )
        self._record_batch(
            AccessKind.STRUCTURE,
            np.full(nodes.shape, self.offset_entry_bytes, dtype=np.int64),
            locality,
            counts,
        )
        has_base = base_deg > 0
        if has_base.any():
            self._record_batch(
                AccessKind.STRUCTURE,
                base_deg[has_base] * self.id_bytes,
                locality[has_base],
                counts[has_base],
            )
        has_delta = delta_deg > 0
        if has_delta.any():
            self._record_batch(
                AccessKind.STRUCTURE,
                delta_deg[has_delta] * self.id_bytes,
                locality[has_delta],
                counts[has_delta],
            )
            self.ingest_stats.delta_hits += int(counts[has_delta].sum())
            self.ingest_stats.delta_edges_read += int(
                (delta_deg[has_delta] * counts[has_delta]).sum()
            )
        served = np.ones(nodes.shape, dtype=bool)
        return NeighborBatch(nodes, values, offsets, served, 0)

    def get_attributes_batch(
        self,
        nodes: Sequence[int],
        from_partition: Optional[int] = None,
        counts: Optional[np.ndarray] = None,
        degraded_ok: bool = False,
    ):
        self._observe_epoch()
        return super().get_attributes_batch(
            nodes, from_partition=from_partition, counts=counts,
            degraded_ok=degraded_ok,
        )

    def get_attributes(
        self,
        nodes: Sequence[int],
        from_partition: Optional[int] = None,
        dedup: bool = False,
    ) -> np.ndarray:
        self._observe_epoch()
        return super().get_attributes(
            nodes, from_partition=from_partition, dedup=dedup
        )
