"""External-ID hash index.

Industrial graphs address nodes by arbitrary 64-bit external IDs (user
IDs, item IDs), not dense offsets; the in-memory service resolves them
through a hash index before any CSR access — the per-node index entry
the footprint model (Figure 2a) charges 64B for, and the "index lookup"
structure access the store records (Figure 2c).

This is a real open-addressing (linear probing) table over NumPy
arrays, sized with a bounded load factor, with the byte accounting the
footprint model assumes.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import CapacityError, ConfigurationError, GraphError

_EMPTY = np.uint64(0xFFFFFFFFFFFFFFFF)
_MULTIPLIER = 0x9E3779B97F4A7C15
_MASK64 = 0xFFFFFFFFFFFFFFFF


class ExternalIdIndex:
    """Open-addressing map: external 64-bit ID -> dense internal ID."""

    def __init__(self, capacity: int, max_load: float = 0.7) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if not 0.1 <= max_load < 1.0:
            raise ConfigurationError(
                f"max_load must be in [0.1, 1.0), got {max_load}"
            )
        slots = 1
        while slots * max_load < capacity:
            slots *= 2
        self._slots = slots
        self._mask = np.uint64(slots - 1)
        self.max_load = max_load
        self._keys = np.full(slots, _EMPTY, dtype=np.uint64)
        self._values = np.zeros(slots, dtype=np.int64)
        self._count = 0
        self.probe_count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def load_factor(self) -> float:
        return self._count / self._slots

    def _slot(self, key: np.uint64) -> int:
        mixed = (int(key) * _MULTIPLIER) & _MASK64
        return (mixed >> 17) & int(self._mask)

    def insert(self, external_id: int, internal_id: int) -> None:
        """Map an external ID; re-inserting an existing key updates it."""
        key = np.uint64(external_id)
        if key == _EMPTY:
            raise ConfigurationError("the all-ones key is reserved")
        if self._count >= self._slots * self.max_load:
            raise CapacityError(
                f"index full at load {self.load_factor:.2f} "
                f"({self._count} entries)"
            )
        slot = self._slot(key)
        while True:
            if self._keys[slot] == _EMPTY:
                self._keys[slot] = key
                self._values[slot] = internal_id
                self._count += 1
                return
            if self._keys[slot] == key:
                self._values[slot] = internal_id
                return
            slot = (slot + 1) % self._slots

    def lookup(self, external_id: int) -> Optional[int]:
        """Resolve an external ID; ``None`` when absent."""
        key = np.uint64(external_id)
        slot = self._slot(key)
        while True:
            self.probe_count += 1
            if self._keys[slot] == _EMPTY:
                return None
            if self._keys[slot] == key:
                return int(self._values[slot])
            slot = (slot + 1) % self._slots

    def lookup_many(self, external_ids: Iterable[int]) -> np.ndarray:
        """Resolve a batch; raises on any missing ID."""
        out = np.empty(len(list(external_ids)) if not hasattr(external_ids, "__len__") else len(external_ids), dtype=np.int64)
        for position, external_id in enumerate(external_ids):
            internal = self.lookup(int(external_id))
            if internal is None:
                raise GraphError(f"external ID {external_id} not in index")
            out[position] = internal
        return out

    @classmethod
    def build(cls, external_ids: np.ndarray, max_load: float = 0.7) -> "ExternalIdIndex":
        """Index a vector of external IDs to dense [0, n) internals."""
        external_ids = np.asarray(external_ids, dtype=np.uint64)
        if external_ids.size == 0:
            raise ConfigurationError("cannot build an empty index")
        if np.unique(external_ids).size != external_ids.size:
            raise ConfigurationError("external IDs must be unique")
        index = cls(external_ids.size, max_load=max_load)
        for internal, external in enumerate(external_ids):
            index.insert(int(external), internal)
        return index

    def nbytes(self) -> int:
        """Actual memory held by the table (keys + values)."""
        return int(self._keys.nbytes + self._values.nbytes)

    def bytes_per_entry(self) -> float:
        """Amortized bytes per indexed node (compare with the footprint
        model's 64B/node assumption)."""
        if self._count == 0:
            return 0.0
        return self.nbytes() / self._count

    def mean_probes_per_lookup(self, sample: np.ndarray) -> float:
        """Measured probe chain length for a sample of present keys."""
        before = self.probe_count
        for external_id in sample:
            self.lookup(int(external_id))
        return (self.probe_count - before) / max(1, len(sample))
