"""Memory footprint model for the distributed graph store (Figure 2a).

Full-scale footprints are computed analytically from the Table 2 specs.
The model accounts for what an in-memory graph service actually stores:

* graph structure: one 8-byte offset per node plus one 8-byte neighbor ID
  per edge;
* a per-node index entry (hash bucket + pointers) so arbitrary 64-bit
  external IDs resolve to storage offsets;
* node attributes as float32 rows, inflated by a serialization/alignment
  multiplier (AliGraph stores attributes with framing and type tags, and
  keeps slack for in-place updates).

The same model yields the "minimal number of servers" bars in Figure 2(a)
given a per-server usable memory capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.graph.datasets import DatasetSpec
from repro.units import GB, format_bytes


@dataclass(frozen=True)
class FootprintReport:
    """Footprint breakdown for one dataset at full scale."""

    name: str
    structure_bytes: int
    index_bytes: int
    attribute_bytes: int
    min_servers: int

    @property
    def total_bytes(self) -> int:
        """Total in-memory footprint."""
        return self.structure_bytes + self.index_bytes + self.attribute_bytes

    def __str__(self) -> str:
        return (
            f"{self.name}: total={format_bytes(self.total_bytes)} "
            f"(structure={format_bytes(self.structure_bytes)}, "
            f"index={format_bytes(self.index_bytes)}, "
            f"attributes={format_bytes(self.attribute_bytes)}), "
            f"min_servers={self.min_servers}"
        )


class FootprintModel:
    """Analytical footprint model.

    Parameters
    ----------
    bytes_per_offset:
        CSR offset entry size per node.
    bytes_per_edge:
        Neighbor ID size per edge.
    index_bytes_per_node:
        Hash-index overhead per node (bucket entry, external ID, pointer).
    attr_value_bytes:
        Bytes per attribute element (float32).
    attr_overhead:
        Multiplier on raw attribute bytes for serialization/alignment.
    server_capacity_bytes:
        Usable DRAM per server for graph data.
    """

    def __init__(
        self,
        bytes_per_offset: int = 8,
        bytes_per_edge: int = 8,
        index_bytes_per_node: int = 64,
        attr_value_bytes: int = 4,
        attr_overhead: float = 2.0,
        server_capacity_bytes: int = 640 * GB,
    ) -> None:
        if min(bytes_per_offset, bytes_per_edge, index_bytes_per_node) < 0:
            raise ConfigurationError("per-item byte sizes must be non-negative")
        if attr_value_bytes <= 0:
            raise ConfigurationError(
                f"attr_value_bytes must be positive, got {attr_value_bytes}"
            )
        if attr_overhead < 1.0:
            raise ConfigurationError(
                f"attr_overhead must be >= 1.0, got {attr_overhead}"
            )
        if server_capacity_bytes <= 0:
            raise ConfigurationError(
                f"server_capacity_bytes must be positive, got {server_capacity_bytes}"
            )
        self.bytes_per_offset = bytes_per_offset
        self.bytes_per_edge = bytes_per_edge
        self.index_bytes_per_node = index_bytes_per_node
        self.attr_value_bytes = attr_value_bytes
        self.attr_overhead = attr_overhead
        self.server_capacity_bytes = server_capacity_bytes

    def structure_bytes(self, spec: DatasetSpec) -> int:
        """Bytes for CSR offsets and neighbor IDs."""
        return (
            spec.num_nodes * self.bytes_per_offset
            + spec.num_edges * self.bytes_per_edge
        )

    def index_bytes(self, spec: DatasetSpec) -> int:
        """Bytes for the node-ID hash index."""
        return spec.num_nodes * self.index_bytes_per_node

    def attribute_bytes(self, spec: DatasetSpec) -> int:
        """Bytes for node attributes including serialization overhead."""
        raw = spec.num_nodes * spec.attr_len * self.attr_value_bytes
        return int(raw * self.attr_overhead)

    def report(self, spec: DatasetSpec) -> FootprintReport:
        """Full footprint breakdown plus minimal server count."""
        structure = self.structure_bytes(spec)
        index = self.index_bytes(spec)
        attrs = self.attribute_bytes(spec)
        total = structure + index + attrs
        min_servers = -(-total // self.server_capacity_bytes)  # ceil division
        return FootprintReport(spec.name, structure, index, attrs, int(min_servers))

    def min_servers(self, spec: DatasetSpec) -> int:
        """Minimal number of servers to hold the dataset in memory."""
        return self.report(spec).min_servers

    def min_instances(self, spec: DatasetSpec, instance_memory_bytes: int) -> int:
        """Minimal number of cloud instances with the given DRAM quota.

        Figure 20 counts instances (whose memory quota is far below a
        physical server's) rather than physical servers.
        """
        if instance_memory_bytes <= 0:
            raise ConfigurationError(
                f"instance_memory_bytes must be positive, got {instance_memory_bytes}"
            )
        total = self.report(spec).total_bytes
        return int(-(-total // instance_memory_bytes))
