"""Replica placement for the partitioned graph store.

The paper's MoF fabric pulls fine-grained reads across machines, which
means the memory path — not just the serving path — sits across failure
domains. AliGraph-style deployments keep R copies of every partition
and spread them so that no single rack/power domain holds two copies of
the same shard. :class:`ReplicaPlacement` is the single source of truth
for "which replicas can serve partition p, and where do they live".

Placement rule: replica ``r`` of partition ``p`` lives in failure
domain ``(p + r) % num_domains``. With ``num_domains >=
replication_factor`` this guarantees the copies of one partition occupy
``replication_factor`` *distinct* domains (rotating chain placement,
the same shape as consistent-hashing successor lists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError, PartitionError


@dataclass(frozen=True)
class ReplicaId:
    """One physical copy of one partition."""

    #: The logical shard this copy holds.
    partition: int
    #: Copy index within the partition (0 is the primary).
    replica: int
    #: Failure domain (rack / power feed) the copy lives in.
    domain: int


class ReplicaPlacement:
    """Maps each partition onto R replicas across failure domains.

    Parameters
    ----------
    num_partitions:
        Logical shards of the graph.
    replication_factor:
        Copies kept of each partition (R). ``1`` means no redundancy.
    num_domains:
        Failure domains available; defaults to
        ``max(num_partitions, replication_factor)``.
    """

    def __init__(
        self,
        num_partitions: int,
        replication_factor: int = 2,
        num_domains: Optional[int] = None,
    ) -> None:
        if num_partitions <= 0:
            raise ConfigurationError(
                f"num_partitions must be positive, got {num_partitions}"
            )
        if replication_factor <= 0:
            raise ConfigurationError(
                f"replication_factor must be positive, got {replication_factor}"
            )
        if num_domains is None:
            num_domains = max(num_partitions, replication_factor)
        if num_domains < replication_factor:
            raise ConfigurationError(
                f"need at least {replication_factor} failure domains to place "
                f"{replication_factor} replicas apart, got {num_domains}"
            )
        self.num_partitions = num_partitions
        self.replication_factor = replication_factor
        self.num_domains = num_domains
        self._replicas: Tuple[Tuple[ReplicaId, ...], ...] = tuple(
            tuple(
                ReplicaId(
                    partition=p, replica=r, domain=(p + r) % num_domains
                )
                for r in range(replication_factor)
            )
            for p in range(num_partitions)
        )

    def replicas_of(self, partition: int) -> Tuple[ReplicaId, ...]:
        """All copies of ``partition``, primary first."""
        if not 0 <= partition < self.num_partitions:
            raise PartitionError(
                f"partition {partition} outside [0, {self.num_partitions})"
            )
        return self._replicas[partition]

    def primary_of(self, partition: int) -> ReplicaId:
        """The primary (replica 0) copy of ``partition``."""
        return self.replicas_of(partition)[0]

    def replicas_in_domain(self, domain: int) -> Tuple[ReplicaId, ...]:
        """Every replica hosted by failure domain ``domain``."""
        if not 0 <= domain < self.num_domains:
            raise ConfigurationError(
                f"domain {domain} outside [0, {self.num_domains})"
            )
        return tuple(
            replica
            for partition in self._replicas
            for replica in partition
            if replica.domain == domain
        )
