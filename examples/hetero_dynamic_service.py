#!/usr/bin/env python3
"""AliGraph's wider feature set: heterogeneous, dynamic, and the
service view.

1. Heterogeneous e-commerce graph (user/item/shop) with metapath
   sampling (user -click-> item -in-> shop).
2. Dynamic graph growth with LSM-style compaction and sampling over
   snapshots.
3. The service-level queueing simulation behind Challenge-1: latency
   percentiles and deadline misses under load.

Run:  python examples/hetero_dynamic_service.py
"""

import numpy as np

from repro.framework.service import ServiceConfig, run_service
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, simulate_growth
from repro.graph.generators import power_law_graph
from repro.graph.hetero import make_ecommerce_graph


def main():
    print("=== heterogeneous e-commerce graph ===")
    shop_graph = make_ecommerce_graph(
        num_users=2000, num_items=5000, num_shops=100, seed=0
    )
    for key, csr in shop_graph.relations.items():
        print(f"  {key[0]:>5} -{key[1]:^6}-> {key[2]:<5} {csr.num_edges:>7} edges")
    rng = np.random.default_rng(0)
    layers = shop_graph.sample_metapath(
        roots=np.arange(16),
        metapath=[("user", "click", "item"), ("item", "in", "shop")],
        fanouts=(8, 1),
        rng=rng,
    )
    print(f"  metapath sample user->item->shop: "
          f"{[tuple(layer.shape) for layer in layers]}")
    unique_shops = len(np.unique(layers[2]))
    print(f"  16 users reach {unique_shops} distinct shops\n")

    print("=== dynamic graph growth ===")
    graph = DynamicGraph(power_law_graph(1000, 5.0, seed=1), compact_threshold=2000)
    simulate_growth(graph, 5000, new_node_probability=0.05, seed=2)
    print(f"  after 5000 events: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges, {graph.compactions} compactions, "
          f"{graph.delta_edges} edges still in the delta")
    snapshot = graph.snapshot()
    in_degrees = np.bincount(snapshot.indices, minlength=snapshot.num_nodes)
    print(f"  hottest node holds {in_degrees.max()} in-edges "
          f"(preferential attachment)\n")

    print("=== Challenge-1: service latency under load ===")
    quiet = run_service(ServiceConfig(num_workers=1, batches_per_worker=6))
    loaded = run_service(ServiceConfig(num_workers=32, batches_per_worker=3))
    print(f"  quiet : p50 {1e3 * quiet.p50:6.2f}ms  p99 {1e3 * quiet.p99:6.2f}ms")
    print(f"  loaded: p50 {1e3 * loaded.p50:6.2f}ms  p99 {1e3 * loaded.p99:6.2f}ms "
          f"(max server queue {loaded.server_max_queue})")
    deadline = quiet.p99 * 1.2
    print(f"  with a {1e3 * deadline:.2f}ms inference deadline, the loaded "
          f"system misses {100 * loaded.deadline_miss_rate(deadline):.0f}% "
          f"of batches — throughput alone cannot fix latency "
          f"(the paper's Challenge-1)")


if __name__ == "__main__":
    main()
