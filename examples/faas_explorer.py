#!/usr/bin/env python3
"""FaaS design-space explorer: the Section 6/7 evaluation in one run.

Prints Figures 17-21: per-instance throughput, normalized performance
per dollar, the geomean summaries, and the minimal hosting cost, for
all eight Table 8 architectures over the six Table 2 graphs and three
Table 12 instance sizes.

Run:  python examples/faas_explorer.py [--gpus-per-12gbps N]
"""

import argparse

from repro.faas.dse import FaasDse
from repro.faas.report import (
    arch_geomeans,
    arch_perf_geomeans,
    format_min_cost_table,
    format_perf_per_dollar_table,
    format_perf_table,
)


ARCH_ORDER = (
    "base.decp", "cost-opt.decp", "comm-opt.decp", "mem-opt.decp",
    "base.tc", "cost-opt.tc", "comm-opt.tc", "mem-opt.tc",
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--gpus-per-12gbps",
        type=float,
        default=1.0,
        help="GPU provisioning rule (Limitation-2 sensitivity; paper "
        "default 1, deep-model scenario 10)",
    )
    args = parser.parse_args()

    dse = FaasDse(gpus_per_12gbps=args.gpus_per_12gbps)
    results = dse.evaluate_all()
    cpu_results = dse.cpu_baseline_all()

    print("=== Figure 17: sampling performance per instance (batches/s) ===")
    print(format_perf_table(results))

    print("\n=== Figure 18: perf/$ normalized to CPU geomean ===")
    print(format_perf_per_dollar_table(results, cpu_results))

    print("\n=== Figure 19: geomean performance per architecture ===")
    perf = arch_perf_geomeans(results)
    for name in ARCH_ORDER:
        print(f"{name:<15} {perf[name]:>12.0f} roots/s")

    print("\n=== Figure 21: geomean normalized perf/$ (paper: base 2.47/4.11,"
          " comm-opt.tc 7.78, mem-opt.tc 12.58) ===")
    ppd = arch_geomeans(results, cpu_results)
    for name in ARCH_ORDER:
        print(f"{name:<15} {ppd[name]:>8.2f}x")

    print("\n=== Figure 20: minimal hosting cost (normalized to ss CPU) ===")
    print(format_min_cost_table(dse))

    print("\nbottleneck summary (medium instances, ls):")
    from repro.faas.arch import get_architecture

    for name in ARCH_ORDER:
        result = dse.evaluate(get_architecture(name), "medium", "ls")
        print(f"  {name:<15} bound by {result.bottleneck:<12} "
              f"{result.roots_per_second:>10.0f} roots/s")


if __name__ == "__main__":
    main()
