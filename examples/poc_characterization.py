#!/usr/bin/env python3
"""PoC characterization: Figures 2, 14, and 15 in one run.

Characterizes the LSD-GNN workload (footprints, scaling, access mix,
link behaviour), measures the event-simulated PoC against the vCPU
baseline (Figure 14), and validates the analytical model against the
simulation (Figure 15).

Run:  python examples/poc_characterization.py
"""

from repro.framework.cluster import ClusterModel
from repro.framework.cpu_model import CpuSamplingModel, WorkloadShape
from repro.framework.tracing import characterize_access_mix
from repro.graph.datasets import DATASET_ORDER, get_dataset, instantiate_dataset
from repro.memstore.layout import FootprintModel
from repro.memstore.links import get_link
from repro.perfmodel.poc import (
    POC_SWEEP,
    geomean_equivalence,
    poc_vcpu_equivalence,
    validate_model,
)
from repro.units import US, format_bytes


def main():
    print("=== Figure 2(a): memory footprint and minimal servers ===")
    footprint = FootprintModel()
    for name in DATASET_ORDER:
        row = footprint.report(get_dataset(name))
        print(f"{name:<5} {format_bytes(row.total_bytes):>10}  "
              f"min_servers={row.min_servers}")

    print("\n=== Figure 2(b): throughput scaling with servers ===")
    shapes = [WorkloadShape.from_spec(get_dataset(n)) for n in DATASET_ORDER]
    cluster = ClusterModel(CpuSamplingModel())
    for point in cluster.average_scaling_curve(shapes, (1, 5, 15)):
        print(f"{point.num_servers:>3} servers: speedup "
              f"{point.speedup_vs_one:5.2f} (efficiency {point.efficiency:.2f})")

    print("\n=== Figure 2(c): access mix (structure vs attribute) ===")
    for name in DATASET_ORDER:
        graph = instantiate_dataset(name, max_nodes=4000, seed=0)
        mix = characterize_access_mix(graph, name, batch_size=32, num_batches=2)
        print(f"{name:<5} structure accesses: "
              f"{100 * mix.structure_count_fraction:5.1f}% of count, "
              f"{100 * mix.structure_bytes_fraction:5.1f}% of bytes")

    print("\n=== Figure 2(d): latency vs request size ===")
    for link_name in ("local_dram", "pcie_host_dram", "rdma_remote_dram"):
        link = get_link(link_name)
        latencies = "  ".join(
            f"{size}B={link.latency(size) / US:6.2f}us" for size in (8, 64, 1024)
        )
        print(f"{link_name:<17} {latencies}")

    print("\n=== Figure 14: PoC vs vCPU baseline ===")
    rows = poc_vcpu_equivalence(max_nodes=8000, batch_size=96)
    for row in rows:
        print(f"{row.dataset:<5} FPGA {row.fpga_roots_per_s:>9.0f} roots/s  "
              f"= {row.vcpu_equivalence:>6.0f} vCPUs")
    print(f"geomean: one FPGA ~ {geomean_equivalence(rows):.0f} vCPUs "
          "(paper: 894)")

    print("\n=== Figure 15: analytical model validation (first 12 configs) ===")
    graph = instantiate_dataset("ls", max_nodes=8000, seed=0)
    rows = validate_model(graph, POC_SWEEP[:12], batch_size=48)
    for row in rows:
        print(f"{row.point.label:<14} measured {row.measured_roots_per_s:>9.0f}"
              f"  modeled {row.modeled_roots_per_s:>9.0f}"
              f"  err {100 * row.error:4.1f}%  [{row.bottleneck}]")
    mean_error = sum(r.error for r in rows) / len(rows)
    print(f"mean error: {100 * mean_error:.1f}%")


if __name__ == "__main__":
    main()
