#!/usr/bin/env python3
"""End-to-end LSD-GNN: sampling -> graphSAGE -> DSSM, both samplers.

Reproduces the Tech-2 accuracy-parity experiment at small scale: train
a graphSAGE classifier on a synthetic PPI-like multi-label task with
the conventional uniform sampler and with the hardware's streaming
step-based sampler, then train a DSSM link-prediction head on learned
embeddings. Ends with the Figure 3 stage breakdown.

Run:  python examples/end_to_end_gnn.py
"""

import numpy as np

from repro.framework.sampler import MultiHopSampler
from repro.framework.selectors import select_streaming
from repro.graph.csr import CSRGraph
from repro.graph.partition import HashPartitioner
from repro.gnn.e2e import EndToEndModel
from repro.gnn.metrics import hits_at_k
from repro.gnn.models import DSSM, GraphSageEncoder
from repro.gnn.train import Trainer, link_prediction_loss, train_to_convergence
from repro.memstore.store import PartitionedStore


def make_ppi_like(num_nodes=400, num_labels=5, seed=0):
    """Community graph with noisy one-hot attributes (PPI stand-in)."""
    rng = np.random.default_rng(seed)
    communities = rng.integers(0, num_labels, num_nodes)
    attrs = np.eye(num_labels, dtype=np.float32)[communities]
    attrs += 0.3 * rng.standard_normal(attrs.shape).astype(np.float32)
    edges = []
    for node in range(num_nodes):
        same = np.flatnonzero(communities == communities[node])
        for _ in range(6):
            edges.append((node, int(rng.choice(same))))
    graph = CSRGraph.from_edges(num_nodes, edges, node_attr=attrs)
    labels = np.eye(num_labels, dtype=np.int64)[communities]
    return graph, labels


def train_classifier(graph, labels, selector=None, seed=0):
    store = PartitionedStore(graph, HashPartitioner(2))
    kwargs = {} if selector is None else {"selector": selector}
    sampler = MultiHopSampler(store, seed=seed, **kwargs)
    encoder = GraphSageEncoder(graph.attr_len, 16, (5,), seed=seed)
    trainer = Trainer(sampler, encoder, num_labels=labels.shape[1], lr=3.0)
    roots = np.arange(graph.num_nodes)
    train_to_convergence(trainer, roots[:300], labels[:300], epochs=6)
    return trainer, trainer.evaluate(roots[300:], labels[300:])


def train_link_prediction(trainer, graph, seed=0):
    """DSSM on top of frozen graphSAGE embeddings."""
    rng = np.random.default_rng(seed)
    model = DSSM(16, (16, 16), seed=seed)
    sources = rng.integers(0, graph.num_nodes, 64)
    features = trainer._sample_features(sources)
    queries = trainer.encoder.forward(features)
    positives = queries + 0.05 * rng.standard_normal(queries.shape).astype(np.float32)
    negatives = rng.standard_normal((64, 5, 16)).astype(np.float32)
    items = np.concatenate([positives[:, None, :], negatives], axis=1)
    loss = float("nan")
    for _ in range(80):
        scores = model.forward(queries, items)
        loss, grad = link_prediction_loss(scores)
        model.backward(grad)
        model.step(0.1)
    scores = model.forward(queries, items)
    return loss, hits_at_k(scores, 1)


def main():
    graph, labels = make_ppi_like()
    print("=== Tech-2 accuracy parity (paper: 0.548 vs 0.549 on PPI) ===")
    trainer, uniform_f1 = train_classifier(graph, labels, selector=None)
    _t, streaming_f1 = train_classifier(graph, labels, selector=select_streaming)
    print(f"uniform sampler   micro-F1: {uniform_f1:.3f}")
    print(f"streaming sampler micro-F1: {streaming_f1:.3f}")
    print(f"difference: {abs(uniform_f1 - streaming_f1):.3f}\n")

    print("=== DSSM end model (Table 3 application) ===")
    loss, hits = train_link_prediction(trainer, graph)
    print(f"link-prediction loss {loss:.3f}, hits@1 {hits:.2f}\n")

    print("=== Figure 3 stage breakdown (full-scale model) ===")
    model = EndToEndModel()
    for phase, training in (("training", True), ("inference", False)):
        breakdown = model.breakdown(training)
        print(
            f"{phase:<10} sampling {100 * breakdown.sampling_fraction:5.1f}%  "
            f"embedding {100 * breakdown.embedding_s / breakdown.total_s:5.1f}%  "
            f"NN {100 * breakdown.nn_s / breakdown.total_s:5.1f}%"
        )
    print(f"graph storage / model storage: {model.storage_ratio():.1e}x")


if __name__ == "__main__":
    main()
