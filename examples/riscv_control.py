#!/usr/bin/env python3
"""Programming the accelerator: a RISC-V control program drives AxE.

Demonstrates the software/hardware interface of Section 4.4/5: a C-like
control program (here: assembly) running on the RV32 controller pushes
sampling commands into QRCH queues, the AxE engine model executes them,
and completions flow back through the response queue. Also contrasts
the QRCH interaction cost against an MMIO-attached design (Table 7).

Run:  python examples/riscv_control.py
"""

import numpy as np

from repro.axe.commands import sample_command
from repro.axe.engine import AxeEngine, EngineConfig
from repro.graph.datasets import instantiate_dataset
from repro.riscv import MmioBus, MmioDevice, Qrch, QrchQueue, RiscvCpu, assemble


CONTROL_PROGRAM = """
    # Launch 4 sampling batches of growing size through QRCH queue 7,
    # accumulating the completed-root counts in x10.
    addi x5, x0, 4        # batches to launch
    addi x2, x0, 8        # first batch size
    addi x3, x0, 10       # fanout
    addi x10, x0, 0
loop:
    qpush x0, x2, x3, 7   # launch sample(batch=x2, fanout=x3)
    qpull x4, 7           # wait for completion (roots done)
    add  x10, x10, x4
    slli x2, x2, 1        # double the batch
    addi x5, x5, -1
    bne  x5, x0, loop
    ecall
"""


def main():
    graph = instantiate_dataset("ss", max_nodes=5000, seed=0)
    engine = AxeEngine(graph, EngineConfig(num_cores=2))
    launches = []

    def launch(batch_size, fanout):
        roots = np.arange(batch_size, dtype=np.int64) % graph.num_nodes
        _results, stats = engine.run(sample_command(roots, (fanout,)))
        launches.append((batch_size, stats))
        return int(stats.roots)

    hub = Qrch()
    hub.attach(7, QrchQueue("axe-sample", launch))
    cpu = RiscvCpu(qrch=hub)
    cpu.load_program(assemble(CONTROL_PROGRAM))
    cpu.run()

    print("=== RISC-V control program drove the AxE engine ===")
    for batch, stats in launches:
        print(f"batch {batch:>3}: {1e6 * stats.elapsed_s:7.1f}us simulated, "
              f"{stats.roots_per_second:>9.0f} roots/s")
    print(f"total roots completed (x10): {cpu.registers[10]}")
    print(f"controller: {cpu.instructions_retired} instructions, "
          f"{cpu.cycles} cycles, QRCH interaction cycles: "
          f"{hub.interaction_cycles}")

    # Table 7 contrast: the same interaction over a bus-attached MMIO
    # device costs ~100 cycles per access instead of ~4.
    device = MmioDevice("csr")
    bus = MmioBus(access_cycles=100)
    bus.attach(0x4000_0000, 0x100, device)
    mmio_cpu = RiscvCpu(mmio=bus)
    mmio_cpu.load_program(
        assemble(
            """
            lui x1, 0x40000
            addi x2, x0, 8
            sw x2, 0(x1)
            lw x3, 0(x1)
            ecall
            """
        )
    )
    mmio_cpu.run()
    print(f"\nMMIO round trip for one command word: "
          f"{bus.interaction_cycles} bus cycles "
          f"(vs ~{hub.interaction_cycles // max(1, hub.queue(7).pushes + hub.queue(7).pulls)}"
          " per QRCH op) — Table 7's trade-off")


if __name__ == "__main__":
    main()
