#!/usr/bin/env python3
"""Quickstart: sample a graph in software, then on the AxE model.

Builds a scaled instance of the paper's ``ls`` dataset, runs the
AliGraph-style software sampler, then runs the same mini-batch through
the event-simulated AxE engine (the PoC configuration) and compares
sampling throughput.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.axe.commands import sample_command
from repro.axe.engine import AxeEngine, EngineConfig
from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.graph.datasets import get_dataset, instantiate_dataset
from repro.graph.partition import HashPartitioner
from repro.framework.cpu_model import CpuSamplingModel, WorkloadShape
from repro.memstore.layout import FootprintModel
from repro.memstore.store import PartitionedStore
from repro.units import format_bytes


def main():
    # 1. The dataset: full-scale spec, scaled-down executable instance.
    spec = get_dataset("ls")
    footprint = FootprintModel().report(spec)
    print(f"dataset {spec.name}: {spec.num_nodes:,} nodes, "
          f"{spec.num_edges:,} edges at full scale")
    print(f"full-scale footprint: {format_bytes(footprint.total_bytes)} "
          f"-> at least {footprint.min_servers} servers\n")

    graph = instantiate_dataset("ls", max_nodes=20_000, seed=0)
    print(f"scaled instance: {graph}")

    # 2. Software sampling (the CPU baseline path).
    store = PartitionedStore(graph, HashPartitioner(4))
    sampler = MultiHopSampler(store, seed=0, worker_partition=0)
    roots = np.random.default_rng(0).integers(0, graph.num_nodes, 64)
    result = sampler.sample(SampleRequest(roots=roots, fanouts=(10, 10)))
    print(f"software sample: layers "
          f"{[tuple(layer.shape) for layer in result.layers]}, "
          f"{store.summary.total_count} store accesses "
          f"({100 * store.summary.structure_count_fraction:.0f}% structure)")

    shape = WorkloadShape.from_spec(spec)
    vcpu_rate = CpuSamplingModel().roots_per_second(shape, footprint.min_servers)
    print(f"modeled software rate: {vcpu_rate:.0f} root samples/s per vCPU\n")

    # 3. The same batch on the AxE hardware model (PoC configuration:
    #    dual-core, 4-channel DDR4, MoF remote, PCIe output).
    engine = AxeEngine(graph, EngineConfig(num_cores=2, num_fpga_nodes=4))
    results, stats = engine.run(sample_command(roots, (10, 10)))
    print(f"AxE engine: {stats.roots} roots in {1e6 * stats.elapsed_s:.1f}us "
          f"simulated -> {stats.roots_per_second:,.0f} roots/s")
    print(f"channel utilization: "
          f"{ {k: round(v, 2) for k, v in stats.channel_utilization.items()} }")
    print(f"\none FPGA ~ {stats.roots_per_second / vcpu_rate:,.0f} vCPUs "
          f"of sampling capability (paper headline: 894)")


if __name__ == "__main__":
    main()
