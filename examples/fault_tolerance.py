#!/usr/bin/env python3
"""Fault-tolerant remote memory: kill a replica mid-run, finish anyway.

Three runs of the same multi-hop sampling workload, same seed:

1. **baseline** — today's store, no reliability layer at all.
2. **clean**    — reliability layer attached (2x replication, retries,
   timeouts), zero faults injected. Must reproduce the baseline
   bit-for-bit with every retry/hedge counter at zero.
3. **faulted**  — same layer, hedging on, and partition 1's primary
   replica is killed halfway through. The workload must still complete
   to 100%, served by failovers and hedged reads, and still produce
   the exact same samples (replication masks the fault; no data is
   degraded).

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.graph.generators import power_law_graph
from repro.graph.partition import HashPartitioner
from repro.memstore import (
    FaultInjector,
    PartitionedStore,
    ReliableReadPath,
    ReplicaPlacement,
    RetryPolicy,
)

NUM_PARTITIONS = 4
NUM_BATCHES = 8
BATCH_SIZE = 24
FANOUTS = (6, 4)
SEED = 7


def run_workload(sampler, injector=None, kill_at_batch=None, label=""):
    """Sample NUM_BATCHES batches; optionally kill a replica mid-run."""
    results = []
    for batch in range(NUM_BATCHES):
        if injector is not None and batch == kill_at_batch:
            injector.kill_replica(partition=1, replica=0)
            print(f"  [{label}] t={1e3 * injector.now:.2f} ms virtual: "
                  f"killed partition 1 replica 0")
        roots = np.arange(
            batch * BATCH_SIZE, (batch + 1) * BATCH_SIZE, dtype=np.int64
        )
        request = SampleRequest(roots=roots, fanouts=FANOUTS)
        results.append(sampler.sample(request))
        done = 100 * (batch + 1) / NUM_BATCHES
        print(f"  [{label}] batch {batch + 1}/{NUM_BATCHES}  ({done:.0f}%)")
    return results


def make_sampler(graph, reliability):
    store = PartitionedStore(
        graph, HashPartitioner(NUM_PARTITIONS), reliability=reliability
    )
    return MultiHopSampler(
        store,
        seed=SEED,
        worker_partition=0,
        degraded_ok=reliability is not None,
    )


def layers_equal(runs_a, runs_b):
    return all(
        len(a.layers) == len(b.layers)
        and all(np.array_equal(x, y) for x, y in zip(a.layers, b.layers))
        for a, b in zip(runs_a, runs_b)
    )


def main():
    graph = power_law_graph(
        num_nodes=NUM_BATCHES * BATCH_SIZE * 2, avg_degree=8, attr_len=4,
        seed=1,
    )
    placement = ReplicaPlacement(
        num_partitions=NUM_PARTITIONS, replication_factor=2
    )

    print("run 1: baseline (no reliability layer)")
    baseline = run_workload(make_sampler(graph, None), label="baseline")

    print("run 2: reliability attached, fault injection disabled")
    clean_path = ReliableReadPath(
        placement,
        policy=RetryPolicy(hedge=False),
        injector=FaultInjector(seed=SEED),
        seed=SEED,
    )
    clean = run_workload(make_sampler(graph, clean_path), label="clean")
    cs = clean_path.stats
    assert layers_equal(baseline, clean), "clean run diverged from baseline"
    assert not cs.any_faults, f"clean run recorded fault events: {cs}"
    print(f"  clean: {cs.reads} reads, retries {cs.retries}, "
          f"timeouts {cs.timeouts}, hedges {cs.hedges}, "
          f"failovers {cs.failovers} -- bit-for-bit identical to baseline")

    print("run 3: kill partition 1's primary replica mid-run")
    injector = FaultInjector(seed=SEED)
    fault_path = ReliableReadPath(
        placement, policy=RetryPolicy(hedge=True), injector=injector,
        seed=SEED,
    )
    faulted = run_workload(
        make_sampler(graph, fault_path),
        injector=injector,
        kill_at_batch=NUM_BATCHES // 2,
        label="faulted",
    )
    fs = fault_path.stats
    assert len(faulted) == NUM_BATCHES, "faulted run did not complete"
    assert fs.failovers > 0, "expected failovers to the surviving replica"
    assert fs.failed_reads == 0, "replication should mask a single kill"
    assert layers_equal(baseline, faulted), (
        "faulted run degraded data despite a surviving replica"
    )
    print(f"  faulted: completed 100% with one replica dead")
    print(f"  {fs.reads} reads, retries {fs.retries}, "
          f"timeouts {fs.timeouts}, hedges {fs.hedges} "
          f"(won {fs.hedge_wins}), failovers {fs.failovers}, "
          f"failed reads {fs.failed_reads}")
    print("all checks passed: replication + retries + hedging masked the "
          "kill; disabling fault injection reproduces the baseline exactly")


if __name__ == "__main__":
    main()
