#!/usr/bin/env python3
"""Online serving: multi-tenant SLO-aware gateway over both backends.

Challenge-1 says LSD-GNN sampling "fails to meet real-time deadlines in
some inference scenarios" — this demo runs the serving architecture
that manages it. Three tenants (recsys with a diurnal swing, fraud,
search) offer open-loop Poisson traffic; the gateway coalesces their
roots into dynamic micro-batches and dispatches them
earliest-deadline-first onto the AxE hardware model with the software
sampler as fallback. Then the gears come off: 2x overload plus a
mid-run hardware failure, showing load shedding with retry-after and
graceful degradation without dropping a single admitted request.

Run:  python examples/online_serving.py
"""

from repro.api import GnnSession
from repro.graph.datasets import instantiate_dataset
from repro.serving import default_tenants


def show(title, report, tenants):
    print(f"--- {title} ---")
    print(report.format())
    worst_slo = max(t.slo_s for t in tenants)
    if report.latencies_s:
        print(f"=> p99 {1e3 * report.p99:.2f} ms vs worst-case SLO "
              f"{1e3 * worst_slo:.0f} ms; occupancy "
              f"{report.mean_batch_occupancy:.2f} req/batch")
    print()


def main():
    duration_s = 0.4
    graph = instantiate_dataset("ls", max_nodes=3000, seed=0)
    print(f"serving over {graph}\n")

    # ---- baseline: provisioned load, both backends healthy ----------
    session = GnnSession(graph, num_partitions=4, seed=0)
    tenants = default_tenants(duration_s)
    report = session.serve(tenants=tenants, duration_s=duration_s)
    show("baseline (1x provisioned load, functional sampling)",
         report, tenants)
    assert report.mean_batch_occupancy > 1.0, "no cross-request coalescing?"
    assert all(report.tenants[t.name].p99 < t.slo_s for t in tenants), \
        "baseline p99 must sit under every tenant SLO"
    assert report.completed == report.admitted

    # ---- stress: 2x overload + hardware dies mid-run ----------------
    session = GnnSession(graph, num_partitions=4, seed=0)
    overloaded = [spec.overloaded(2.0) for spec in tenants]
    report = session.serve(
        tenants=overloaded,
        duration_s=duration_s,
        fail_hardware_at_s=duration_s / 2,
    )
    show("stress (2x overload, AxE backend killed mid-run)",
         report, overloaded)
    assert report.shed_rate > 0, "2x overload must shed"
    assert report.completed == report.admitted, \
        "failover must not drop admitted requests"
    assert report.backends["software"].batches > 0, \
        "software backend must absorb post-failure load"
    print("degradation: hardware handled "
          f"{report.backends['axe'].batches} batches before dying; "
          f"software absorbed {report.backends['software'].batches}; "
          f"{report.retried} in-flight request(s) retried; "
          f"admitted p99 stayed at {1e3 * report.p99:.2f} ms")


if __name__ == "__main__":
    main()
