"""Tests for repro.serving.workload (open-loop arrival generation)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving.workload import (
    DiurnalProfile,
    TenantSpec,
    default_tenants,
    generate_arrivals,
)


def one_tenant(**kwargs):
    defaults = dict(name="t0", rate_rps=200.0)
    defaults.update(kwargs)
    return TenantSpec(**defaults)


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            one_tenant(rate_rps=0)
        with pytest.raises(ConfigurationError):
            one_tenant(roots_per_request=0)
        with pytest.raises(ConfigurationError):
            one_tenant(fanouts=())
        with pytest.raises(ConfigurationError):
            one_tenant(slo_s=0)
        with pytest.raises(ConfigurationError):
            one_tenant(provisioned_rps=-1.0)
        with pytest.raises(ConfigurationError):
            one_tenant(name="")

    def test_fair_share_defaults_to_offered(self):
        assert one_tenant(rate_rps=100.0).fair_share_rps == 100.0

    def test_overloaded_keeps_provisioned(self):
        spec = one_tenant(rate_rps=100.0).overloaded(2.0)
        assert spec.rate_rps == 200.0
        assert spec.fair_share_rps == 100.0
        # Overloading twice compounds offered rate, not the contract.
        again = spec.overloaded(3.0)
        assert again.rate_rps == 300.0
        assert again.fair_share_rps == 100.0

    def test_overloaded_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            one_tenant().overloaded(0)


class TestDiurnalProfile:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalProfile(amplitude=1.0)
        with pytest.raises(ConfigurationError):
            DiurnalProfile(period_s=0)

    def test_multiplier_range(self):
        profile = DiurnalProfile(amplitude=0.5, period_s=1.0)
        times = np.linspace(0, 2, 101)
        values = [profile.multiplier(t) for t in times]
        assert min(values) >= 0.5 - 1e-9
        assert max(values) <= 1.5 + 1e-9

    def test_flat_profile_is_identity(self):
        assert DiurnalProfile().multiplier(0.37) == 1.0


class TestGenerateArrivals:
    def test_deterministic(self):
        tenants = default_tenants(0.2)
        a = generate_arrivals(tenants, 0.2, num_nodes=100, seed=7)
        b = generate_arrivals(tenants, 0.2, num_nodes=100, seed=7)
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert x.time_s == y.time_s and x.tenant == y.tenant
            assert np.array_equal(x.roots, y.roots)

    def test_sorted_and_within_window(self):
        arrivals = generate_arrivals(
            [one_tenant()], 0.5, num_nodes=50, seed=0
        )
        times = [a.time_s for a in arrivals]
        assert times == sorted(times)
        assert all(0 <= t < 0.5 for t in times)
        assert [a.seq for a in arrivals] == list(range(len(arrivals)))

    def test_rate_roughly_matches(self):
        arrivals = generate_arrivals(
            [one_tenant(rate_rps=500.0)], 2.0, num_nodes=50, seed=1
        )
        # ~1000 expected; Poisson sd ~32.
        assert 850 <= len(arrivals) <= 1150

    def test_roots_in_range(self):
        arrivals = generate_arrivals(
            [one_tenant(roots_per_request=6)], 0.2, num_nodes=13, seed=0
        )
        for a in arrivals:
            assert a.num_roots == 6
            assert a.roots.min() >= 0 and a.roots.max() < 13
            assert a.deadline_s == a.time_s + a.slo_s

    def test_diurnal_modulates_density(self):
        """Peak-phase halves should hold more arrivals than troughs."""
        spec = one_tenant(
            rate_rps=800.0,
            diurnal=DiurnalProfile(amplitude=0.9, period_s=1.0),
        )
        arrivals = generate_arrivals([spec], 1.0, num_nodes=10, seed=3)
        peak = sum(1 for a in arrivals if a.time_s < 0.5)
        trough = len(arrivals) - peak
        assert peak > 1.5 * trough

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_arrivals([], 1.0, num_nodes=10)
        with pytest.raises(ConfigurationError):
            generate_arrivals([one_tenant()], 0, num_nodes=10)
        with pytest.raises(ConfigurationError):
            generate_arrivals([one_tenant()], 1.0, num_nodes=0)
        with pytest.raises(ConfigurationError):
            generate_arrivals([one_tenant(), one_tenant()], 1.0, num_nodes=10)

    def test_default_tenants_share_fanouts(self):
        tenants = default_tenants(0.5)
        assert len(tenants) == 3
        assert len({t.fanouts for t in tenants}) == 1
