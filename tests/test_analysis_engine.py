"""Engine-level tests: file walking, module-path derivation, the
parse cache, and the ``# repro-module:`` marker override."""

from pathlib import Path

import repro
from repro.analysis import AnalysisEngine, analyze_source, derive_module_path
from repro.analysis.engine import FIXTURE_PREFIX

SRC_ROOT = Path(repro.__file__).parent


# ------------------------------------------------------ module-path mapping
def test_derive_module_path_anchors_on_repro():
    assert derive_module_path("/x/src/repro/units.py") == "repro/units.py"
    assert (
        derive_module_path("src/repro/memstore/store.py")
        == "repro/memstore/store.py"
    )


def test_derive_module_path_without_anchor_keeps_name():
    assert derive_module_path("/tmp/scratch/thing.py") == "thing.py"


def test_marker_overrides_derived_path(tmp_path):
    target = tmp_path / "scratch.py"
    target.write_text(
        "# repro-module: repro/serving/stamp.py\nimport time\n",
        encoding="utf-8",
    )
    engine = AnalysisEngine()
    result = engine.analyze_file(target)
    assert {f.rule for f in result.findings} >= {"sim-clock"}
    assert all(f.path == "repro/serving/stamp.py" for f in result.findings)


# --------------------------------------------------------------- the walker
def test_walker_skips_fixtures_and_pycache():
    engine = AnalysisEngine()
    files = list(engine.iter_python_files(SRC_ROOT))
    assert files, "walker found no files under src/repro"
    for path in files:
        module = derive_module_path(str(path))
        assert not module.startswith(FIXTURE_PREFIX), module
        assert "__pycache__" not in str(path)


def test_expand_paths_accepts_file_and_directory(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
    sub = tmp_path / "pkg"
    sub.mkdir()
    (sub / "b.py").write_text("y = 2\n", encoding="utf-8")
    (sub / "notes.txt").write_text("skip me\n", encoding="utf-8")
    engine = AnalysisEngine()
    found = engine.expand_paths([tmp_path / "a.py", sub])
    assert sorted(p.name for p in found) == ["a.py", "b.py"]


# ----------------------------------------------------------------- caching
def test_cache_round_trip(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import random\n", encoding="utf-8")
    cache = tmp_path / "cache.json"

    first = AnalysisEngine(cache_path=cache).run([target])
    assert first.cache_hits == 0
    assert [f.rule for f in first.findings] == ["det-rng"]
    assert cache.exists()

    second = AnalysisEngine(cache_path=cache).run([target])
    assert second.cache_hits == 1
    assert [f.to_dict() for f in second.findings] == [
        f.to_dict() for f in first.findings
    ]

    # Editing the file invalidates its entry (content-hash keyed).
    target.write_text("import random  # still bad\nx = 1\n", encoding="utf-8")
    third = AnalysisEngine(cache_path=cache).run([target])
    assert third.cache_hits == 0
    assert [f.rule for f in third.findings] == ["det-rng"]


def test_cache_ignores_other_engine_versions(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    cache = tmp_path / "cache.json"
    cache.write_text('{"rules_sig": "bogus", "files": {}}', encoding="utf-8")
    result = AnalysisEngine(cache_path=cache).run([target])
    assert result.cache_hits == 0
    assert result.files_scanned == 1


def test_corrupt_cache_is_not_fatal(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    cache = tmp_path / "cache.json"
    cache.write_text("{not json", encoding="utf-8")
    result = AnalysisEngine(cache_path=cache).run([target])
    assert result.files_scanned == 1
    assert result.findings == []


# -------------------------------------------------------------- error paths
def test_syntax_error_becomes_parse_error_finding(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def broken(:\n", encoding="utf-8")
    result = AnalysisEngine().run([target])
    assert [f.rule for f in result.findings] == ["parse-error"]


def test_findings_sorted_by_location():
    source = (
        "import random\n"
        "import time\n"
        "\n"
        "def f(xs=[]):\n"
        "    return xs\n"
    )
    result = analyze_source(source, module_path="repro/framework/sampler.py")
    locations = [(f.line, f.col) for f in result.findings]
    assert locations == sorted(locations)
    assert len(result.findings) == 3
