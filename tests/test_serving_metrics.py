"""Tests for repro.serving.metrics (registry and ServingReport)."""

import math
import re

import pytest

from repro.errors import ConfigurationError
from repro.serving.metrics import MetricsRegistry


def populated_registry():
    metrics = MetricsRegistry()
    metrics.register_tenant("a", slo_s=1e-3)
    metrics.register_tenant("b", slo_s=5e-3)
    metrics.register_backend("hw", concurrency=1)
    metrics.register_backend("sw", concurrency=4)
    for _ in range(4):
        metrics.on_offered("a")
    metrics.on_offered("b")
    metrics.on_admitted("a", 1)
    metrics.on_admitted("a", 2)
    metrics.on_admitted("b", 3)
    metrics.on_shed("a", "rate_limited")
    metrics.on_shed("a", "queue_full")
    metrics.on_batch(3, 12)
    metrics.on_dispatch("hw", 3, 2e-3)
    metrics.on_completed("a", 0.5e-3)
    metrics.on_completed("a", 2e-3)   # misses a's 1ms SLO
    metrics.on_completed("b", 3e-3)
    return metrics


class TestRegistry:
    def test_counts_flow_into_report(self):
        report = populated_registry().snapshot(duration_s=0.1, drain_s=0.12)
        assert report.offered == 5
        assert report.admitted == 3
        assert report.completed == 3
        assert report.shed == 2
        assert report.shed_by_reason == {"rate_limited": 1, "queue_full": 1}
        assert report.max_queue_depth == 3
        assert report.completed_qps == pytest.approx(30.0)

    def test_tenant_slices(self):
        report = populated_registry().snapshot(duration_s=0.1, drain_s=0.12)
        a = report.tenants["a"]
        assert a.offered == 4 and a.admitted == 2 and a.shed == 2
        assert a.shed_rate == pytest.approx(0.5)
        assert a.completed == 2 and a.slo_misses == 1
        assert a.slo_miss_rate == pytest.approx(0.5)
        b = report.tenants["b"]
        assert b.shed_rate == 0.0 and b.slo_miss_rate == 0.0

    def test_batch_occupancy(self):
        metrics = populated_registry()
        metrics.on_batch(1, 4)
        report = metrics.snapshot(duration_s=0.1, drain_s=0.1)
        assert report.mean_batch_occupancy == pytest.approx(2.0)
        assert report.mean_batch_roots == pytest.approx(8.0)

    def test_backend_utilization(self):
        report = populated_registry().snapshot(duration_s=0.1, drain_s=0.1)
        hw = report.backends["hw"]
        assert hw.batches == 1 and hw.requests == 3
        assert hw.utilization(0.1) == pytest.approx(2e-2)
        # Four slots divide the same busy time.
        sw = report.backends["sw"]
        assert sw.utilization(0.1) == 0.0


class TestReportEdges:
    def test_empty_report(self):
        report = MetricsRegistry().snapshot(duration_s=0.0, drain_s=0.0)
        assert report.shed_rate == 0.0
        assert report.completed_qps == 0.0
        assert report.mean_batch_occupancy == 0.0
        assert report.mean_batch_roots == 0.0
        assert report.slo_miss_rate == 0.0
        assert math.isnan(report.percentile(50))
        assert math.isnan(report.p50) and math.isnan(report.p99)
        assert "p99 latency: n/a" in report.format()

    def test_percentile_bounds(self):
        report = populated_registry().snapshot(duration_s=0.1, drain_s=0.1)
        with pytest.raises(ConfigurationError):
            report.percentile(101)
        with pytest.raises(ConfigurationError):
            report.percentile(-1)
        assert report.p99 >= report.p50

    def test_format_mentions_headline_metrics(self):
        text = populated_registry().snapshot(0.1, 0.12).format()
        for needle in (
            "p99 latency", "shed rate", "batch occupancy",
            "backend hw", "tenant a", "SLO",
        ):
            assert needle in text

    def test_snapshot_is_a_copy(self):
        metrics = populated_registry()
        report = metrics.snapshot(duration_s=0.1, drain_s=0.1)
        metrics.on_completed("a", 9.0)
        assert len(report.latencies_s) == 3


class TestZeroBatchBackends:
    """Regression: a backend that finishes zero batches must not poison
    the report with division-by-zero or NaN (satellite of the parallel
    engine PR — idle backends are routine when the sharded software
    path absorbs the whole load)."""

    def test_idle_backend_fields_are_finite(self):
        metrics = populated_registry()  # "sw" never dispatches
        report = metrics.snapshot(duration_s=0.1, drain_s=0.12)
        idle = report.backends["sw"]
        assert idle.batches == 0
        assert idle.mean_service_s == 0.0
        assert idle.mean_batch_requests == 0.0
        assert idle.utilization(report.drain_s) == 0.0
        assert not math.isnan(idle.mean_service_s)

    def test_busy_backend_means(self):
        report = populated_registry().snapshot(duration_s=0.1, drain_s=0.12)
        busy = report.backends["hw"]
        assert busy.mean_service_s == pytest.approx(2e-3)
        assert busy.mean_batch_requests == pytest.approx(3.0)

    def test_zero_concurrency_guarded(self):
        from repro.serving.metrics import BackendReport

        report = BackendReport(name="x", concurrency=0, busy_s=1.0)
        assert report.utilization(1.0) == 0.0

    def test_format_survives_idle_backend(self):
        text = populated_registry().snapshot(0.1, 0.12).format()
        assert "backend sw: 0 batches, 0 requests, idle, 0.0% busy" in text
        assert "mean service" in text  # the busy backend still reports it
        # Whole-token match: "tenant" legitimately contains "nan".
        assert not re.search(r"\bnan\b", text.lower())

    def test_empty_report_has_no_nan_in_backends(self):
        metrics = MetricsRegistry()
        metrics.register_backend("sw", concurrency=4)
        report = metrics.snapshot(duration_s=0.0, drain_s=0.0)
        text = report.format()
        assert report.backends["sw"].utilization(0.0) == 0.0
        assert "backend sw" in text
