"""Tests for repro.mof.topology."""

import pytest

from repro.errors import ConfigurationError
from repro.mof.topology import FabricTopology, chain, full_mesh, ring


class TestConstruction:
    def test_full_mesh_links(self):
        mesh = full_mesh(4)
        assert len(mesh.links) == 6  # C(4,2)

    def test_poc_mesh_uses_three_cages(self):
        """The PoC's 4-card mesh needs exactly 3 links per card — the
        VV8's 3 usable QSFP-DD cages."""
        mesh = full_mesh(4)
        degree = {n: 0 for n in range(4)}
        for a, b in mesh.links:
            degree[a] += 1
            degree[b] += 1
        assert all(d == 3 for d in degree.values())

    def test_ring_links(self):
        assert len(ring(6).links) == 6

    def test_chain_links(self):
        assert len(chain(5).links) == 4

    def test_rejects_disconnected(self):
        with pytest.raises(ConfigurationError):
            FabricTopology(4, [(0, 1), (2, 3)])

    def test_rejects_self_loop(self):
        with pytest.raises(ConfigurationError):
            FabricTopology(3, [(0, 0), (0, 1), (1, 2)])

    def test_rejects_duplicate(self):
        with pytest.raises(ConfigurationError):
            FabricTopology(3, [(0, 1), (1, 0), (1, 2)])

    def test_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            FabricTopology(1, [])


class TestRouting:
    def test_mesh_single_hop(self):
        mesh = full_mesh(4)
        for src in range(4):
            for dst in range(4):
                if src != dst:
                    assert mesh.hops(src, dst) == 1

    def test_ring_multi_hop(self):
        topology = ring(6)
        assert topology.hops(0, 3) == 3
        assert topology.hops(0, 5) == 1  # wraps

    def test_chain_end_to_end(self):
        topology = chain(5)
        assert topology.hops(0, 4) == 4

    def test_path_endpoints(self):
        topology = ring(5)
        path = topology.shortest_path(0, 2)
        assert path[0] == 0 and path[-1] == 2

    def test_self_path(self):
        assert full_mesh(3).shortest_path(1, 1) == [1]

    def test_path_latency(self):
        topology = chain(4, hop_latency_s=1e-6)
        assert topology.path_latency(0, 3) == pytest.approx(3e-6)

    def test_bad_nodes(self):
        with pytest.raises(ConfigurationError):
            full_mesh(3).shortest_path(0, 5)


class TestBandwidth:
    def test_mesh_beats_ring_pair_bandwidth(self):
        """The PoC's full mesh gives each pair a dedicated link; a ring
        shares links across forwarded traffic."""
        mesh = full_mesh(4)
        ring4 = ring(4)
        assert mesh.effective_pair_bandwidth() > ring4.effective_pair_bandwidth()

    def test_mesh_pair_bandwidth_is_half_link(self):
        # Each link carries exactly the two directed flows of its pair.
        mesh = full_mesh(4, link_bandwidth=100.0)
        assert mesh.effective_pair_bandwidth() == pytest.approx(50.0)

    def test_chain_worst_bisection(self):
        assert chain(4, link_bandwidth=10.0).bisection_bandwidth() == 10.0
        assert ring(4, link_bandwidth=10.0).bisection_bandwidth() == 20.0
        assert full_mesh(4, link_bandwidth=10.0).bisection_bandwidth() == 40.0

    def test_link_load_conservation(self):
        topology = ring(5)
        load = topology.all_to_all_link_load()
        # Total link-hops equals the sum of all pairwise distances.
        total_hops = sum(
            topology.hops(s, d)
            for s in range(5)
            for d in range(5)
            if s != d
        )
        assert sum(load.values()) == pytest.approx(total_hops)

    def test_per_node_egress(self):
        assert full_mesh(4, link_bandwidth=25.0).per_node_egress() == 75.0

    def test_poc_aggregate_bandwidth(self):
        """Table 10: 200Gb/s x 6 links x 2 directions for the system."""
        from repro.units import gbps_to_bytes_per_s

        mesh = full_mesh(4, link_bandwidth=gbps_to_bytes_per_s(200))
        total_unidirectional = len(mesh.links) * mesh.link_bandwidth
        assert total_unidirectional == pytest.approx(6 * 25e9)

    def test_bisection_node_limit(self):
        with pytest.raises(ConfigurationError):
            full_mesh(17).bisection_bandwidth()
