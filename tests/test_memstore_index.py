"""Tests for repro.memstore.index (external-ID hash index)."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError, GraphError
from repro.memstore.index import ExternalIdIndex


class TestBasics:
    def test_insert_lookup(self):
        index = ExternalIdIndex(10)
        index.insert(123456789, 0)
        index.insert(987654321, 1)
        assert index.lookup(123456789) == 0
        assert index.lookup(987654321) == 1

    def test_missing_returns_none(self):
        index = ExternalIdIndex(10)
        index.insert(5, 0)
        assert index.lookup(6) is None

    def test_update_existing(self):
        index = ExternalIdIndex(10)
        index.insert(5, 0)
        index.insert(5, 7)
        assert index.lookup(5) == 7
        assert len(index) == 1

    def test_len_and_load(self):
        index = ExternalIdIndex(100)
        for i in range(50):
            index.insert(i * 1000 + 7, i)
        assert len(index) == 50
        assert 0 < index.load_factor <= 0.7

    def test_capacity_enforced(self):
        index = ExternalIdIndex(4, max_load=0.5)
        limit = int(index._slots * 0.5)
        for i in range(limit):
            index.insert(i + 1, i)
        with pytest.raises(CapacityError):
            index.insert(10_000, 99)

    def test_reserved_key_rejected(self):
        index = ExternalIdIndex(4)
        with pytest.raises(ConfigurationError):
            index.insert(0xFFFFFFFFFFFFFFFF, 0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExternalIdIndex(0)
        with pytest.raises(ConfigurationError):
            ExternalIdIndex(10, max_load=1.5)


class TestBuild:
    def test_build_roundtrip(self):
        rng = np.random.default_rng(0)
        externals = rng.choice(2**62, size=1000, replace=False).astype(np.uint64)
        index = ExternalIdIndex.build(externals)
        resolved = index.lookup_many(externals[:100])
        assert resolved.tolist() == list(range(100))

    def test_build_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            ExternalIdIndex.build(np.array([1, 1, 2], dtype=np.uint64))

    def test_build_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ExternalIdIndex.build(np.array([], dtype=np.uint64))

    def test_lookup_many_missing_raises(self):
        index = ExternalIdIndex.build(np.array([1, 2, 3], dtype=np.uint64))
        with pytest.raises(GraphError):
            index.lookup_many([1, 99])


class TestFootprintAssumptions:
    def test_bytes_per_entry_near_model(self):
        """The footprint model charges 64B/node for the index; the real
        open-addressing table at 50-70% load costs 23-64B/entry —
        the model's figure also covers auxiliary per-node metadata, so
        the implementation must not exceed it."""
        rng = np.random.default_rng(1)
        externals = rng.choice(2**62, size=20_000, replace=False).astype(np.uint64)
        index = ExternalIdIndex.build(externals)
        assert 16 <= index.bytes_per_entry() <= 64

    def test_probe_chains_short_at_bounded_load(self):
        rng = np.random.default_rng(2)
        externals = rng.choice(2**62, size=10_000, replace=False).astype(np.uint64)
        index = ExternalIdIndex.build(externals, max_load=0.7)
        mean_probes = index.mean_probes_per_lookup(externals[:2000])
        assert mean_probes < 3.0  # fine-grained 8-64B access, as modeled

    def test_probe_count_grows_with_load(self):
        rng = np.random.default_rng(3)
        externals = rng.choice(2**62, size=5000, replace=False).astype(np.uint64)
        light = ExternalIdIndex.build(externals, max_load=0.3)
        heavy = ExternalIdIndex.build(externals, max_load=0.9)
        assert heavy.mean_probes_per_lookup(externals[:1000]) >= (
            light.mean_probes_per_lookup(externals[:1000])
        )
