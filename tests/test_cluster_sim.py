"""End-to-end tests for repro.cluster.sim (the headline cluster runs)."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSim,
    flash_crowd_day,
    format_comparison,
    run_cluster,
)
from repro.errors import SimulationError


def headline_trace():
    return flash_crowd_day(duration_s=10.0, users=1_000_000, seed=0)


def small_trace(**kwargs):
    defaults = dict(duration_s=2.0, users=200_000, seed=0)
    defaults.update(kwargs)
    return flash_crowd_day(**defaults)


class TestPolicyComparison:
    @pytest.fixture(scope="class")
    def reports(self):
        trace = headline_trace()
        return {
            policy: run_cluster(trace, ClusterConfig(policy=policy))
            for policy in ("static", "least-loaded", "cost")
        }

    def test_all_policies_serve_the_same_offered_load(self, reports):
        offered = {r.offered for r in reports.values()}
        assert len(offered) == 1
        assert offered.pop() > 1_000

    def test_no_policy_loses_requests(self, reports):
        for report in reports.values():
            assert report.lost_requests == 0
            assert report.offered == report.completed + report.shed_requests

    def test_cost_policy_beats_static_on_price_at_equal_slo(self, reports):
        """The acceptance bar: >= static's attainment at lower $/hr."""
        static = reports["static"]
        cost = reports["cost"]
        assert cost.attainment >= static.attainment
        assert cost.dollars_per_hour < static.dollars_per_hour

    def test_static_fleet_never_changes(self, reports):
        static = reports["static"]
        assert static.min_replicas == static.peak_replicas
        assert static.replica_drains == 0

    def test_adaptive_fleets_actually_scale(self, reports):
        for name in ("least-loaded", "cost"):
            report = reports[name]
            assert report.peak_replicas > report.min_replicas
            assert report.replica_launches > report.min_replicas

    def test_cost_policy_uses_more_than_one_flavor(self, reports):
        assert len(reports["cost"].replica_seconds) > 1

    def test_attainment_is_high_for_all_policies(self, reports):
        for report in reports.values():
            assert report.attainment > 0.95

    def test_comparison_table_renders(self, reports):
        table = format_comparison(list(reports.values()))
        for name in ("static", "least-loaded", "cost"):
            assert name in table


class TestFailureRecovery:
    @pytest.fixture(scope="class")
    def killed(self):
        return run_cluster(
            headline_trace(),
            ClusterConfig(policy="static", kill_at_s=(3.0, 6.5)),
        )

    def test_kill_and_hot_restart_lose_no_accepted_request(self, killed):
        assert killed.replica_failures == 2
        assert killed.replica_restarts == 2
        assert killed.lost_requests == 0

    def test_stranded_work_is_recovered(self, killed):
        # Undetected-death redirects and post-detection evacuations are
        # the two recovery paths; a mid-trace kill exercises both.
        assert killed.redirected_requests > 0
        assert killed.evacuated_requests > 0

    def test_attainment_survives_the_kills(self, killed):
        assert killed.attainment > 0.9

    def test_killing_the_only_replica_sheds_with_no_capacity(self):
        report = run_cluster(
            small_trace(),
            ClusterConfig(
                policy="least-loaded",
                kill_at_s=(1.0,),
                tick_interval_s=10.0,  # autoscaler cannot respawn first
            ),
        )
        assert report.lost_requests == 0
        assert report.replica_restarts == 1


class TestDeterminism:
    def test_same_seed_same_report(self):
        trace = small_trace()
        config = ClusterConfig(policy="cost", kill_at_s=(0.7,))
        first = run_cluster(trace, config)
        second = run_cluster(trace, config)
        assert first.to_json() == second.to_json()

    def test_seed_changes_the_run(self):
        config = ClusterConfig(policy="cost")
        first = run_cluster(small_trace(seed=1), config)
        second = run_cluster(small_trace(seed=2), config)
        assert first.to_json() != second.to_json()


class TestMechanics:
    def test_run_is_single_shot(self):
        sim = ClusterSim(small_trace(), ClusterConfig(policy="static"))
        sim.run()
        with pytest.raises(SimulationError):
            sim.run()

    def test_consistent_hash_router_works_end_to_end(self):
        report = run_cluster(
            small_trace(),
            ClusterConfig(policy="static", router="consistent-hash"),
        )
        assert report.router == "consistent-hash"
        assert report.lost_requests == 0

    def test_billing_accrues_only_active_time(self):
        report = run_cluster(small_trace(), ClusterConfig(policy="static"))
        total_s = sum(report.replica_seconds.values())
        # A static fleet bills replicas x duration (plus drain slack).
        expected = report.peak_replicas * report.duration_s
        assert total_s == pytest.approx(expected, rel=0.05)

    def test_tenant_summaries_cover_the_mix(self):
        report = run_cluster(small_trace(), ClusterConfig(policy="static"))
        assert {t.name for t in report.tenants} == {
            "recsys",
            "fraud",
            "search",
        }
        assert sum(t.offered for t in report.tenants) == report.offered


class TestSessionBacked:
    def test_serve_cluster_really_samples(self):
        from repro.api import GnnSession
        from repro.graph.datasets import instantiate_dataset

        graph = instantiate_dataset("ls", max_nodes=2000, seed=0)
        session = GnnSession(graph, num_partitions=4, seed=0)
        report = session.serve_cluster(
            trace=flash_crowd_day(duration_s=1.0, users=60_000, seed=0),
            config=ClusterConfig(policy="static"),
        )
        assert report.completed > 0
        assert report.lost_requests == 0
