"""Tests for repro.mof.fabric and repro.mof.protocol."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.mof.fabric import MofFabric
from repro.mof.protocol import LossyWire, MofEndpoint, run_transfer
from repro.units import GB


class TestMofFabric:
    def test_poc_raw_bandwidth(self):
        """PoC: 3x QSFP-DD at 200Gb/s each = 75GB/s raw per card."""
        fabric = MofFabric()
        assert fabric.raw_bandwidth == pytest.approx(75e9)

    def test_effective_below_raw(self):
        fabric = MofFabric()
        assert fabric.effective_bandwidth(64) < fabric.raw_bandwidth

    def test_effective_grows_with_request_size(self):
        fabric = MofFabric()
        assert fabric.effective_bandwidth(256) > fabric.effective_bandwidth(16)

    def test_as_link(self):
        link = MofFabric().as_link(64)
        assert link.peak_bandwidth == pytest.approx(75e9)
        assert link.packet_overhead_bytes >= 4
        assert link.base_latency_s > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MofFabric(num_qsfp=0)
        with pytest.raises(ConfigurationError):
            MofFabric(gbps_per_qsfp=0)
        with pytest.raises(ConfigurationError):
            MofFabric(base_latency_s=0)


class TestLossyWire:
    def test_lossless_delivery(self):
        wire = LossyWire(0.0)
        from repro.mof.protocol import _Frame

        wire.send(_Frame(seq=0, payload=b"x"))
        assert wire.receive().payload == b"x"
        assert wire.receive() is None

    def test_loss_rate_drops(self):
        from repro.mof.protocol import _Frame

        wire = LossyWire(0.5, seed=0)
        for i in range(1000):
            wire.send(_Frame(seq=i, payload=b""))
        assert 350 < wire.dropped < 650

    def test_rejects_bad_loss_rate(self):
        with pytest.raises(ConfigurationError):
            LossyWire(1.0)
        with pytest.raises(ConfigurationError):
            LossyWire(-0.1)


class TestProtocol:
    def test_lossless_transfer(self):
        payloads = [bytes([i]) * 16 for i in range(40)]
        result = run_transfer(payloads, loss_rate=0.0)
        assert result.received == payloads
        assert result.retransmissions == 0

    def test_in_order_exactly_once_under_loss(self):
        payloads = [i.to_bytes(4, "little") for i in range(100)]
        result = run_transfer(payloads, loss_rate=0.25, seed=5)
        assert result.received == payloads

    def test_retransmissions_happen_under_loss(self):
        payloads = [bytes([i]) for i in range(50)]
        result = run_transfer(payloads, loss_rate=0.3, seed=1)
        assert result.retransmissions > 0

    def test_heavy_loss_still_completes(self):
        payloads = [bytes([i]) for i in range(20)]
        result = run_transfer(payloads, loss_rate=0.6, seed=2)
        assert result.received == payloads

    def test_loss_increases_ticks(self):
        payloads = [bytes([i]) for i in range(50)]
        clean = run_transfer(payloads, loss_rate=0.0, seed=0)
        lossy = run_transfer(payloads, loss_rate=0.3, seed=0)
        assert lossy.ticks > clean.ticks

    def test_window_limits_inflight(self):
        wire_a, wire_b = LossyWire(0.0), LossyWire(0.0)
        endpoint = MofEndpoint(wire_a, wire_b, window=4)
        for i in range(20):
            endpoint.queue(bytes([i]))
        endpoint.tick()
        assert wire_a.delivered == 4  # only the window goes out

    def test_validation(self):
        wires = (LossyWire(0.0), LossyWire(0.0))
        with pytest.raises(ConfigurationError):
            MofEndpoint(*wires, window=0)
        with pytest.raises(ConfigurationError):
            MofEndpoint(*wires, timeout_ticks=0)

    def test_incomplete_transfer_raises(self):
        # max_ticks too small for any progress check to finish
        payloads = [bytes([i]) for i in range(5)]
        with pytest.raises(ProtocolError):
            run_transfer(payloads, loss_rate=0.5, seed=3, max_ticks=2)
