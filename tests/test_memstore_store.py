"""Tests for repro.memstore.store."""

import numpy as np
import pytest

from repro.graph.csr import CSRGraph
from repro.graph.partition import HashPartitioner, RangePartitioner
from repro.memstore.store import AccessKind, PartitionedStore


@pytest.fixture
def store():
    attrs = np.arange(40, dtype=np.float32).reshape(10, 4)
    graph = CSRGraph.from_edges(
        10, [(0, 1), (0, 2), (0, 3), (1, 4), (2, 5)], node_attr=attrs
    )
    return PartitionedStore(graph, RangePartitioner(2, 10))


class TestAccessAccounting:
    def test_get_neighbors_returns_correct_ids(self, store):
        assert sorted(store.get_neighbors(0).tolist()) == [1, 2, 3]

    def test_neighbor_access_records_structure(self, store):
        store.get_neighbors(0)
        summary = store.summary
        # index + offsets + one ID block
        assert summary.structure_count == 3
        assert summary.attribute_count == 0
        assert summary.structure_bytes == 16 + 16 + 3 * 8

    def test_zero_degree_skips_id_read(self, store):
        store.get_neighbors(9)
        assert store.summary.structure_count == 2

    def test_attribute_access_records_both_kinds(self, store):
        rows = store.get_attributes([1, 2])
        assert rows.shape == (2, 4)
        summary = store.summary
        assert summary.attribute_count == 2
        assert summary.structure_count == 2  # index lookups
        assert summary.attribute_bytes == 2 * 16

    def test_locality_attribution(self, store):
        # Range partition of 10 nodes into 2: nodes 0-4 on partition 0.
        store.get_attributes([0, 7], from_partition=0)
        assert store.summary.remote_count == 2  # index + row for node 7

    def test_none_partition_is_all_local(self, store):
        store.get_attributes([0, 7], from_partition=None)
        assert store.summary.remote_count == 0

    def test_batch_neighbors(self, store):
        lists = store.get_neighbors_batch([0, 1])
        assert len(lists) == 2
        assert lists[1].tolist() == [4]

    def test_reset_trace(self, store):
        store.get_neighbors(0)
        store.reset_trace()
        assert store.summary.total_count == 0

    def test_trace_records_when_enabled(self, store):
        store.tracing = True
        store.get_attributes([3])
        kinds = [record.kind for record in store.trace]
        assert AccessKind.STRUCTURE in kinds and AccessKind.ATTRIBUTE in kinds

    def test_trace_empty_when_disabled(self, store):
        store.get_attributes([3])
        assert store.trace == ()


class TestSummaryProperties:
    def test_fraction_properties(self, store):
        store.get_neighbors(0, from_partition=1)  # remote (node 0 on part 0)
        store.get_attributes([0], from_partition=0)  # local
        summary = store.summary
        assert 0 < summary.structure_count_fraction < 1
        assert 0 < summary.remote_count_fraction < 1
        assert 0 < summary.remote_bytes_fraction < 1

    def test_empty_summary_fractions(self, store):
        assert store.summary.structure_count_fraction == 0.0
        assert store.summary.remote_count_fraction == 0.0
        assert store.summary.remote_bytes_fraction == 0.0


class TestPartitionSizes:
    def test_partition_sizes_sum(self, store):
        sizes = store.partition_sizes()
        assert sizes.sum() == 10
        assert len(sizes) == 2

    def test_hash_partition_sizes_balanced(self):
        graph = CSRGraph.from_edges(10_000, [])
        store = PartitionedStore(graph, HashPartitioner(4))
        sizes = store.partition_sizes()
        assert sizes.min() > 0.8 * sizes.mean()


class TestVectorizedBatch:
    def test_batch_neighbors_matches_per_node_accounting(self, store):
        nodes = [0, 1, 7, 9]
        batch = store.get_neighbors_batch(nodes, from_partition=0)
        reference = PartitionedStore(store.graph, store.partitioner)
        rows = [reference.get_neighbors(n, from_partition=0) for n in nodes]
        assert store.summary == reference.summary
        for got, want in zip(batch, rows):
            assert np.array_equal(got, want)
        assert batch.served.all()
        assert batch.fallbacks == 0

    def test_batch_neighbors_counts_multiplicity(self, store):
        counts = np.array([3, 1])
        store.get_neighbors_batch([0, 9], from_partition=0, counts=counts)
        reference = PartitionedStore(store.graph, store.partitioner)
        for _ in range(3):
            reference.get_neighbors(0, from_partition=0)
        reference.get_neighbors(9, from_partition=0)
        assert store.summary == reference.summary

    def test_batch_attributes_matches_per_node_accounting(self, store):
        nodes = np.array([0, 6, 7])
        batch = store.get_attributes_batch(nodes, from_partition=0)
        reference = PartitionedStore(store.graph, store.partitioner)
        rows = reference.get_attributes(nodes, from_partition=0)
        assert store.summary == reference.summary
        assert np.array_equal(batch.rows, rows)
        assert len(batch) == 3

    def test_attributes_dedup_same_totals_and_rows(self, store):
        nodes = np.array([2, 5, 2, 2, 5])
        rows = store.get_attributes(nodes, from_partition=0, dedup=True)
        reference = PartitionedStore(store.graph, store.partitioner)
        expected = reference.get_attributes(nodes, from_partition=0)
        assert store.summary == reference.summary
        assert np.array_equal(rows, expected)

    def test_neighbor_batch_supports_indexing(self, store):
        batch = store.get_neighbors_batch([0, 1])
        assert len(batch) == 2
        assert batch[1].tolist() == [4]
        assert [b.tolist() for b in batch] == [batch[0].tolist(), batch[1].tolist()]

    def test_batch_trace_totals_match(self, store):
        store.tracing = True
        store.get_neighbors_batch([0, 1, 9], from_partition=0, counts=np.array([2, 1, 1]))
        reference = PartitionedStore(store.graph, store.partitioner)
        reference.tracing = True
        for node in (0, 0, 1, 9):
            reference.get_neighbors(node, from_partition=0)
        assert sorted((r.kind.value, r.nbytes, r.local) for r in store.trace) == \
            sorted((r.kind.value, r.nbytes, r.local) for r in reference.trace)
