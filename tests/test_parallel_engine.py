"""Tests for the sharded parallel engine and pipelined executor.

The load-bearing invariant is the determinism contract: shard
membership and per-task RNG streams depend only on ``(seed, shard,
seq)``, so layers, attributes, and the merged ``AccessSummary`` are
bit-identical at every worker count — ``workers=0`` (inline) is the
reference the process pools are compared against.
"""

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    GraphError,
    ParallelExecutionError,
)
from repro.framework.replay import replay_reference
from repro.framework.requests import NegativeSampleRequest, SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.graph.datasets import instantiate_dataset
from repro.graph.partition import HashPartitioner, RangePartitioner
from repro.memstore.faults import FaultInjector, ReliableReadPath
from repro.memstore.replication import ReplicaPlacement
from repro.memstore.retry import RetryPolicy
from repro.memstore.store import PartitionedStore
from repro.parallel import (
    ParallelSampler,
    PipelinedExecutor,
    micro_batches,
    shard_seed,
)

NUM_NODES = 600
FANOUTS = (4, 3)


def make_graph(seed: int = 0):
    return instantiate_dataset("ss", max_nodes=NUM_NODES, seed=seed)


def make_store(graph, partitions: int = 4):
    return PartitionedStore(graph, HashPartitioner(partitions))


def make_request(graph, batch: int = 48, seed: int = 1):
    roots = np.random.default_rng(seed).integers(
        0, graph.num_nodes, size=batch
    )
    return SampleRequest(roots=roots, fanouts=FANOUTS, with_attributes=True)


def run_engine(graph, request, workers, **kwargs):
    store = make_store(graph)
    with ParallelSampler(store, workers=workers, seed=3, **kwargs) as engine:
        result = engine.sample(request)
    return result, store.summary


class TestShardSeed:
    def test_streams_are_stable_and_distinct(self):
        a = np.random.default_rng(shard_seed(0, 1, 2)).integers(0, 1 << 30, 8)
        b = np.random.default_rng(shard_seed(0, 1, 2)).integers(0, 1 << 30, 8)
        c = np.random.default_rng(shard_seed(0, 2, 1)).integers(0, 1 << 30, 8)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)


class TestConstruction:
    def test_rejects_bad_params(self):
        store = make_store(make_graph())
        with pytest.raises(ConfigurationError):
            ParallelSampler(store, workers=-1)
        with pytest.raises(ConfigurationError):
            ParallelSampler(store, slots=0)

    def test_rejects_reliability_store(self):
        graph = make_graph()
        placement = ReplicaPlacement(num_partitions=2, replication_factor=1)
        path = ReliableReadPath(
            placement, RetryPolicy(hedge=False), FaultInjector(), seed=0
        )
        store = PartitionedStore(
            graph, RangePartitioner(2, graph.num_nodes), reliability=path
        )
        with pytest.raises(ConfigurationError):
            ParallelSampler(store)

    def test_duck_types_sampler_surface(self):
        engine = ParallelSampler(make_store(make_graph()))
        assert engine.batched is True
        assert engine.cache is None
        assert engine.degraded_fallbacks == 0
        assert engine.fault_stats is engine.store.fault_stats
        engine.close()


class TestDeterminism:
    def test_worker_counts_agree(self):
        """workers=0/1/2 produce bit-identical layers, attrs, accounting."""
        graph = make_graph()
        request = make_request(graph)
        reference, ref_summary = run_engine(graph, request, workers=0)
        for workers in (1, 2):
            result, summary = run_engine(graph, request, workers=workers)
            for mine, theirs in zip(reference.layers, result.layers):
                np.testing.assert_array_equal(mine, theirs)
            for mine, theirs in zip(reference.attributes, result.attributes):
                np.testing.assert_array_equal(mine, theirs)
            assert summary == ref_summary

    def test_mmap_plane_agrees_with_shm(self):
        graph = make_graph()
        request = make_request(graph)
        reference, ref_summary = run_engine(graph, request, workers=0)
        result, summary = run_engine(
            graph, request, workers=1, plane_backend="mmap"
        )
        for mine, theirs in zip(reference.layers, result.layers):
            np.testing.assert_array_equal(mine, theirs)
        assert summary == ref_summary

    def test_replay_parity(self):
        """Merged summary == serial reference walk over the same layers."""
        graph = make_graph()
        request = make_request(graph)
        result, summary = run_engine(graph, request, workers=2)
        replay_store = make_store(graph)
        replay_reference(result, request, replay_store)
        assert summary == replay_store.summary

    def test_negative_sampling_stable_across_workers(self):
        graph = make_graph()
        pairs = np.stack(
            [np.arange(10, dtype=np.int64), np.arange(1, 11, dtype=np.int64)],
            axis=1,
        )
        request = NegativeSampleRequest(pairs=pairs, rate=3)
        outs = []
        for workers in (0, 1):
            with ParallelSampler(
                make_store(graph), workers=workers, seed=3
            ) as engine:
                outs.append(engine.negative_sample(request))
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_structure_only_request(self):
        graph = make_graph()
        request = SampleRequest(
            roots=np.arange(16, dtype=np.int64),
            fanouts=FANOUTS,
            with_attributes=False,
        )
        result, _ = run_engine(graph, request, workers=0)
        assert result.attributes is None
        assert len(result.layers) == len(FANOUTS) + 1


class TestPipeline:
    def test_depth_validation(self):
        engine = ParallelSampler(make_store(make_graph()), slots=2)
        with pytest.raises(ConfigurationError):
            PipelinedExecutor(engine, depth=0)
        with pytest.raises(ConfigurationError):
            PipelinedExecutor(engine, depth=3)
        engine.close()

    def test_micro_batches_validation(self):
        with pytest.raises(ConfigurationError):
            list(micro_batches(np.arange(4), 0, FANOUTS))

    @pytest.mark.parametrize("workers", [0, 2])
    def test_pipeline_matches_batch_by_batch(self, workers):
        graph = make_graph()
        roots = np.random.default_rng(5).integers(0, graph.num_nodes, size=120)
        requests = list(micro_batches(roots, 32, FANOUTS))
        assert len(requests) == 4
        assert requests[-1].roots.size == 24  # ragged tail preserved

        serial_store = make_store(graph)
        with ParallelSampler(serial_store, workers=0, seed=3) as engine:
            expected = [engine.sample(r) for r in requests]

        pipe_store = make_store(graph)
        with ParallelSampler(pipe_store, workers=workers, seed=3) as engine:
            got = PipelinedExecutor(engine, depth=2).run(requests)

        for mine, theirs in zip(expected, got):
            for a, b in zip(mine.layers, theirs.layers):
                np.testing.assert_array_equal(a, b)
        assert serial_store.summary == pipe_store.summary

    def test_compute_stage_runs_in_order(self):
        graph = make_graph()
        requests = list(micro_batches(np.arange(60), 20, FANOUTS))
        with ParallelSampler(make_store(graph), workers=0) as engine:
            sizes = PipelinedExecutor(engine, depth=2).run(
                requests, compute=lambda r: r.layers[0].size
            )
        assert sizes == [20, 20, 20]

    def test_single_slot_engine_still_completes(self):
        graph = make_graph()
        requests = list(micro_batches(np.arange(40), 10, FANOUTS))
        with ParallelSampler(
            make_store(graph), workers=1, slots=1, seed=3
        ) as engine:
            got = PipelinedExecutor(engine, depth=1).run(requests)
        assert len(got) == 4


class TestErrorPaths:
    def test_roots_out_of_range(self):
        graph = make_graph()
        engine = ParallelSampler(make_store(graph), workers=0)
        bad = SampleRequest(
            roots=np.array([graph.num_nodes + 5]), fanouts=FANOUTS
        )
        with pytest.raises(GraphError):
            engine.submit(bad)
        with pytest.raises(GraphError):
            engine.submit(
                SampleRequest(roots=np.array([-1]), fanouts=FANOUTS)
            )
        engine.close()

    def test_closed_engine_rejects_submit(self):
        engine = ParallelSampler(make_store(make_graph()), workers=0)
        engine.close()
        with pytest.raises(ParallelExecutionError):
            engine.submit(make_request(make_graph()))

    def test_collect_unknown_seq(self):
        engine = ParallelSampler(make_store(make_graph()), workers=0)
        with pytest.raises(ParallelExecutionError):
            engine.collect(99)
        engine.close()

    def test_resize_with_inflight_batches_rejected(self):
        graph = make_graph()
        with ParallelSampler(
            make_store(graph), workers=1, seed=3
        ) as engine:
            engine.submit(make_request(graph, batch=8))
            bigger = make_request(graph, batch=256)
            with pytest.raises(ParallelExecutionError):
                engine.submit(bigger)

    def test_dead_worker_detected(self):
        graph = make_graph()
        with ParallelSampler(make_store(graph), workers=1, seed=3) as engine:
            engine.sample(make_request(graph))  # pool is live
            for proc in engine._procs:
                proc.terminate()
                proc.join(timeout=5)
            seq = engine.submit(make_request(graph, seed=9))
            with pytest.raises(ParallelExecutionError):
                engine.collect(seq)

    def test_close_is_idempotent(self):
        engine = ParallelSampler(make_store(make_graph()), workers=1, seed=3)
        engine.sample(make_request(make_graph()))
        engine.close()
        engine.close()


class TestGnnSessionIntegration:
    def test_session_workers_round_trip(self):
        from repro.api import GnnSession

        # workers=0 selects the legacy serial sampler (a different RNG
        # consumption order), so determinism is asserted between two
        # parallel worker counts.
        graph = make_graph()
        results = []
        for workers in (1, 2):
            with GnnSession(
                graph, num_partitions=4, seed=0, workers=workers
            ) as session:
                roots = np.arange(24, dtype=np.int64)
                results.append(session.sample(roots, fanouts=FANOUTS))
        for mine, theirs in zip(results[0].layers, results[1].layers):
            np.testing.assert_array_equal(mine, theirs)

    def test_session_rejects_workers_with_cache(self):
        from repro.api import GnnSession

        with pytest.raises(ConfigurationError):
            GnnSession(make_graph(), workers=2, cache_nodes=32)
