"""Tests for repro.serving.gateway (admission, batching, failover)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving.backends import BackendResult, ServingBackend
from repro.serving.gateway import (
    GatewayConfig,
    ServingGateway,
    serve_workload,
)
from repro.serving.workload import Arrival, TenantSpec, generate_arrivals


class FakeBackend(ServingBackend):
    """Deterministic fixed-service-time backend for gateway tests."""

    def __init__(self, name="fake", concurrency=1, service_s=1e-3):
        super().__init__(name=name, concurrency=concurrency)
        self.service_s = service_s
        self.calls = []

    def execute(self, roots, fanouts):
        self.calls.append((int(roots.size), tuple(fanouts)))
        return BackendResult(payload=None, service_s=self.service_s)


def tenant(name="a", rate=1000.0, slo=0.1):
    return TenantSpec(name=name, rate_rps=rate, slo_s=slo)


def arrival(t, name="a", num_roots=4, fanouts=(2, 2), slo=0.1, seq=0):
    rng = np.random.default_rng(seq)
    return Arrival(
        time_s=t,
        tenant=name,
        roots=rng.integers(0, 100, size=num_roots, dtype=np.int64),
        fanouts=fanouts,
        slo_s=slo,
        seq=seq,
    )


def config(**kwargs):
    defaults = dict(token_burst=64.0)
    defaults.update(kwargs)
    return GatewayConfig(**defaults)


class TestBatching:
    def test_coalesces_simultaneous_arrivals(self):
        backend = FakeBackend()
        gateway = ServingGateway([backend], [tenant()], config())
        arrivals = [arrival(0.0, seq=i) for i in range(6)]
        report = gateway.run(arrivals, duration_s=0.1)
        assert report.mean_batch_occupancy == 6.0
        assert report.completed == 6
        assert backend.calls == [(24, (2, 2))]

    def test_flush_on_root_budget(self):
        gateway = ServingGateway(
            [FakeBackend(concurrency=8)],
            [tenant()],
            config(batch_root_budget=16),
        )
        arrivals = [arrival(0.0, seq=i) for i in range(8)]
        report = gateway.run(arrivals, duration_s=0.1)
        assert report.batch_request_sizes == [4, 4]
        assert report.batch_root_sizes == [16, 16]

    def test_flush_on_request_cap(self):
        gateway = ServingGateway(
            [FakeBackend(concurrency=8)],
            [tenant()],
            config(batch_root_budget=10_000, max_batch_requests=2),
        )
        arrivals = [arrival(0.0, seq=i) for i in range(6)]
        report = gateway.run(arrivals, duration_s=0.1)
        assert report.batch_request_sizes == [2, 2, 2]

    def test_flush_on_max_wait(self):
        gateway = ServingGateway(
            [FakeBackend()], [tenant()], config(max_wait_s=5e-3)
        )
        report = gateway.run([arrival(0.0)], duration_s=0.1)
        assert report.completed == 1
        # Latency = max-wait flush + service time.
        assert report.p50 == pytest.approx(5e-3 + 1e-3)

    def test_groups_by_fanouts(self):
        backend = FakeBackend(concurrency=4)
        gateway = ServingGateway([backend], [tenant()], config())
        arrivals = [
            arrival(0.0, fanouts=(2, 2), seq=0),
            arrival(0.0, fanouts=(3,), seq=1),
            arrival(0.0, fanouts=(2, 2), seq=2),
        ]
        report = gateway.run(arrivals, duration_s=0.1)
        assert sorted(report.batch_request_sizes) == [1, 2]
        assert {fanouts for _n, fanouts in backend.calls} == {(2, 2), (3,)}

    def test_cross_tenant_coalescing(self):
        tenants = [tenant("a"), tenant("b")]
        gateway = ServingGateway([FakeBackend()], tenants, config())
        arrivals = [
            arrival(0.0, name="a", seq=0),
            arrival(0.0, name="b", seq=1),
        ]
        report = gateway.run(arrivals, duration_s=0.1)
        assert report.mean_batch_occupancy == 2.0
        assert report.tenants["a"].completed == 1
        assert report.tenants["b"].completed == 1


class TestScheduling:
    def test_edf_order_under_contention(self):
        """With the single slot busy, the tightest deadline runs next."""
        gateway = ServingGateway(
            [FakeBackend(service_s=10e-3)],
            [tenant("a"), tenant("b"), tenant("c")],
            config(max_batch_requests=1),
        )
        arrivals = [
            arrival(0.0, name="a", slo=0.100, seq=0),      # dispatches at 0
            arrival(1e-5, name="c", slo=0.050, seq=1),     # deadline 0.050
            arrival(2e-5, name="b", slo=0.010, seq=2),     # deadline 0.010
        ]
        report = gateway.run(arrivals, duration_s=0.1)
        # b (tighter SLO) overtakes c despite arriving later.
        assert report.tenants["b"].p50 < report.tenants["c"].p50

    def test_conservation(self):
        """offered = admitted + shed, and every admitted completes."""
        spec = TenantSpec(name="a", rate_rps=400.0, provisioned_rps=100.0)
        arrivals = generate_arrivals([spec], 0.5, num_nodes=100, seed=0)
        gateway = ServingGateway([FakeBackend(concurrency=2)], [spec])
        report = gateway.run(arrivals, duration_s=0.5)
        assert report.offered == len(arrivals)
        assert report.offered == report.admitted + report.shed
        assert report.completed == report.admitted


class TestBackpressure:
    def test_rate_limit_sheds_with_retry_after(self):
        spec = TenantSpec(name="a", rate_rps=400.0, provisioned_rps=100.0)
        arrivals = generate_arrivals([spec], 0.5, num_nodes=100, seed=0)
        gateway = ServingGateway([FakeBackend(concurrency=4)], [spec])
        report = gateway.run(arrivals, duration_s=0.5)
        assert report.shed > 0
        assert report.shed_by_reason.get("rate_limited", 0) > 0
        assert gateway.shed_responses
        for shed in gateway.shed_responses:
            assert shed.retry_after_s > 0
            assert shed.reason in ("rate_limited", "queue_full")
        # Admitted traffic still meets a sane latency bound.
        assert report.p99 < 0.05

    def test_queue_full_sheds(self):
        gateway = ServingGateway(
            [FakeBackend(service_s=50e-3)],
            [tenant()],
            config(queue_capacity=2, max_batch_requests=1),
        )
        arrivals = [arrival(i * 1e-5, seq=i) for i in range(10)]
        report = gateway.run(arrivals, duration_s=0.1)
        assert report.shed_by_reason.get("queue_full", 0) == 7
        assert report.admitted == 3
        assert report.completed == 3

    def test_overload_bounds_admitted_tail(self):
        """2x overload: non-zero shed, but admitted p99 stays put."""
        base = TenantSpec(name="a", rate_rps=200.0)
        over = base.overloaded(2.0)
        backend_args = dict(concurrency=2, service_s=2e-3)
        baseline = ServingGateway(
            [FakeBackend(**backend_args)], [base]
        ).run(generate_arrivals([base], 0.5, 100, seed=1), 0.5)
        overload = ServingGateway(
            [FakeBackend(**backend_args)], [over]
        ).run(generate_arrivals([over], 0.5, 100, seed=1), 0.5)
        assert baseline.shed_rate == 0.0 or baseline.shed_rate < 0.05
        assert overload.shed_rate > 0.1
        assert overload.p99 < 5 * baseline.p99 + 10e-3


class TestFailover:
    def test_in_flight_retried_on_software(self):
        hardware = FakeBackend(name="hw", service_s=100e-3)
        software = FakeBackend(name="sw", concurrency=2, service_s=1e-3)
        gateway = ServingGateway(
            [hardware, software],
            [tenant()],
            config(max_batch_requests=1),
        )
        gateway.inject_backend_failure("hw", at_s=10e-3)
        report = gateway.run([arrival(0.0)], duration_s=0.1)
        # The batch was in flight on hw at the failure, got retried,
        # and completed on sw — nothing admitted was dropped.
        assert report.retried == 1
        assert report.completed == 1
        assert report.p50 == pytest.approx(10e-3 + 1e-3)
        assert not hardware.healthy

    def test_no_hardware_dispatch_after_failure(self):
        hardware = FakeBackend(name="hw", service_s=1e-3)
        software = FakeBackend(name="sw", concurrency=2, service_s=1e-3)
        gateway = ServingGateway(
            [hardware, software], [tenant()], config(max_batch_requests=1)
        )
        gateway.inject_backend_failure("hw", at_s=5e-3)
        arrivals = [arrival(0.0, seq=0), arrival(20e-3, seq=1)]
        report = gateway.run(arrivals, duration_s=0.1)
        assert report.completed == 2
        assert len(hardware.calls) == 1      # only the pre-failure batch
        assert len(software.calls) == 1      # the post-failure batch
        assert report.backends["hw"].batches == 1
        assert report.backends["sw"].batches == 1

    def test_failure_with_nothing_in_flight_is_benign(self):
        hardware = FakeBackend(name="hw")
        software = FakeBackend(name="sw")
        gateway = ServingGateway([hardware, software], [tenant()], config())
        gateway.inject_backend_failure("hw", at_s=50e-3)
        report = gateway.run([arrival(0.0)], duration_s=0.1)
        assert report.retried == 0
        assert report.completed == 1


class TestDeterminism:
    def test_same_seed_same_report(self):
        spec = TenantSpec(name="a", rate_rps=300.0)

        def run_once():
            arrivals = generate_arrivals([spec], 0.3, 100, seed=5)
            gateway = ServingGateway([FakeBackend(concurrency=2)], [spec])
            return gateway.run(arrivals, duration_s=0.3)

        a, b = run_once(), run_once()
        assert a.latencies_s == b.latencies_s
        assert a.batch_request_sizes == b.batch_request_sizes
        assert a.shed == b.shed


class TestValidation:
    def test_gateway_needs_backends_and_tenants(self):
        with pytest.raises(ConfigurationError):
            ServingGateway([], [tenant()])
        with pytest.raises(ConfigurationError):
            ServingGateway([FakeBackend()], [])
        with pytest.raises(ConfigurationError):
            ServingGateway([FakeBackend(), FakeBackend()], [tenant()])

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            GatewayConfig(batch_root_budget=0)
        with pytest.raises(ConfigurationError):
            GatewayConfig(max_wait_s=0)
        with pytest.raises(ConfigurationError):
            GatewayConfig(queue_capacity=0)
        with pytest.raises(ConfigurationError):
            GatewayConfig(token_burst=0.5)
        with pytest.raises(ConfigurationError):
            GatewayConfig(token_rate_headroom=0)

    def test_fault_injection_validation(self):
        gateway = ServingGateway([FakeBackend()], [tenant()])
        with pytest.raises(ConfigurationError):
            gateway.inject_backend_failure("ghost", 0.1)
        with pytest.raises(ConfigurationError):
            gateway.inject_backend_failure("fake", -1.0)

    def test_run_validation(self):
        gateway = ServingGateway([FakeBackend()], [tenant()])
        with pytest.raises(ConfigurationError):
            gateway.run([], duration_s=0)


class TestServeWorkload:
    def test_end_to_end_helper(self):
        spec = TenantSpec(name="a", rate_rps=200.0)
        report = serve_workload(
            [FakeBackend(concurrency=2)],
            [spec],
            duration_s=0.2,
            num_nodes=100,
            seed=0,
        )
        assert report.completed == report.admitted > 0
        assert report.duration_s == 0.2

    def test_fault_schedule_passthrough(self):
        hw = FakeBackend(name="hw", service_s=30e-3)
        sw = FakeBackend(name="sw", concurrency=4)
        spec = TenantSpec(name="a", rate_rps=200.0)
        report = serve_workload(
            [hw, sw],
            [spec],
            duration_s=0.2,
            num_nodes=100,
            seed=0,
            fail_backend_at={"hw": 0.05},
        )
        assert not hw.healthy
        assert report.completed == report.admitted > 0


class TestClusterHooks:
    """attach()/load()/drain/halt/evacuate — the cluster-facing surface."""

    def attached(self, backend=None, admission=True, **cfg):
        from repro.axe.events import Simulator

        backend = backend or FakeBackend(service_s=10e-3)
        gateway = ServingGateway([backend], [tenant()], config(**cfg))
        sim = Simulator()
        gateway.attach(sim, admission=admission)
        return gateway, sim

    def test_load_reports_queue_and_in_flight(self):
        gateway, sim = self.attached(
            backend=FakeBackend(service_s=50e-3), max_wait_s=1e-3
        )
        for i in range(3):
            sim.at(0.0, lambda s=i: gateway.submit(arrival(0.0, seq=s)))
        sim.run(until=2e-3)
        load = gateway.load()
        # One coalesced batch of 12 roots dispatched; nothing queued.
        assert load.in_flight_batches == 1
        assert load.in_flight_roots == 12
        assert load.queue_depth == 0
        assert load.score == 12
        sim.run()
        after = gateway.load()
        assert after.in_flight_batches == 0
        assert after.score == 0

    def test_queue_depth_counts_undispatched(self):
        # Single slot busy for a long time: later arrivals stay queued.
        gateway, sim = self.attached(
            backend=FakeBackend(service_s=1.0), max_wait_s=1e-3
        )
        sim.at(0.0, lambda: gateway.submit(arrival(0.0, seq=0)))
        for i in range(4):
            sim.at(5e-3, lambda s=i: gateway.submit(arrival(5e-3, seq=10 + s)))
        sim.run(until=10e-3)
        assert gateway.load().queue_depth == 4

    def test_drain_finishes_admitted_and_sheds_new(self):
        gateway, sim = self.attached()
        sim.at(0.0, lambda: gateway.submit(arrival(0.0, seq=0)))
        sim.at(1e-3, gateway.begin_drain)
        sim.at(2e-3, lambda: gateway.submit(arrival(2e-3, seq=1)))
        sim.run()
        assert gateway.drained
        gateway.assert_drained()
        report = gateway.metrics.snapshot(duration_s=0.1, drain_s=sim.now)
        assert report.completed == 1
        assert [s.reason for s in gateway.shed_responses] == ["draining"]
        assert gateway.shed_responses[0].retry_after_s > 0

    def test_assert_drained_before_begin_drain_raises(self):
        from repro.errors import SimulationError

        gateway, _sim = self.attached()
        with pytest.raises(SimulationError):
            gateway.assert_drained()

    def test_assert_drained_with_work_outstanding_raises(self):
        from repro.errors import SimulationError

        gateway, sim = self.attached(backend=FakeBackend(service_s=1.0))
        sim.at(0.0, lambda: gateway.submit(arrival(0.0, seq=0)))
        sim.run(until=10e-3)
        gateway.begin_drain()
        with pytest.raises(SimulationError):
            gateway.assert_drained()

    def test_halt_invalidates_in_flight(self):
        backend = FakeBackend(service_s=20e-3)
        gateway, sim = self.attached(backend=backend, max_wait_s=1e-3)
        sim.at(0.0, lambda: gateway.submit(arrival(0.0, seq=0)))
        sim.at(5e-3, gateway.halt)
        sim.run()
        report = gateway.metrics.snapshot(duration_s=0.1, drain_s=sim.now)
        # The batch dispatched but its completion no longer counts.
        assert backend.calls
        assert report.completed == 0

    def test_submit_on_halted_gateway_raises(self):
        from repro.errors import SimulationError

        gateway, sim = self.attached()
        gateway.halt()
        with pytest.raises(SimulationError):
            gateway.submit(arrival(0.0, seq=0))
        with pytest.raises(SimulationError):
            gateway.submit_admitted(arrival(0.0, seq=1))

    def test_evacuate_collects_every_admitted_request(self):
        # Three strata: in-flight batch, scheduler backlog, unflushed group.
        gateway, sim = self.attached(
            backend=FakeBackend(service_s=1.0), max_wait_s=50e-3
        )
        flushed = [arrival(0.0, seq=i) for i in range(4)]  # flush + dispatch
        queued = [arrival(1e-3, seq=4 + i) for i in range(4)]  # flush, queued
        waiting = [arrival(2e-3, seq=8)]  # still coalescing
        for a in flushed + queued + waiting:
            sim.at(a.time_s, lambda x=a: gateway.submit(x))
        sim.run(until=3e-3)
        gateway.halt()
        orphans = gateway.evacuate()
        assert [o.seq for o in orphans] == list(range(9))
        assert gateway.drained
        assert gateway.load().score == 0

    def test_evacuated_requests_complete_elsewhere(self):
        dead_backend = FakeBackend(service_s=1.0)
        dead, sim = self.attached(backend=dead_backend)
        for i in range(3):
            sim.at(0.0, lambda s=i: dead.submit(arrival(0.0, seq=s)))
        sim.run(until=5e-3)
        dead.halt()
        orphans = dead.evacuate()
        survivor = ServingGateway(
            [FakeBackend(service_s=1e-3)], [tenant()], config()
        )
        survivor.attach(sim, admission=False)
        for o in orphans:
            survivor.submit_admitted(o)
        sim.run()
        report = survivor.metrics.snapshot(duration_s=0.1, drain_s=sim.now)
        assert report.completed == 3

    def test_submit_admitted_skips_admission_and_capacity(self):
        gateway, sim = self.attached(
            backend=FakeBackend(service_s=1.0),
            admission=False,
            queue_capacity=2,
        )
        for i in range(6):
            sim.at(0.0, lambda s=i: gateway.submit_admitted(arrival(0.0, seq=s)))
        sim.run(until=1e-3)
        assert gateway.shed_responses == []
        assert gateway.load().queue_depth + gateway.load().in_flight_batches > 0

    def test_submit_admitted_on_draining_gateway_raises(self):
        from repro.errors import SimulationError

        gateway, _sim = self.attached()
        gateway.begin_drain()
        with pytest.raises(SimulationError):
            gateway.submit_admitted(arrival(0.0, seq=0))

    def test_on_shed_observer_fires(self):
        gateway, sim = self.attached()
        seen = []
        gateway.on_shed = lambda arr, resp: seen.append((arr.seq, resp.reason))
        gateway.begin_drain()
        sim.at(1e-3, lambda: gateway.submit(arrival(1e-3, seq=7)))
        sim.run()
        assert seen == [(7, "draining")]
