"""Tests for repro.axe.sampling (Tech-2)."""

import numpy as np
import pytest

from repro.axe.sampling import ReservoirSampler, StreamingSampler, sampling_speedup
from repro.errors import ConfigurationError


class TestReservoirSampler:
    def test_cycles_n_plus_k(self):
        assert ReservoirSampler().cycles(100, 10) == 110

    def test_storage_n(self):
        assert ReservoirSampler().storage_entries(100) == 100

    def test_sample_values(self):
        rng = np.random.default_rng(0)
        samples, cycles, storage = ReservoirSampler().sample(
            np.arange(50), 10, rng
        )
        assert len(samples) == 10
        assert set(samples.tolist()) <= set(range(50))
        assert cycles == 60 and storage == 50

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ReservoirSampler().sample(np.array([]), 5, np.random.default_rng(0))


class TestStreamingSampler:
    def test_cycles_n_only(self):
        """Tech-2: streaming sampling needs N cycles, not N + K."""
        assert StreamingSampler().cycles(100, 10) == 100

    def test_cycles_min_k(self):
        assert StreamingSampler().cycles(3, 10) == 10

    def test_no_candidate_storage(self):
        assert StreamingSampler().storage_entries(100) == 0

    def test_sample_values(self):
        rng = np.random.default_rng(0)
        samples, cycles, storage = StreamingSampler().sample(
            np.arange(100, 150), 10, rng
        )
        assert len(samples) == 10
        assert set(samples.tolist()) <= set(range(100, 150))
        assert cycles == 50
        assert storage == 10

    def test_group_structure(self):
        rng = np.random.default_rng(1)
        samples, _c, _s = StreamingSampler().sample(np.arange(40), 4, rng)
        for group, pick in enumerate(samples):
            assert group * 10 <= pick < (group + 1) * 10

    def test_validation(self):
        sampler = StreamingSampler()
        with pytest.raises(ConfigurationError):
            sampler.cycles(0, 5)
        with pytest.raises(ConfigurationError):
            sampler.sample(np.array([1]), 0, np.random.default_rng(0))


class TestSpeedup:
    def test_speedup_formula(self):
        assert sampling_speedup(100, 10) == pytest.approx(1.1)

    def test_speedup_grows_with_fanout_share(self):
        assert sampling_speedup(10, 10) > sampling_speedup(1000, 10)

    def test_statistical_equivalence(self):
        """Streaming and uniform sampling draw from (nearly) the same
        marginal distribution — the basis of the accuracy-parity claim."""
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(1)
        n, k, trials = 30, 6, 4000
        count_a = np.zeros(n)
        count_b = np.zeros(n)
        streaming = StreamingSampler()
        reservoir = ReservoirSampler()
        for _ in range(trials):
            s, _, _ = streaming.sample(np.arange(n), k, rng_a)
            r, _, _ = reservoir.sample(np.arange(n), k, rng_b)
            count_a[s] += 1
            count_b[r] += 1
        # Total variation distance between empirical marginals is small.
        pa, pb = count_a / count_a.sum(), count_b / count_b.sum()
        assert 0.5 * np.abs(pa - pb).sum() < 0.05
