"""Tests for repro.graph.csr."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph


@pytest.fixture
def small_graph():
    # 0 -> 1, 2;  1 -> 2;  2 -> (none);  3 -> 0
    return CSRGraph.from_edges(4, [(0, 1), (0, 2), (1, 2), (3, 0)])


class TestConstruction:
    def test_from_edges_counts(self, small_graph):
        assert small_graph.num_nodes == 4
        assert small_graph.num_edges == 4

    def test_neighbors(self, small_graph):
        assert sorted(small_graph.neighbors(0).tolist()) == [1, 2]
        assert small_graph.neighbors(2).tolist() == []
        assert small_graph.neighbors(3).tolist() == [0]

    def test_degrees(self, small_graph):
        assert small_graph.degrees().tolist() == [2, 1, 0, 1]

    def test_degree_single(self, small_graph):
        assert small_graph.degree(0) == 2

    def test_from_edges_empty(self):
        graph = CSRGraph.from_edges(3, [])
        assert graph.num_edges == 0
        assert graph.neighbors(1).tolist() == []

    def test_from_edges_preserves_input_order_per_source(self):
        graph = CSRGraph.from_edges(3, [(0, 2), (0, 1), (0, 0)])
        assert graph.neighbors(0).tolist() == [2, 1, 0]

    def test_edge_attr_fill(self):
        graph = CSRGraph.from_edges(2, [(0, 1)], edge_attr_fill=2.5)
        assert graph.edge_attr.tolist() == [2.5]

    def test_repr_mentions_sizes(self, small_graph):
        assert "num_nodes=4" in repr(small_graph)


class TestValidation:
    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_indptr_monotone(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0, 0]))

    def test_indptr_tail_matches_indices(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 3]), np.array([0, 0]))

    def test_indices_in_range(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_node_attr_row_count(self):
        with pytest.raises(GraphError):
            CSRGraph(
                np.array([0, 0, 0]),
                np.array([], dtype=np.int64),
                node_attr=np.zeros((1, 4)),
            )

    def test_edge_attr_row_count(self):
        with pytest.raises(GraphError):
            CSRGraph(
                np.array([0, 1]),
                np.array([0]),
                edge_attr=np.zeros(3),
            )

    def test_out_of_range_node_query(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.neighbors(10)

    def test_out_of_range_edges(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(0, 5)])

    def test_malformed_edge_pairs(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(0, 1, 2)])


class TestAttributes:
    def test_attributes_lookup(self):
        attrs = np.arange(12, dtype=np.float32).reshape(4, 3)
        graph = CSRGraph.from_edges(4, [(0, 1)], node_attr=attrs)
        rows = graph.attributes([2, 0])
        assert rows.tolist() == [[6, 7, 8], [0, 1, 2]]

    def test_attr_len(self):
        attrs = np.zeros((3, 7), dtype=np.float32)
        graph = CSRGraph.from_edges(3, [], node_attr=attrs)
        assert graph.attr_len == 7

    def test_attr_len_zero_without_attrs(self, small_graph):
        assert small_graph.attr_len == 0

    def test_attributes_raises_without_attrs(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.attributes([0])

    def test_attributes_out_of_range(self):
        graph = CSRGraph.from_edges(2, [], node_attr=np.zeros((2, 2)))
        with pytest.raises(GraphError):
            graph.attributes([2])


class TestSizes:
    def test_structure_nbytes(self, small_graph):
        # 5 indptr entries + 4 indices, all int64
        assert small_graph.structure_nbytes() == 5 * 8 + 4 * 8

    def test_attribute_nbytes(self):
        graph = CSRGraph.from_edges(
            2, [(0, 1)], node_attr=np.zeros((2, 4), dtype=np.float32),
            edge_attr_fill=1.0,
        )
        assert graph.attribute_nbytes() == 2 * 4 * 4 + 1 * 4

    def test_neighbor_slices(self, small_graph):
        starts, stops = small_graph.neighbor_slices([0, 3])
        assert (stops - starts).tolist() == [2, 1]

    def test_neighbor_slices_out_of_range(self, small_graph):
        with pytest.raises(GraphError):
            small_graph.neighbor_slices([7])


class TestFromEdgesStreaming:
    """from_edges consumes generators without materializing a list."""

    EDGES = [(0, 1), (0, 2), (1, 2), (3, 0), (0, 0)]

    def test_generator_matches_list(self):
        from_list = CSRGraph.from_edges(4, self.EDGES)
        from_gen = CSRGraph.from_edges(4, (e for e in self.EDGES))
        assert np.array_equal(from_list.indptr, from_gen.indptr)
        assert np.array_equal(from_list.indices, from_gen.indices)

    def test_generator_preserves_input_order_per_source(self):
        edges = [(0, 2), (0, 1), (0, 0)]
        graph = CSRGraph.from_edges(3, (e for e in edges))
        assert graph.neighbors(0).tolist() == [2, 1, 0]

    def test_empty_generator(self):
        graph = CSRGraph.from_edges(3, (e for e in ()))
        assert graph.num_edges == 0

    def test_generator_with_edge_attr_fill(self):
        graph = CSRGraph.from_edges(
            2, ((0, 1) for _ in range(1)), edge_attr_fill=2.5
        )
        assert graph.edge_attr.tolist() == [2.5]

    def test_malformed_generator_raises_graph_error(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, ((0, 1, 2) for _ in range(1)))
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, iter([("a", "b")]))

    def test_out_of_range_generator_edges(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, ((0, 5) for _ in range(1)))

    def test_large_generator(self):
        n = 500
        edges = ((i, (i + 1) % n) for i in range(n))
        graph = CSRGraph.from_edges(n, edges)
        assert graph.num_edges == n
        assert graph.neighbors(n - 1).tolist() == [0]
