"""Equivalence tests: segment reductions vs. per-row Python loops.

The vectorized neighbor-aggregation primitives (``np.add.at`` /
``np.add.reduceat`` under :func:`segment_sum` /
:func:`ragged_segment_sum`) must produce exactly what the historical
per-row loops produced — including float32 accumulation order, empty
segments, and every-key-duplicated batches.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gnn.embedding import EmbeddingTable
from repro.gnn.layers import ragged_segment_sum, segment_mean, segment_sum


def loop_segment_sum(values, segment_ids, num_segments):
    out = np.zeros((num_segments,) + values.shape[1:], dtype=values.dtype)
    for row, seg in zip(values, segment_ids):
        out[seg] = out[seg] + row
    return out


def loop_ragged_sum(values, offsets):
    out = np.zeros((offsets.size - 1,) + values.shape[1:], dtype=values.dtype)
    for i in range(offsets.size - 1):
        for row in values[offsets[i] : offsets[i + 1]]:
            out[i] = out[i] + row
    return out


class TestSegmentSum:
    def test_matches_loop(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=(40, 6)).astype(np.float32)
        ids = rng.integers(0, 7, size=40)
        expected = loop_segment_sum(values, ids, 7)
        np.testing.assert_array_equal(segment_sum(values, ids, 7), expected)

    def test_duplicates_accumulate(self):
        # The scatter-add property fancy-index assignment silently lacks.
        values = np.ones((5, 2), dtype=np.float32)
        out = segment_sum(values, np.zeros(5, dtype=np.int64), 3)
        np.testing.assert_array_equal(out[0], np.full(2, 5.0))
        np.testing.assert_array_equal(out[1:], np.zeros((2, 2)))

    def test_empty_input(self):
        out = segment_sum(np.empty((0, 3), dtype=np.float32), np.empty(0), 4)
        assert out.shape == (4, 3)
        assert not out.any()

    def test_rejects_bad_ids(self):
        values = np.ones((2, 2), dtype=np.float32)
        with pytest.raises(ConfigurationError):
            segment_sum(values, np.array([0, 5]), 3)
        with pytest.raises(ConfigurationError):
            segment_sum(values, np.array([0]), 3)

    def test_mean_matches_loop(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=(30, 4)).astype(np.float32)
        ids = rng.integers(0, 5, size=30)
        counts = np.bincount(ids, minlength=6)
        expected = loop_segment_sum(values, ids, 6)
        nz = counts > 0
        expected[nz] = expected[nz] / counts[nz, None]
        np.testing.assert_allclose(segment_mean(values, ids, 6), expected)

    def test_mean_empty_segment_is_zero(self):
        out = segment_mean(np.ones((2, 2), dtype=np.float32), np.array([2, 2]), 4)
        assert not np.isnan(out).any()
        np.testing.assert_array_equal(out[0], np.zeros(2))
        np.testing.assert_array_equal(out[2], np.ones(2))


class TestRaggedSegmentSum:
    def test_matches_loop(self):
        rng = np.random.default_rng(2)
        lengths = rng.integers(0, 6, size=12)
        offsets = np.zeros(13, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        values = rng.normal(size=(int(offsets[-1]), 3)).astype(np.float32)
        # reduceat may associate additions pairwise, so allow float32
        # rounding relative to the strict left-fold loop.
        np.testing.assert_allclose(
            ragged_segment_sum(values, offsets),
            loop_ragged_sum(values, offsets),
            rtol=1e-5,
            atol=1e-6,
        )

    def test_empty_segments_are_zero(self):
        # reduceat's empty-segment quirk must not leak through.
        values = np.arange(6, dtype=np.float32).reshape(3, 2)
        offsets = np.array([0, 0, 3, 3, 3])
        out = ragged_segment_sum(values, offsets)
        np.testing.assert_array_equal(out[0], np.zeros(2))
        np.testing.assert_array_equal(out[1], values.sum(axis=0))
        np.testing.assert_array_equal(out[2], np.zeros(2))
        np.testing.assert_array_equal(out[3], np.zeros(2))

    def test_all_empty(self):
        out = ragged_segment_sum(
            np.empty((0, 2), dtype=np.float32), np.zeros(5, dtype=np.int64)
        )
        assert out.shape == (4, 2)
        assert not out.any()

    def test_rejects_bad_offsets(self):
        values = np.ones((3, 1), dtype=np.float32)
        with pytest.raises(ConfigurationError):
            ragged_segment_sum(values, np.array([0, 2]))  # doesn't cover values
        with pytest.raises(ConfigurationError):
            ragged_segment_sum(values, np.array([0, 2, 1, 3]))  # decreasing


class LoopEmbeddingTable(EmbeddingTable):
    """The historical per-row dict accumulation, kept as the oracle."""

    def __init__(self, num_nodes, dim, seed=0):
        super().__init__(num_nodes, dim, seed=seed)
        self._dict = {}

    def accumulate_grad(self, nodes, grads):
        nodes = np.asarray(nodes, dtype=np.int64).reshape(-1)
        grads = np.asarray(grads, dtype=np.float32).reshape(-1, self.dim)
        for node, grad in zip(nodes, grads):
            key = int(node)
            if key in self._dict:
                self._dict[key] = self._dict[key] + grad
            else:
                self._dict[key] = grad.copy()

    def step(self, lr):
        for node, grad in self._dict.items():
            self.table[node] -= lr * grad
        self._dict.clear()


class TestEmbeddingEquivalence:
    def test_vectorized_matches_loop(self):
        rng = np.random.default_rng(3)
        fast = EmbeddingTable(50, 8, seed=4)
        slow = LoopEmbeddingTable(50, 8, seed=4)
        np.testing.assert_array_equal(fast.table, slow.table)
        for _ in range(5):
            nodes = rng.integers(0, 50, size=32)
            grads = rng.normal(size=(32, 8)).astype(np.float32)
            fast.accumulate_grad(nodes, grads)
            slow.accumulate_grad(nodes, grads)
        # np.add.at applies additions in occurrence order, so the
        # float32 accumulation is bit-identical to the loop.
        fast.step(0.1)
        slow.step(0.1)
        np.testing.assert_array_equal(fast.table, slow.table)

    def test_duplicate_heavy_batch(self):
        fast = EmbeddingTable(10, 4, seed=0)
        slow = LoopEmbeddingTable(10, 4, seed=0)
        nodes = np.array([7, 7, 7, 7])
        grads = np.arange(16, dtype=np.float32).reshape(4, 4)
        fast.accumulate_grad(nodes, grads)
        slow.accumulate_grad(nodes, grads)
        assert fast.pending_rows == 1
        fast.step(1.0)
        slow.step(1.0)
        np.testing.assert_array_equal(fast.table, slow.table)

    def test_pending_rows_across_batches(self):
        table = EmbeddingTable(20, 2, seed=0)
        table.accumulate_grad(np.array([1, 2]), np.ones((2, 2)))
        table.accumulate_grad(np.array([2, 3]), np.ones((2, 2)))
        assert table.pending_rows == 3
        table.step(0.5)
        assert table.pending_rows == 0
