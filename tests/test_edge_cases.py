"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro.axe.commands import sample_command
from repro.axe.engine import AxeEngine, EngineConfig
from repro.axe.core import CoreConfig
from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_graph
from repro.graph.partition import HashPartitioner
from repro.memstore.store import PartitionedStore


class TestDegenerateGraphs:
    def test_engine_on_edgeless_graph(self):
        """Every node self-loops: the engine must still complete."""
        graph = CSRGraph.from_edges(
            50, [], node_attr=np.zeros((50, 4), dtype=np.float32)
        )
        engine = AxeEngine(graph, EngineConfig(num_cores=1))
        results, stats = engine.run(sample_command(np.arange(10), (3, 2)))
        for root in range(10):
            assert (results[root][1] == root).all()
            assert (results[root][2] == root).all()
        assert stats.elapsed_s > 0

    def test_sampler_on_single_node_graph(self):
        graph = CSRGraph.from_edges(
            1, [], node_attr=np.zeros((1, 2), dtype=np.float32)
        )
        store = PartitionedStore(graph, HashPartitioner(1))
        result = MultiHopSampler(store).sample(
            SampleRequest(roots=np.array([0]), fanouts=(4,))
        )
        assert (result.layers[1] == 0).all()

    def test_engine_on_star_graph(self):
        """One supernode with huge degree (the paper's supernode case:
        'such loosely coupled dataflow naturally supports the supernode
        scenario')."""
        num_leaves = 2000
        edges = [(0, leaf) for leaf in range(1, num_leaves + 1)]
        edges += [(leaf, 0) for leaf in range(1, num_leaves + 1)]
        graph = CSRGraph.from_edges(
            num_leaves + 1, edges,
            node_attr=np.zeros((num_leaves + 1, 4), dtype=np.float32),
        )
        engine = AxeEngine(graph, EngineConfig(num_cores=1))
        results, stats = engine.run(sample_command(np.array([0]), (10,)))
        assert results[0][1].shape == (10,)
        assert (results[0][1] >= 1).all()
        assert stats.elapsed_s > 0

    def test_huge_fanout_exceeds_degree(self):
        graph = power_law_graph(100, 2.0, attr_len=2, seed=0)
        store = PartitionedStore(graph, HashPartitioner(1))
        result = MultiHopSampler(store, seed=0).sample(
            SampleRequest(roots=np.array([5]), fanouts=(64,))
        )
        assert result.layers[1].shape == (1, 64)

    def test_one_hop_one_fanout(self):
        graph = power_law_graph(100, 5.0, attr_len=2, seed=0)
        engine = AxeEngine(graph, EngineConfig(num_cores=1))
        results, _stats = engine.run(sample_command(np.array([1]), (1,)))
        assert results[1][1].shape == (1,)


class TestStressConfigurations:
    def test_window_of_one(self):
        graph = power_law_graph(500, 5.0, attr_len=4, seed=0)
        config = EngineConfig(num_cores=1, core=CoreConfig(window=1, max_tags=4))
        engine = AxeEngine(graph, config)
        _results, stats = engine.run(sample_command(np.arange(16), (5,)))
        assert stats.roots == 16

    def test_more_cores_than_roots(self):
        graph = power_law_graph(500, 5.0, attr_len=4, seed=0)
        engine = AxeEngine(graph, EngineConfig(num_cores=4))
        results, stats = engine.run(sample_command(np.array([1, 2]), (3,)))
        assert set(results) == {1, 2}
        assert stats.roots == 2

    def test_batch_of_one(self):
        graph = power_law_graph(500, 5.0, attr_len=4, seed=0)
        engine = AxeEngine(graph, EngineConfig(num_cores=2))
        results, _stats = engine.run(sample_command(np.array([7]), (5, 5)))
        assert 7 in results

    def test_duplicate_roots(self):
        """The same root twice: core results are keyed by root, so the
        layers come from the last completion — both must be valid."""
        graph = power_law_graph(500, 5.0, attr_len=4, seed=0)
        engine = AxeEngine(graph, EngineConfig(num_cores=1))
        results, stats = engine.run(sample_command(np.array([3, 3]), (4,)))
        assert stats.roots == 2
        allowed = set(graph.neighbors(3).tolist()) or {3}
        assert set(results[3][1].tolist()) <= allowed


class TestNumericalRobustness:
    def test_multilabel_loss_all_ones(self):
        from repro.gnn.train import multilabel_loss

        loss, grad = multilabel_loss(np.zeros((2, 3)), np.ones((2, 3)))
        assert np.isfinite(loss)
        assert (grad < 0).all()

    def test_sage_layer_zero_input(self):
        from repro.gnn.layers import SageLayer

        layer = SageLayer(4, 4, seed=0)
        out = layer.forward(
            np.zeros((1, 1, 4), dtype=np.float32),
            np.zeros((1, 1, 2, 4), dtype=np.float32),
        )
        assert np.isfinite(out).all()

    def test_bdi_all_0xff(self):
        from repro.mof.bdi import compress_block, decompress_block

        block = b"\xff" * 64
        assert decompress_block(compress_block(block)) == block

    def test_footprint_of_tiny_spec(self):
        from repro.graph.datasets import DatasetSpec
        from repro.memstore.layout import FootprintModel

        tiny = DatasetSpec("tiny", 10, 20, 4)
        report = FootprintModel().report(tiny)
        assert report.min_servers == 1
        assert report.total_bytes > 0
