"""Tests for repro.units."""

import pytest

from repro import units
from repro.units import (
    cycles_to_seconds,
    format_bytes,
    format_rate,
    gbps_to_bytes_per_s,
    gib_per_s,
    seconds_to_cycles,
)


class TestConversions:
    def test_gbps_to_bytes(self):
        assert gbps_to_bytes_per_s(8) == 1e9

    def test_gbps_200(self):
        assert gbps_to_bytes_per_s(200) == 25e9

    def test_gib_per_s(self):
        assert gib_per_s(1) == 1024**3

    def test_cycles_to_seconds(self):
        assert cycles_to_seconds(250, 250e6) == pytest.approx(1e-6)

    def test_cycles_to_seconds_rejects_zero_freq(self):
        with pytest.raises(ValueError):
            cycles_to_seconds(1, 0)

    def test_seconds_to_cycles_rounds_up(self):
        assert seconds_to_cycles(1.5e-9, 1e9) == 2

    def test_seconds_to_cycles_exact(self):
        assert seconds_to_cycles(4e-9, 1e9) == 4

    def test_seconds_to_cycles_rejects_negative(self):
        with pytest.raises(ValueError):
            seconds_to_cycles(-1, 1e9)

    def test_seconds_to_cycles_rejects_zero_freq(self):
        with pytest.raises(ValueError):
            seconds_to_cycles(1, 0)

    def test_unit_constants_are_consistent(self):
        assert units.MB == 1024 * units.KB
        assert units.GB == 1024 * units.MB
        assert units.TB == 1024 * units.GB


class TestFormatting:
    def test_format_bytes_tb(self):
        assert format_bytes(3 * units.TB) == "3.00TB"

    def test_format_bytes_small(self):
        assert format_bytes(100) == "100B"

    def test_format_bytes_kb(self):
        assert format_bytes(2048) == "2.00KB"

    def test_format_bytes_rejects_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_format_rate_mega(self):
        assert format_rate(1.5e6) == "1.50M"

    def test_format_rate_plain(self):
        assert format_rate(12.0) == "12.00"

    def test_format_rate_rejects_negative(self):
        with pytest.raises(ValueError):
            format_rate(-5)
