"""Tests for repro.framework.sampler."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.framework.cache import HotNodeCache
from repro.framework.requests import NegativeSampleRequest, SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.framework.selectors import select_streaming
from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_graph
from repro.graph.partition import HashPartitioner
from repro.memstore.store import PartitionedStore


@pytest.fixture
def sampler():
    graph = power_law_graph(500, 8.0, attr_len=6, seed=0)
    store = PartitionedStore(graph, HashPartitioner(4))
    return MultiHopSampler(store, seed=1)


class TestSampling:
    def test_layer_shapes(self, sampler):
        request = SampleRequest(roots=np.array([1, 2, 3]), fanouts=(4, 3))
        result = sampler.sample(request)
        assert result.layers[0].shape == (3,)
        assert result.layers[1].shape == (3, 4)
        assert result.layers[2].shape == (3, 12)

    def test_sampled_are_neighbors(self, sampler):
        request = SampleRequest(roots=np.array([5]), fanouts=(8,))
        result = sampler.sample(request)
        graph = sampler.store.graph
        neighbors = set(graph.neighbors(5).tolist()) or {5}
        assert set(result.layers[1].reshape(-1).tolist()) <= neighbors

    def test_second_hop_from_first(self, sampler):
        request = SampleRequest(roots=np.array([5]), fanouts=(2, 3))
        result = sampler.sample(request)
        graph = sampler.store.graph
        hop1 = result.layers[1][0]
        for group, parent in enumerate(hop1):
            allowed = set(graph.neighbors(int(parent)).tolist()) or {int(parent)}
            sampled = result.layers[2][0, group * 3 : (group + 1) * 3]
            assert set(sampled.tolist()) <= allowed

    def test_zero_degree_self_loop(self):
        graph = CSRGraph.from_edges(3, [], node_attr=np.zeros((3, 2), dtype=np.float32))
        store = PartitionedStore(graph, HashPartitioner(1))
        sampler = MultiHopSampler(store)
        result = sampler.sample(SampleRequest(roots=np.array([1]), fanouts=(4,)))
        assert (result.layers[1] == 1).all()

    def test_attributes_fetched(self, sampler):
        request = SampleRequest(roots=np.array([1, 2]), fanouts=(3,))
        result = sampler.sample(request)
        assert result.attributes is not None
        assert result.attributes[0].shape == (2, 6)  # roots are a 1-D layer
        assert result.attributes[1].shape == (2, 3, 6)

    def test_attribute_values_match_graph(self, sampler):
        request = SampleRequest(roots=np.array([7]), fanouts=(2,))
        result = sampler.sample(request)
        graph = sampler.store.graph
        expected = graph.node_attr[result.layers[1][0]]
        assert np.allclose(result.attributes[1][0], expected)

    def test_without_attributes(self, sampler):
        request = SampleRequest(
            roots=np.array([1]), fanouts=(3,), with_attributes=False
        )
        assert sampler.sample(request).attributes is None

    def test_rejects_out_of_range_roots(self, sampler):
        request = SampleRequest(roots=np.array([10_000]), fanouts=(2,))
        with pytest.raises(GraphError):
            sampler.sample(request)

    def test_deterministic_with_seed(self):
        graph = power_law_graph(200, 6.0, seed=0)
        store = PartitionedStore(graph, HashPartitioner(2))
        request = SampleRequest(
            roots=np.array([1, 2]), fanouts=(5,), with_attributes=False
        )
        a = MultiHopSampler(store, seed=9).sample(request)
        b = MultiHopSampler(store, seed=9).sample(request)
        assert np.array_equal(a.layers[1], b.layers[1])

    def test_streaming_selector_plugs_in(self):
        graph = power_law_graph(200, 6.0, seed=0)
        store = PartitionedStore(graph, HashPartitioner(2))
        sampler = MultiHopSampler(store, seed=1, selector=select_streaming)
        request = SampleRequest(
            roots=np.array([3]), fanouts=(4,), with_attributes=False
        )
        result = sampler.sample(request)
        neighbors = set(graph.neighbors(3).tolist()) or {3}
        assert set(result.layers[1].reshape(-1).tolist()) <= neighbors


class TestCacheIntegration:
    def test_cache_reduces_store_traffic(self):
        graph = power_law_graph(100, 5.0, attr_len=4, seed=0)
        store = PartitionedStore(graph, HashPartitioner(2))
        cache = HotNodeCache(capacity_nodes=1000)
        sampler = MultiHopSampler(store, seed=1, cache=cache)
        request = SampleRequest(roots=np.arange(50), fanouts=(5,))
        sampler.sample(request)
        first_pass = store.summary.total_count
        store.reset_trace()
        sampler.sample(request)
        assert store.summary.total_count < first_pass

    def test_cache_preserves_results(self):
        graph = power_law_graph(100, 5.0, attr_len=4, seed=0)
        request = SampleRequest(roots=np.arange(20), fanouts=(3,))

        def run(cache):
            store = PartitionedStore(graph, HashPartitioner(2))
            sampler = MultiHopSampler(store, seed=4, cache=cache)
            return sampler.sample(request)

        plain = run(None)
        cached = run(HotNodeCache(capacity_nodes=500))
        assert np.array_equal(plain.layers[1], cached.layers[1])
        assert np.allclose(plain.attributes[1], cached.attributes[1])


class TestNegativeSampling:
    def test_negatives_are_non_neighbors(self, sampler):
        pairs = np.array([[1, 2], [3, 4]])
        negatives = sampler.negative_sample(NegativeSampleRequest(pairs=pairs, rate=6))
        assert negatives.shape == (2, 6)
        graph = sampler.store.graph
        for row, (src, _dst) in enumerate(pairs):
            forbidden = set(graph.neighbors(int(src)).tolist()) | {int(src)}
            assert not (set(negatives[row].tolist()) & forbidden)

    def test_negatives_within_graph(self, sampler):
        pairs = np.array([[0, 1]])
        negatives = sampler.negative_sample(NegativeSampleRequest(pairs=pairs, rate=10))
        assert negatives.min() >= 0
        assert negatives.max() < sampler.store.graph.num_nodes
