"""Tests for repro.perfmodel.analytical (§7.2, Equation 3 sizing)."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.datasets import get_dataset
from repro.memstore.links import get_link
from repro.perfmodel.analytical import (
    AnalyticalModel,
    ArchPoint,
    HardwareWorkload,
    axe_cores_needed,
)


@pytest.fixture
def workload():
    return HardwareWorkload.from_spec(get_dataset("ls"))


def make_arch(**overrides):
    defaults = dict(
        name="test",
        local_link=get_link("local_dram"),
        num_local_channels=4,
        output_link=get_link("pcie_host_dram"),
        remote_link=get_link("mof_fabric"),
        local_fraction=0.25,
        num_cores=2,
    )
    defaults.update(overrides)
    return ArchPoint(**defaults)


class TestHardwareWorkload:
    def test_two_hop_counts(self, workload):
        assert workload.neighbor_ops == 11
        assert workload.attr_nodes == 111

    def test_fetch_bytes_positive(self, workload):
        assert workload.fetch_bytes_per_root > workload.output_bytes_per_root * 0.5

    def test_mean_request_in_range(self, workload):
        assert 16 < workload.mean_request_bytes < workload.attr_row_bytes + 1

    def test_output_includes_ids(self, workload):
        assert workload.output_bytes_per_root == 111 * (workload.attr_row_bytes + 8)

    def test_no_attribute_variant(self):
        workload = HardwareWorkload.from_spec(
            get_dataset("ls"), fetch_attributes=False
        )
        assert workload.output_bytes_per_root == 111 * 8
        assert len(workload.requests_per_root()) == 2

    def test_lines_per_list_scales_with_degree(self):
        dense = HardwareWorkload.from_spec(get_dataset("ml"))  # deg 27.5
        sparse = HardwareWorkload.from_spec(get_dataset("ls"))  # deg 2.7
        assert dense.lines_per_list() > sparse.lines_per_list()

    def test_rejects_empty_fanouts(self):
        with pytest.raises(ConfigurationError):
            HardwareWorkload.from_spec(get_dataset("ls"), fanouts=())


class TestArchPoint:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_arch(local_fraction=1.5)
        with pytest.raises(ConfigurationError):
            make_arch(local_fraction=0.5, remote_link=None)
        with pytest.raises(ConfigurationError):
            make_arch(num_cores=0)


class TestPredictions:
    def test_prediction_is_min_of_bounds(self, workload):
        model = AnalyticalModel()
        prediction = model.predict(make_arch(), workload)
        assert prediction.roots_per_second == min(prediction.bounds.values())
        assert prediction.bottleneck in prediction.bounds

    def test_output_bound_when_output_slow(self, workload):
        """The PoC case: plenty of memory bandwidth, PCIe output binds."""
        model = AnalyticalModel()
        arch = make_arch(local_fraction=1.0, remote_link=None)
        prediction = model.predict(arch, workload)
        assert prediction.bottleneck == "output"

    def test_removing_output_limit_raises_throughput(self, workload):
        model = AnalyticalModel()
        bounded = model.predict(make_arch(local_fraction=1.0, remote_link=None), workload)
        unbounded = model.predict(
            make_arch(local_fraction=1.0, remote_link=None, output_link=None),
            workload,
        )
        assert unbounded.roots_per_second > bounded.roots_per_second

    def test_more_channels_helps_when_local_bound(self, workload):
        model = AnalyticalModel()
        slow = make_arch(
            num_local_channels=1, local_fraction=1.0, remote_link=None,
            output_link=None,
        )
        fast = make_arch(
            num_local_channels=4, local_fraction=1.0, remote_link=None,
            output_link=None,
        )
        assert (
            model.predict(fast, workload).roots_per_second
            >= model.predict(slow, workload).roots_per_second
        )

    def test_remote_fraction_hurts(self, workload):
        """More remote traffic over a thin link lowers throughput."""
        model = AnalyticalModel()
        nic = get_link("rdma_remote_dram")
        local_heavy = make_arch(remote_link=nic, local_fraction=0.9, output_link=None)
        remote_heavy = make_arch(remote_link=nic, local_fraction=0.1, output_link=None)
        assert (
            model.predict(local_heavy, workload).roots_per_second
            > model.predict(remote_heavy, workload).roots_per_second
        )

    def test_batches_per_second(self, workload):
        model = AnalyticalModel()
        prediction = model.predict(make_arch(), workload)
        assert prediction.batches_per_second(512) == pytest.approx(
            prediction.roots_per_second / 512
        )


class TestEquation3Sizing:
    def test_high_latency_needs_more_cores(self, workload):
        nic = get_link("rdma_remote_dram")
        mof = get_link("mof_fabric")
        target = 12.5e9
        assert axe_cores_needed(nic, workload, target_bandwidth=target) >= (
            axe_cores_needed(mof, workload, target_bandwidth=target)
        )

    def test_paper_style_core_counts(self, workload):
        """Section 6: a few cores suffice for the NIC paths; the core
        count stays single-digit for every Table 8 path."""
        for link_name in ("rdma_remote_dram", "mof_fabric", "pcie_host_dram"):
            cores = axe_cores_needed(get_link(link_name), workload)
            assert 1 <= cores <= 12

    def test_more_tags_fewer_cores(self, workload):
        link = get_link("rdma_remote_dram")
        small = axe_cores_needed(link, workload, tags_per_core=64)
        large = axe_cores_needed(link, workload, tags_per_core=1024)
        assert small >= large

    def test_rejects_bad_tags(self, workload):
        with pytest.raises(ConfigurationError):
            axe_cores_needed(get_link("mof_fabric"), workload, tags_per_core=0)
