"""Tests for the zero-copy shard plane (repro.parallel.shm)."""

import pickle

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphError
from repro.graph.csr import CSRGraph
from repro.parallel.shm import (
    BLOCK_ALIGN,
    AttachedBlock,
    ArraySpec,
    GraphHandle,
    SharedBlock,
    align_up,
    attach_graph,
    export_graph,
    pack_arrays,
    view_array,
)


def small_graph(attr: bool = True) -> CSRGraph:
    indptr = np.array([0, 2, 3, 3, 5], dtype=np.int64)
    indices = np.array([1, 3, 2, 0, 1], dtype=np.int64)
    node_attr = (
        np.arange(16, dtype=np.float32).reshape(4, 4) if attr else None
    )
    return CSRGraph(indptr=indptr, indices=indices, node_attr=node_attr)


class TestAlignUp:
    def test_rounds_to_alignment(self):
        assert align_up(0) == 0
        assert align_up(1) == BLOCK_ALIGN
        assert align_up(BLOCK_ALIGN) == BLOCK_ALIGN
        assert align_up(BLOCK_ALIGN + 1) == 2 * BLOCK_ALIGN

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            align_up(-1)


class TestSharedBlock:
    def test_rejects_bad_size_and_backend(self):
        with pytest.raises(ConfigurationError):
            SharedBlock(0)
        with pytest.raises(ConfigurationError):
            SharedBlock(64, backend="nfs")

    @pytest.mark.parametrize("backend", ["auto", "shm", "mmap"])
    def test_round_trip(self, backend):
        with SharedBlock(256, backend=backend) as block:
            view = np.ndarray(32, dtype=np.int64, buffer=block.buf)
            view[...] = np.arange(32)
            handle = block.handle
            assert handle.nbytes == 256
            attached = AttachedBlock(handle)
            echo = np.ndarray(32, dtype=np.int64, buffer=attached.buf)
            np.testing.assert_array_equal(echo, np.arange(32))
            # Writes travel both ways: it is the same memory.
            echo[0] = -7
            assert view[0] == -7
            attached.close()

    def test_unlink_is_idempotent(self):
        block = SharedBlock(64, backend="mmap")
        block.close()
        block.unlink()
        block.unlink()  # second call is a no-op


class TestPackArrays:
    def test_offsets_aligned_and_values_preserved(self):
        arrays = {
            "a": np.arange(5, dtype=np.int64),
            "b": np.linspace(0, 1, 7, dtype=np.float32),
            "c": np.empty(0, dtype=np.int64),
        }
        block, specs = pack_arrays(arrays, backend="mmap")
        try:
            for spec in specs:
                assert spec.offset % BLOCK_ALIGN == 0
                np.testing.assert_array_equal(
                    view_array(block.buf, spec), arrays[spec.key]
                )
        finally:
            block.close()
            block.unlink()

    def test_spec_nbytes(self):
        spec = ArraySpec("x", (3, 4), "<f4", 0)
        assert spec.nbytes == 48


class TestGraphPlane:
    @pytest.mark.parametrize("backend", ["auto", "mmap"])
    def test_export_attach_round_trip(self, backend):
        graph = small_graph()
        plane = export_graph(graph, backend=backend)
        try:
            # The handle must cross a process boundary: picklable.
            handle = pickle.loads(pickle.dumps(plane.handle))
            assert isinstance(handle, GraphHandle)
            attached = attach_graph(handle)
            try:
                remote = attached.graph
                np.testing.assert_array_equal(remote.indptr, graph.indptr)
                np.testing.assert_array_equal(remote.indices, graph.indices)
                np.testing.assert_array_equal(remote.node_attr, graph.node_attr)
                assert remote.num_nodes == graph.num_nodes
                # Zero-copy: the attached arrays view shared memory, they
                # do not own a private allocation.
                assert not remote.indices.flags.owndata
            finally:
                attached.close()
        finally:
            plane.close()
            plane.unlink()

    def test_attr_free_graph(self):
        graph = small_graph(attr=False)
        plane = export_graph(graph, backend="mmap")
        try:
            attached = attach_graph(plane.handle)
            assert attached.graph.node_attr is None
            attached.close()
        finally:
            plane.close()
            plane.unlink()

    def test_missing_csr_arrays_rejected(self):
        block, specs = pack_arrays(
            {"node_attr": np.zeros((2, 2), dtype=np.float32)}, backend="mmap"
        )
        try:
            handle = GraphHandle(
                block=block.handle, arrays=specs, num_dst_nodes=None
            )
            with pytest.raises(GraphError):
                attach_graph(handle)
        finally:
            block.close()
            block.unlink()

    def test_sampling_over_attached_graph_matches(self):
        """An attached graph drives the sampler exactly like the original."""
        from repro.framework.requests import SampleRequest
        from repro.framework.sampler import MultiHopSampler
        from repro.graph.partition import HashPartitioner
        from repro.memstore.store import PartitionedStore

        graph = small_graph()
        request = SampleRequest(
            roots=np.array([0, 3]), fanouts=(2,), with_attributes=True
        )

        def run(g):
            store = PartitionedStore(g, HashPartitioner(2))
            sampler = MultiHopSampler(store, seed=7, batched=True)
            return sampler.sample(request), store.summary

        plane = export_graph(graph, backend="mmap")
        try:
            attached = attach_graph(plane.handle)
            try:
                local, local_summary = run(graph)
                remote, remote_summary = run(attached.graph)
                for mine, theirs in zip(local.layers, remote.layers):
                    np.testing.assert_array_equal(mine, theirs)
                assert local_summary == remote_summary
            finally:
                attached.close()
        finally:
            plane.close()
            plane.unlink()
