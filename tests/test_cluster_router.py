"""Tests for repro.cluster.router (consistent hash + least loaded)."""

import pytest

from repro.cluster.router import (
    ConsistentHashRouter,
    LeastLoadedRouter,
    get_router,
)
from repro.errors import ConfigurationError, SimulationError
from repro.serving.gateway import GatewayLoad


def load(queue=0, roots=0):
    return GatewayLoad(
        queue_depth=queue, in_flight_batches=0, in_flight_roots=roots
    )


KEYS = [f"tenant-{i}" for i in range(400)]


class TestConsistentHash:
    def test_routes_are_stable_and_deterministic(self):
        a = ConsistentHashRouter()
        b = ConsistentHashRouter()
        for name in ["r0", "r1", "r2"]:
            a.add_replica(name)
            b.add_replica(name)
        assert a.assignment(KEYS) == b.assignment(KEYS)

    def test_remove_moves_only_departed_members_keys(self):
        router = ConsistentHashRouter()
        for name in ["r0", "r1", "r2", "r3"]:
            router.add_replica(name)
        before = router.assignment(KEYS)
        router.remove_replica("r2")
        after = router.assignment(KEYS)
        for key in KEYS:
            if before[key] != "r2":
                # Keys not owned by the departed member never move.
                assert after[key] == before[key]
            else:
                assert after[key] != "r2"

    def test_add_moves_a_bounded_share_of_keys(self):
        router = ConsistentHashRouter()
        for name in ["r0", "r1", "r2", "r3"]:
            router.add_replica(name)
        before = router.assignment(KEYS)
        router.add_replica("r4")
        after = router.assignment(KEYS)
        moved = sum(1 for key in KEYS if before[key] != after[key])
        # Ideal share is 1/5; virtual nodes keep it near that, and any
        # key that moved must have moved TO the new member.
        assert moved <= len(KEYS) // 2
        for key in KEYS:
            if before[key] != after[key]:
                assert after[key] == "r4"

    def test_spreads_keys_across_members(self):
        router = ConsistentHashRouter()
        for name in ["r0", "r1", "r2", "r3"]:
            router.add_replica(name)
        owners = set(router.assignment(KEYS).values())
        assert owners == {"r0", "r1", "r2", "r3"}

    def test_tenant_affinity(self):
        router = ConsistentHashRouter()
        for name in ["r0", "r1", "r2"]:
            router.add_replica(name)
        first = router.route("tenant-x", {})
        for _ in range(10):
            assert router.route("tenant-x", {}) == first

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRouter(vnodes=0)


class TestLeastLoaded:
    def test_picks_smallest_score(self):
        router = LeastLoadedRouter()
        for name in ["r0", "r1", "r2"]:
            router.add_replica(name)
        loads = {"r0": load(queue=5), "r1": load(queue=1), "r2": load(queue=3)}
        assert router.route("t", loads) == "r1"

    def test_in_flight_roots_count_toward_score(self):
        router = LeastLoadedRouter()
        router.add_replica("r0")
        router.add_replica("r1")
        loads = {"r0": load(queue=2), "r1": load(queue=0, roots=50)}
        assert router.route("t", loads) == "r0"

    def test_tie_breaks_toward_earliest_added(self):
        router = LeastLoadedRouter()
        for name in ["r2", "r0", "r1"]:
            router.add_replica(name)
        loads = {name: load() for name in ["r0", "r1", "r2"]}
        assert router.route("t", loads) == "r2"
        # Determinism: the same tie always resolves the same way.
        assert all(router.route("t", loads) == "r2" for _ in range(5))

    def test_missing_load_counts_as_idle(self):
        router = LeastLoadedRouter()
        router.add_replica("r0")
        router.add_replica("r1")
        assert router.route("t", {"r0": load(queue=3)}) == "r1"


class TestMembership:
    @pytest.mark.parametrize(
        "factory", [ConsistentHashRouter, LeastLoadedRouter]
    )
    def test_duplicate_add_rejected(self, factory):
        router = factory()
        router.add_replica("r0")
        with pytest.raises(ConfigurationError):
            router.add_replica("r0")

    @pytest.mark.parametrize(
        "factory", [ConsistentHashRouter, LeastLoadedRouter]
    )
    def test_remove_absent_rejected(self, factory):
        router = factory()
        with pytest.raises(ConfigurationError):
            router.remove_replica("r0")

    @pytest.mark.parametrize(
        "factory", [ConsistentHashRouter, LeastLoadedRouter]
    )
    def test_route_with_no_members_raises(self, factory):
        with pytest.raises(SimulationError):
            factory().route("t", {})

    def test_get_router(self):
        assert isinstance(
            get_router("consistent-hash"), ConsistentHashRouter
        )
        assert isinstance(get_router("least-loaded"), LeastLoadedRouter)
        with pytest.raises(ConfigurationError):
            get_router("random")
