"""Tests for repro.serving.scheduler (token buckets + EDF queue)."""

import pytest

from repro.errors import ConfigurationError
from repro.serving.scheduler import SloScheduler, TokenBucket


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        # 0.1s at 10 tokens/s accumulates exactly one token.
        assert bucket.try_take(0.1)
        assert not bucket.try_take(0.1)

    def test_capacity_capped_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0)
        bucket.try_take(10.0)  # long idle, then one take
        assert bucket.tokens == pytest.approx(2.0)

    def test_time_until(self):
        bucket = TokenBucket(rate=4.0, burst=1.0)
        assert bucket.try_take(0.0)
        assert bucket.time_until(0.0) == pytest.approx(0.25)
        assert bucket.time_until(0.25) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1, burst=0.5)


class TestSloScheduler:
    def test_admit_charges_bucket(self):
        scheduler = SloScheduler()
        scheduler.register_tenant("a", rate=10.0, burst=1.0)
        assert scheduler.admit("a", 0.0) is None
        retry = scheduler.admit("a", 0.0)
        assert retry is not None and retry > 0

    def test_admit_unknown_tenant(self):
        with pytest.raises(ConfigurationError):
            SloScheduler().admit("ghost", 0.0)

    def test_tenants_isolated(self):
        scheduler = SloScheduler()
        scheduler.register_tenant("a", rate=10.0, burst=1.0)
        scheduler.register_tenant("b", rate=10.0, burst=1.0)
        assert scheduler.admit("a", 0.0) is None
        # a is out of tokens; b still has its own burst.
        assert scheduler.admit("a", 0.0) is not None
        assert scheduler.admit("b", 0.0) is None

    def test_edf_order(self):
        scheduler = SloScheduler()
        scheduler.push(3.0, "late")
        scheduler.push(1.0, "urgent")
        scheduler.push(2.0, "middle")
        assert len(scheduler) == 3
        assert scheduler.peek_deadline() == 1.0
        assert scheduler.pop() == "urgent"
        assert scheduler.pop() == "middle"
        assert scheduler.pop() == "late"

    def test_fifo_ties(self):
        scheduler = SloScheduler()
        scheduler.push(1.0, "first")
        scheduler.push(1.0, "second")
        assert scheduler.pop() == "first"
        assert scheduler.pop() == "second"

    def test_pop_empty_raises(self):
        scheduler = SloScheduler()
        assert scheduler.peek_deadline() is None
        with pytest.raises(ConfigurationError):
            scheduler.pop()
