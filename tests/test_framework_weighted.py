"""Tests for weighted/degree-based sampling (selectors + sampler)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.framework.selectors import (
    get_selector,
    select_streaming_weighted,
    select_weighted,
)
from repro.graph.csr import CSRGraph
from repro.graph.partition import HashPartitioner
from repro.memstore.store import PartitionedStore


class TestSelectWeighted:
    def test_respects_zero_weights(self):
        rng = np.random.default_rng(0)
        neighbors = np.array([1, 2, 3])
        weights = np.array([0.0, 1.0, 0.0])
        picks = select_weighted(neighbors, 20, rng, weights=weights)
        assert set(picks.tolist()) == {2}

    def test_biases_toward_heavy_weights(self):
        rng = np.random.default_rng(1)
        neighbors = np.arange(4)
        weights = np.array([8.0, 1.0, 1.0, 1.0])
        picks = np.concatenate(
            [select_weighted(neighbors, 50, rng, weights=weights) for _ in range(20)]
        )
        share = np.mean(picks == 0)
        assert 0.6 < share < 0.85  # expected ~8/11

    def test_defaults_to_uniform(self):
        rng = np.random.default_rng(2)
        picks = select_weighted(np.arange(5), 10, rng)
        assert set(picks.tolist()) <= set(range(5))

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            select_weighted(np.array([]), 2, rng)
        with pytest.raises(ConfigurationError):
            select_weighted(np.arange(3), 2, rng, weights=np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            select_weighted(np.arange(2), 2, rng, weights=np.array([0.0, 0.0]))
        with pytest.raises(ConfigurationError):
            select_weighted(np.arange(2), 2, rng, weights=np.array([-1.0, 1.0]))


class TestStreamingWeighted:
    def test_group_structure_preserved(self):
        rng = np.random.default_rng(0)
        n, k = 40, 4
        weights = np.ones(n)
        picks = select_streaming_weighted(np.arange(n), k, rng, weights=weights)
        for group, pick in enumerate(picks):
            assert group * 10 <= pick < (group + 1) * 10

    def test_biases_within_groups(self):
        rng = np.random.default_rng(1)
        n, k = 20, 2
        weights = np.zeros(n)
        weights[3] = 1.0  # only candidate in group 0
        weights[14] = 1.0  # only candidate in group 1
        picks = select_streaming_weighted(np.arange(n), k, rng, weights=weights)
        assert picks.tolist() == [3, 14]

    def test_zero_weight_group_falls_back_uniform(self):
        rng = np.random.default_rng(2)
        n, k = 10, 2
        weights = np.zeros(n)
        weights[7] = 1.0  # group 1 weighted; group 0 all-zero
        picks = select_streaming_weighted(np.arange(n), k, rng, weights=weights)
        assert 0 <= picks[0] < 5  # uniform fallback inside group 0
        assert picks[1] == 7

    def test_defaults_to_streaming(self):
        rng = np.random.default_rng(3)
        picks = select_streaming_weighted(np.arange(30), 3, rng)
        assert len(picks) == 3

    def test_marginals_approximate_reference(self):
        """Streaming weighted sampling approximates the exact weighted
        distribution far better than ignoring weights does.

        Picks are weight-normalized *within* each arrival group (the
        same approximation Tech-2 makes for uniform sampling), so the
        guarantee holds when weights are not correlated with arrival
        order — which adjacency lists are not."""
        from repro.framework.selectors import select_streaming

        rng_a = np.random.default_rng(4)
        rng_b = np.random.default_rng(5)
        rng_c = np.random.default_rng(6)
        n, k, trials = 20, 4, 4000
        # Unordered weights: a few heavy neighbors scattered anywhere.
        weights = np.random.default_rng(7).permutation(
            np.concatenate([np.full(4, 8.0), np.ones(n - 4)])
        )
        exact = np.zeros(n)
        approx = np.zeros(n)
        unweighted = np.zeros(n)
        for _ in range(trials):
            exact[select_weighted(np.arange(n), k, rng_a, weights=weights)] += 1
            approx[
                select_streaming_weighted(np.arange(n), k, rng_b, weights=weights)
            ] += 1
            unweighted[select_streaming(np.arange(n), k, rng_c)] += 1
        pe = exact / exact.sum()
        pa = approx / approx.sum()
        pu = unweighted / unweighted.sum()
        tv_weighted = 0.5 * np.abs(pe - pa).sum()
        tv_ignored = 0.5 * np.abs(pe - pu).sum()
        assert tv_weighted < 0.8 * tv_ignored
        # And the marginal tracks the weights: heavier elements picked
        # more often.
        assert np.corrcoef(pa, weights)[0, 1] > 0.9

    def test_registry(self):
        assert get_selector("weighted") is select_weighted
        assert get_selector("streaming_weighted") is select_streaming_weighted


class TestSamplerIntegration:
    def _weighted_graph(self):
        # Node 0 -> {1,2,3}, edge weights strongly favoring 2.
        graph = CSRGraph.from_edges(
            4,
            [(0, 1), (0, 2), (0, 3)],
            node_attr=np.zeros((4, 2), dtype=np.float32),
        )
        return CSRGraph(
            graph.indptr,
            graph.indices,
            node_attr=graph.node_attr,
            edge_attr=np.array([0.05, 1.0, 0.05], dtype=np.float32),
        )

    def test_sampler_feeds_edge_weights(self):
        graph = self._weighted_graph()
        store = PartitionedStore(graph, HashPartitioner(1))
        sampler = MultiHopSampler(store, seed=0, selector=select_weighted)
        result = sampler.sample(
            SampleRequest(roots=np.array([0]), fanouts=(100,), with_attributes=False)
        )
        share = np.mean(result.layers[1] == 2)
        assert share > 0.7

    def test_unweighted_selector_ignores_edge_attr(self):
        graph = self._weighted_graph()
        store = PartitionedStore(graph, HashPartitioner(1))
        sampler = MultiHopSampler(store, seed=0)  # uniform
        result = sampler.sample(
            SampleRequest(roots=np.array([0]), fanouts=(300,), with_attributes=False)
        )
        share = np.mean(result.layers[1] == 2)
        assert 0.2 < share < 0.5  # ~1/3
