"""Tests for repro.faas.dse — the headline FaaS conclusions."""

import pytest

from repro.errors import ConfigurationError
from repro.faas.arch import EIGHT_ARCHITECTURES, get_architecture
from repro.faas.dse import FaasDse
from repro.faas.report import (
    arch_geomeans,
    arch_perf_geomeans,
    format_min_cost_table,
    format_perf_per_dollar_table,
    format_perf_table,
    geomean,
    normalized_perf_per_dollar,
)


@pytest.fixture(scope="module")
def dse():
    return FaasDse()


@pytest.fixture(scope="module")
def results(dse):
    return dse.evaluate_all()


@pytest.fixture(scope="module")
def cpu_results(dse):
    return dse.cpu_baseline_all()


@pytest.fixture(scope="module")
def perf_geo(results):
    return arch_perf_geomeans(results)


@pytest.fixture(scope="module")
def ppd_geo(results, cpu_results):
    return arch_geomeans(results, cpu_results)


class TestSweepStructure:
    def test_full_sweep_size(self, results):
        assert len(results) == 8 * 3 * 6

    def test_cpu_sweep_size(self, cpu_results):
        assert len(cpu_results) == 3 * 6

    def test_all_positive(self, results):
        for result in results:
            assert result.roots_per_second > 0
            assert result.perf_per_dollar > 0
            assert result.total_price > 0


class TestHeadlineNumbers:
    def test_base_decp_perf_per_dollar(self, ppd_geo):
        """Paper: off-the-shelf FaaS.base gives ~2.47x perf/$ (decp)."""
        assert 1.4 < ppd_geo["base.decp"] < 3.5

    def test_base_tc_perf_per_dollar(self, ppd_geo):
        """Paper: ~4.11x for base.tc."""
        assert 2.8 < ppd_geo["base.tc"] < 5.5

    def test_comm_opt_tc_perf_per_dollar(self, ppd_geo):
        """Paper: ~7.78x for comm-opt.tc."""
        assert 5.5 < ppd_geo["comm-opt.tc"] < 10.5

    def test_mem_opt_tc_perf_per_dollar(self, ppd_geo):
        """Paper: ~12.58x for mem-opt.tc."""
        assert 9.0 < ppd_geo["mem-opt.tc"] < 17.0

    def test_ordering_matches_paper(self, ppd_geo):
        assert (
            ppd_geo["base.decp"]
            < ppd_geo["base.tc"]
            < ppd_geo["comm-opt.tc"]
            < ppd_geo["mem-opt.tc"]
        )

    def test_cost_opt_equals_base_performance(self, perf_geo):
        """Paper: cost-opt brings no user-visible perf change."""
        assert perf_geo["cost-opt.tc"] == pytest.approx(perf_geo["base.tc"])
        assert perf_geo["cost-opt.decp"] == pytest.approx(perf_geo["base.decp"])

    def test_mem_opt_decp_equals_comm_opt_decp(self, perf_geo):
        """Paper: mem-opt.decp gains nothing — NIC output binds."""
        assert perf_geo["mem-opt.decp"] == pytest.approx(perf_geo["comm-opt.decp"])

    def test_comm_opt_tc_speedup_over_base(self, perf_geo):
        """Paper: ~2.9x extra performance for comm-opt.tc."""
        ratio = perf_geo["comm-opt.tc"] / perf_geo["base.tc"]
        assert 2.0 < ratio < 4.5

    def test_mem_opt_tc_speedup_over_comm(self, perf_geo):
        """Paper: ~3.0x on top of comm-opt.tc."""
        ratio = perf_geo["mem-opt.tc"] / perf_geo["comm-opt.tc"]
        assert 2.0 < ratio < 6.0

    def test_tc_benefit_grows_with_optimization(self, perf_geo):
        """Paper: tc/decp benefit grows 1.9x -> 3.5x -> 16.6x."""
        base = perf_geo["base.tc"] / perf_geo["base.decp"]
        comm = perf_geo["comm-opt.tc"] / perf_geo["comm-opt.decp"]
        mem = perf_geo["mem-opt.tc"] / perf_geo["mem-opt.decp"]
        assert base < comm < mem
        assert mem > 7

    def test_vcpu_equivalents(self, results):
        """Paper: one FPGA ~ 67 vCPU (decp) / ~129.6 vCPU (tc) in base."""
        decp = geomean(
            [r.vcpu_equivalent for r in results if r.arch == "base.decp"]
        )
        tc = geomean([r.vcpu_equivalent for r in results if r.arch == "base.tc"])
        assert 45 < decp < 100
        assert 100 < tc < 260
        assert tc > decp


class TestScaling:
    def test_larger_instances_faster(self, dse):
        arch = get_architecture("base.decp")
        small = dse.evaluate(arch, "small", "ls").roots_per_second
        medium = dse.evaluate(arch, "medium", "ls").roots_per_second
        large = dse.evaluate(arch, "large", "ls").roots_per_second
        assert small < medium < large

    def test_bigger_graphs_favor_faas(self, results):
        """Paper: FaaS advantage grows with graph footprint — the small
        one-server graphs (ss/sl/ml) show weak per-vCPU improvement,
        the multi-terabyte ones (ls/ll/syn) show strong improvement."""

        def equivalence(dataset):
            return geomean(
                [
                    r.vcpu_equivalent
                    for r in results
                    if r.arch == "base.decp" and r.dataset == dataset
                ]
            )

        small_graphs = geomean([equivalence(d) for d in ("ss", "sl", "ml")])
        big_graphs = geomean([equivalence(d) for d in ("ls", "ll", "syn")])
        assert big_graphs > 1.3 * small_graphs


class TestGpuSensitivity:
    def test_limitation2_offsets_benefit(self):
        """Limitation-2: with 10 V100 per 12GB/s, mem-opt.tc's perf/$
        benefit collapses towards ~1.5x."""
        rich = FaasDse(gpus_per_12gbps=1.0)
        poor = FaasDse(gpus_per_12gbps=10.0)
        rich_geo = arch_geomeans(rich.evaluate_all(), rich.cpu_baseline_all())
        poor_geo = arch_geomeans(poor.evaluate_all(), poor.cpu_baseline_all())
        assert poor_geo["mem-opt.tc"] < 0.4 * rich_geo["mem-opt.tc"]


class TestCostSide:
    def test_faas_service_costs_more_than_cpu(self, dse):
        """Figure 20: the FaaS fleet costs more than the CPU fleet to
        merely host the same graph."""
        for dataset in ("ss", "ml", "syn"):
            cpu = dse.min_service_cost(dataset, "small", faas=False)
            faas = dse.min_service_cost(dataset, "small", faas=True)
            assert faas > cpu

    def test_cost_grows_with_graph(self, dse):
        assert dse.min_service_cost("syn", "small", faas=False) > (
            dse.min_service_cost("ss", "small", faas=False)
        )

    def test_limitation3_same_faas_instance_price(self, results):
        """Limitation-3: all eight architectures carry the same instance
        price at a given size."""
        by_size = {}
        for result in results:
            by_size.setdefault((result.size, result.dataset), set()).add(
                round(result.instance_price, 6)
            )
        for prices in by_size.values():
            assert len(prices) == 1


class TestReports:
    def test_perf_table_renders(self, results):
        text = format_perf_table(results)
        assert "base.decp" in text and "syn" in text

    def test_ppd_table_renders(self, results, cpu_results):
        text = format_perf_per_dollar_table(results, cpu_results)
        assert "mem-opt.tc" in text

    def test_min_cost_table_renders(self, dse):
        text = format_min_cost_table(dse)
        assert "cpu" in text and "faas" in text

    def test_geomean_errors(self):
        with pytest.raises(ConfigurationError):
            geomean([])
        with pytest.raises(ConfigurationError):
            geomean([1.0, -1.0])

    def test_evaluate_rejects_unknown_size(self, dse):
        with pytest.raises(ConfigurationError):
            dse.evaluate(EIGHT_ARCHITECTURES[0], "xl", "ls")
