"""Tests for the locality layout: relabeling, ordering, store wiring."""

import numpy as np
import pytest

from repro.api import GnnSession
from repro.errors import ConfigurationError, GraphError, PartitionError
from repro.framework.replay import replay_reference
from repro.framework.requests import NegativeSampleRequest, SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.graph.csr import CSRGraph
from repro.graph.datasets import instantiate_dataset
from repro.graph.partition import HashPartitioner
from repro.memstore.locality import (
    LAYOUT_METHODS,
    BlockPartitioner,
    Relabeling,
    apply_layout,
    build_locality_layout,
    locality_order,
)
from repro.memstore.store import PartitionedStore


@pytest.fixture(scope="module")
def graph():
    return instantiate_dataset("ll", max_nodes=800, seed=0)


class TestRelabeling:
    def test_identity(self):
        rel = Relabeling.identity(5)
        nodes = np.array([0, 3, 4])
        assert np.array_equal(rel.to_internal(nodes), nodes)
        assert np.array_equal(rel.to_original(nodes), nodes)

    def test_round_trip(self):
        order = np.array([2, 0, 3, 1])  # internal -> original
        fwd = np.empty(4, dtype=np.int64)
        fwd[order] = np.arange(4)
        rel = Relabeling(fwd, order)
        nodes = np.array([[0, 1], [2, 3]])
        assert np.array_equal(rel.to_original(rel.to_internal(nodes)), nodes)
        assert rel.to_internal(2) == 0
        assert rel.to_original(0) == 2

    def test_rejects_non_inverse_maps(self):
        with pytest.raises(GraphError):
            Relabeling(np.array([0, 0, 1]), np.array([0, 1, 2]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(GraphError):
            Relabeling(np.array([0, 1]), np.array([0, 1, 2]))

    def test_to_internal_range_checked(self):
        rel = Relabeling.identity(3)
        with pytest.raises(GraphError):
            rel.to_internal(np.array([3]))
        with pytest.raises(GraphError):
            rel.to_internal(np.array([-1]))


class TestBlockPartitioner:
    def test_partition_of(self):
        part = BlockPartitioner([0, 3, 3, 7])
        assert part.num_partitions == 3
        nodes = np.array([0, 2, 3, 6])
        assert part.partition_of(nodes).tolist() == [0, 0, 2, 2]
        assert part.partition_sizes().tolist() == [3, 0, 4]

    def test_rejects_bad_bounds(self):
        with pytest.raises(PartitionError):
            BlockPartitioner([0])
        with pytest.raises(PartitionError):
            BlockPartitioner([1, 4])
        with pytest.raises(PartitionError):
            BlockPartitioner([0, 5, 3])

    def test_rejects_out_of_range_nodes(self):
        part = BlockPartitioner([0, 2, 4])
        with pytest.raises(PartitionError):
            part.partition_of(np.array([4]))


class TestLocalityOrder:
    def test_is_permutation_and_partition_contiguous(self, graph):
        assignment = HashPartitioner(4).partition_of(
            np.arange(graph.num_nodes)
        )
        order = locality_order(graph, assignment)
        assert sorted(order.tolist()) == list(range(graph.num_nodes))
        # Internal IDs visit partitions in one contiguous block each.
        parts = assignment[order]
        changes = np.count_nonzero(np.diff(parts) != 0)
        assert changes == len(np.unique(assignment)) - 1

    def test_deterministic(self, graph):
        assignment = HashPartitioner(4).partition_of(
            np.arange(graph.num_nodes)
        )
        assert np.array_equal(
            locality_order(graph, assignment),
            locality_order(graph, assignment),
        )

    def test_rejects_wrong_assignment_shape(self, graph):
        with pytest.raises(PartitionError):
            locality_order(graph, np.zeros(3, dtype=np.int64))


class TestApplyLayout:
    def test_graph_isomorphic_under_bijection(self, graph):
        assignment = HashPartitioner(3).partition_of(
            np.arange(graph.num_nodes)
        )
        order = locality_order(graph, assignment)
        relabeled, rel = apply_layout(graph, order)
        assert relabeled.num_nodes == graph.num_nodes
        assert relabeled.num_edges == graph.num_edges
        for internal in (0, 7, graph.num_nodes - 1):
            original = int(rel.to_original(internal))
            got = rel.to_original(relabeled.neighbors(internal))
            # Adjacency keeps its original within-node order.
            assert got.tolist() == graph.neighbors(original).tolist()

    def test_attributes_move_with_rows(self):
        attrs = np.arange(8, dtype=np.float32).reshape(4, 2)
        g = CSRGraph.from_edges(
            4, [(0, 1), (1, 2), (2, 3), (3, 0)], node_attr=attrs,
            edge_attr_fill=0.0,
        )
        g.edge_attr[:] = [10.0, 11.0, 12.0, 13.0]
        relabeled, rel = apply_layout(g, np.array([3, 2, 1, 0]))
        assert np.array_equal(
            relabeled.node_attr, attrs[[3, 2, 1, 0]]
        )
        # Node 3's single edge (weight 13) is now internal node 0's.
        assert relabeled.edge_attr.tolist() == [13.0, 12.0, 11.0, 10.0]

    def test_rejects_bipartite(self):
        g = CSRGraph(
            np.array([0, 1, 1]), np.array([4]), num_dst_nodes=5
        )
        with pytest.raises(ConfigurationError):
            apply_layout(g, np.array([0, 1]))

    def test_rejects_bad_order(self, graph):
        with pytest.raises(GraphError):
            apply_layout(graph, np.arange(3))


class TestBuildLocalityLayout:
    def test_methods_registry(self):
        assert LAYOUT_METHODS == ("ldg", "hash", "range")

    def test_rejects_unknown_method(self, graph):
        with pytest.raises(ConfigurationError):
            build_locality_layout(graph, 4, method="metis")

    @pytest.mark.parametrize("method", LAYOUT_METHODS)
    def test_bundle_is_consistent(self, graph, method):
        layout = build_locality_layout(graph, 4, method=method)
        assert layout.method == method
        assert layout.graph.num_nodes == graph.num_nodes
        assert layout.partitioner.num_partitions == 4
        assert int(layout.partitioner.bounds[-1]) == graph.num_nodes
        assert layout.relabeling.num_nodes == graph.num_nodes
        # Block sizes sum to the node count.
        assert int(layout.partitioner.partition_sizes().sum()) == graph.num_nodes


class TestSamplerWithRelabeling:
    @pytest.fixture(scope="class")
    def layout(self, graph):
        return build_locality_layout(graph, 4)

    def _sampler(self, layout, **kwargs):
        store = PartitionedStore(layout.graph, layout.partitioner)
        return store, MultiHopSampler(
            store,
            seed=0,
            worker_partition=0,
            batched=True,
            relabeling=layout.relabeling,
            **kwargs,
        )

    def test_layers_are_original_ids_and_real_edges(self, graph, layout):
        rng = np.random.default_rng(0)
        request = SampleRequest(
            roots=rng.integers(0, graph.num_nodes, size=32),
            fanouts=(5, 5),
            with_attributes=True,
        )
        _, sampler = self._sampler(layout)
        result = sampler.sample(request)
        assert np.array_equal(result.layers[0], request.roots)
        # Every hop-1 pick is a true neighbor of its root in the
        # ORIGINAL graph — i.e. layers came back in original ID space.
        picks = result.layers[1].reshape(len(request.roots), 5)
        for root, row in zip(request.roots, picks):
            neighbors = set(graph.neighbors(int(root)).tolist())
            assert set(row.tolist()) <= neighbors

    def test_attributes_match_original_graph(self, graph, layout):
        request = SampleRequest(
            roots=np.arange(16), fanouts=(4,), with_attributes=True
        )
        _, sampler = self._sampler(layout)
        result = sampler.sample(request)
        for layer, attrs in zip(result.layers, result.attributes):
            assert np.array_equal(attrs, graph.node_attr[layer])

    def test_replay_parity_through_layout(self, graph, layout):
        request = SampleRequest(
            roots=np.arange(24), fanouts=(6, 4), with_attributes=True
        )
        store, sampler = self._sampler(layout)
        result = sampler.sample(request)
        fresh = PartitionedStore(layout.graph, layout.partitioner)
        replayed = replay_reference(
            result, request, fresh, worker_partition=0,
            relabeling=layout.relabeling,
        )
        for a, b in zip(result.layers, replayed.layers):
            assert np.array_equal(a, b)

    def test_negative_sampling_in_original_space(self, graph, layout):
        _, sampler = self._sampler(layout)
        pairs = np.array([[0, 1], [2, 3], [4, 5]])
        request = NegativeSampleRequest(pairs=pairs, rate=4)
        out = sampler.negative_sample(request)
        assert out.shape == (3, 4)
        assert out.min() >= 0 and out.max() < graph.num_nodes
        for (src, _), row in zip(pairs, out):
            neighbors = set(graph.neighbors(int(src)).tolist())
            assert not set(row.tolist()) & neighbors


class TestLocalityTracking:
    def test_counters_off_by_default(self, graph):
        store = PartitionedStore(graph, HashPartitioner(4))
        store.get_neighbors_batch(np.arange(32))
        assert store.summary.gather_nodes == 0
        assert store.summary.gather_runs == 0
        assert store.summary.mean_run_length == 0.0

    def test_counters_track_contiguity(self, graph):
        store = PartitionedStore(graph, HashPartitioner(4), track_locality=True)
        store.get_neighbors_batch(np.arange(32))  # one contiguous run
        assert store.summary.gather_nodes == 32
        assert store.summary.gather_runs == 1
        assert store.summary.mean_run_length == 32.0
        store.get_neighbors_batch(np.array([100, 102, 104]))  # three runs
        assert store.summary.gather_runs == 4
        assert store.summary.gather_span_bytes > 0

    def test_layout_improves_run_length(self, graph):
        layout = build_locality_layout(graph, 4)
        # Random roots: sequential IDs would already be contiguous in
        # the original layout, hiding the renumbering win.
        rng = np.random.default_rng(0)
        request = SampleRequest(
            roots=rng.integers(0, graph.num_nodes, size=256),
            fanouts=(8, 8),
            with_attributes=True,
        )

        def run(store_graph, partitioner, relabeling):
            store = PartitionedStore(
                store_graph, partitioner, track_locality=True
            )
            sampler = MultiHopSampler(
                store, seed=0, worker_partition=0, batched=True,
                relabeling=relabeling,
            )
            sampler.sample(request)
            return store.summary

        base = run(graph, HashPartitioner(4), None)
        laid = run(layout.graph, layout.partitioner, layout.relabeling)
        assert laid.gather_nodes == base.gather_nodes
        assert laid.mean_run_length > base.mean_run_length


class TestSessionIntegration:
    def test_session_layout_end_to_end(self, graph):
        session = GnnSession(graph, num_partitions=4, layout="ldg", batched=True)
        assert session.relabeling is not None
        rng = np.random.default_rng(1)
        roots = rng.integers(0, graph.num_nodes, size=16)
        result = session.sample(roots, fanouts=(4, 4))
        assert np.array_equal(result.layers[0], roots)
        picks = result.layers[1].reshape(16, 4)
        for root, row in zip(roots, picks):
            assert set(row.tolist()) <= set(graph.neighbors(int(root)).tolist())

    def test_session_kernels_numpy_matches_default(self, graph):
        roots = np.arange(16)
        a = GnnSession(graph, num_partitions=4, batched=True)
        b = GnnSession(graph, num_partitions=4, batched=True, kernels="numpy")
        ra = a.sample(roots, fanouts=(4, 4))
        rb = b.sample(roots, fanouts=(4, 4))
        for la, lb in zip(ra.layers, rb.layers):
            assert np.array_equal(la, lb)

    def test_session_guards(self, graph):
        with pytest.raises(ConfigurationError):
            GnnSession(graph, workers=2, layout="ldg")
        with pytest.raises(ConfigurationError):
            GnnSession(graph, workers=2, kernels="numpy")
        with pytest.raises(ConfigurationError):
            GnnSession(graph, layout="metis")
