"""Tests for repro.gnn.pipeline: the pipelined sample→train engine.

The load-bearing bar is the determinism contract: epoch losses, the
weights digest, and the store's access summary are bit-identical at
every worker count, with and without the neighborhood cache. The
``workers=0`` inline run is the reference the process pools are
compared against.
"""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.api import GnnSession
from repro.errors import ConfigurationError, ParallelExecutionError
from repro.framework.requests import SampleRequest
from repro.graph.datasets import instantiate_dataset
from repro.graph.dynamic import DynamicGraph
from repro.graph.partition import HashPartitioner
from repro.gnn.pipeline import (
    NeighborhoodCache,
    PipelinedTrainer,
    TrainReport,
)
from repro.memstore.store import PartitionedStore
from repro.parallel import ParallelSampler, PipelinedExecutor

NUM_NODES = 300
FANOUTS = (4, 3)
NUM_LABELS = 4


def make_graph(seed: int = 0):
    return instantiate_dataset("ss", max_nodes=NUM_NODES, seed=seed)


def make_store(graph, partitions: int = 4):
    return PartitionedStore(graph, HashPartitioner(partitions))


def make_labels(graph, seed: int = 0):
    rng = np.random.default_rng(seed)
    return (rng.random((graph.num_nodes, NUM_LABELS)) < 0.3).astype(
        np.float32
    )


def run_trainer(workers, roots=None, cached_epochs=0, epochs=3, seed=0):
    graph = make_graph()
    store = make_store(graph)
    labels = make_labels(graph)
    if roots is None:
        roots = np.arange(graph.num_nodes)
    with PipelinedTrainer(
        store,
        labels,
        FANOUTS,
        seed=seed,
        workers=workers,
        batch_size=32,
        cached_epochs=cached_epochs,
    ) as trainer:
        report = trainer.train(np.asarray(roots), epochs=epochs)
    return report, store.summary


class TestNeighborhoodCache:
    def _fake_result(self, roots):
        """A SampleResult stand-in with FANOUTS-shaped hop layers whose
        values encode (root, hop, slot) so reconstruction is checkable."""
        roots = np.asarray(roots, dtype=np.int64)
        layers = [roots]
        width = 1
        for hop, fanout in enumerate(FANOUTS, start=1):
            width *= fanout
            layer = (
                roots[:, None] * 1000
                + hop * 100
                + np.arange(width)[None, :]
            )
            layers.append(layer.astype(np.int64))
        return SimpleNamespace(layers=layers)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NeighborhoodCache(0)

    def test_probe_counts_every_occurrence(self):
        cache = NeighborhoodCache(2)
        cache.begin_epoch(0, FANOUTS, "uniform", 0, trained_epochs=0)
        hits = cache.probe(np.array([7, 7, 9]))
        assert not hits.any()
        assert (cache.root_hits, cache.root_misses) == (0, 3)
        cache.insert(np.array([7, 9]), self._fake_result([7, 9]))
        hits = cache.probe(np.array([7, 7, 9, 11]))
        assert hits.tolist() == [True, True, True, False]
        assert (cache.root_hits, cache.root_misses) == (3, 4)

    def test_assemble_reconstructs_layers(self):
        cache = NeighborhoodCache(2)
        cache.begin_epoch(0, FANOUTS, "uniform", 0, trained_epochs=0)
        cache.insert(np.array([3, 5]), self._fake_result([3, 5]))
        # assemble in a different order / with duplicates
        expected = self._fake_result([5, 3, 5]).layers
        layers = cache.assemble(np.array([5, 3, 5]), FANOUTS)
        assert len(layers) == len(expected)
        for got, want in zip(layers, expected):
            np.testing.assert_array_equal(got, want)

    def test_first_insert_wins(self):
        cache = NeighborhoodCache(2)
        cache.begin_epoch(0, FANOUTS, "uniform", 0, trained_epochs=0)
        first = self._fake_result([4])
        cache.insert(np.array([4]), first)
        other = self._fake_result([4])
        other.layers = [layer + 1 for layer in other.layers]
        cache.insert(np.array([4]), other)
        layers = cache.assemble(np.array([4]), FANOUTS)
        np.testing.assert_array_equal(layers[1], first.layers[1])

    def test_fingerprint_change_clears(self):
        cache = NeighborhoodCache(2)
        cache.begin_epoch(0, FANOUTS, "uniform", 0, trained_epochs=0)
        cache.insert(np.array([1]), self._fake_result([1]))
        assert len(cache) == 1
        # same fingerprint (epoch 1, generation 1 // 2 == 0): kept
        cache.begin_epoch(0, FANOUTS, "uniform", 0, trained_epochs=1)
        assert len(cache) == 1
        # graph epoch moved: cleared
        cache.begin_epoch(1, FANOUTS, "uniform", 0, trained_epochs=1)
        assert len(cache) == 0

    def test_generation_rolls_every_cached_epochs(self):
        cache = NeighborhoodCache(2)
        cache.begin_epoch(0, FANOUTS, "uniform", 0, trained_epochs=0)
        cache.insert(np.array([1]), self._fake_result([1]))
        # trained_epochs=2 -> generation 1: re-sample
        cache.begin_epoch(0, FANOUTS, "uniform", 0, trained_epochs=2)
        assert len(cache) == 0

    def test_seed_change_clears(self):
        cache = NeighborhoodCache(3)
        cache.begin_epoch(0, FANOUTS, "uniform", 0, trained_epochs=0)
        cache.insert(np.array([1]), self._fake_result([1]))
        cache.begin_epoch(0, FANOUTS, "uniform", 1, trained_epochs=0)
        assert len(cache) == 0


class TestPipelinedTrainerParity:
    def test_workers_parity_uncached(self):
        ref_report, ref_summary = run_trainer(workers=0)
        par_report, par_summary = run_trainer(workers=2)
        assert par_report.epoch_losses == ref_report.epoch_losses
        assert par_report.weights_digest == ref_report.weights_digest
        assert par_summary == ref_summary
        assert ref_summary.neighborhood_hits == 0
        assert ref_summary.neighborhood_misses == 0

    def test_workers_parity_cached(self):
        ref_report, ref_summary = run_trainer(workers=0, cached_epochs=3)
        par_report, par_summary = run_trainer(workers=2, cached_epochs=3)
        assert par_report.epoch_losses == ref_report.epoch_losses
        assert par_report.weights_digest == ref_report.weights_digest
        assert par_summary == ref_summary
        # 3 epochs x 300 roots, miss epoch then two cached epochs
        assert ref_report.cache_misses == NUM_NODES
        assert ref_report.cache_hits == 2 * NUM_NODES
        assert ref_summary.neighborhood_hits == ref_report.cache_hits
        assert ref_summary.neighborhood_misses == ref_report.cache_misses

    def test_duplicate_root_batches_parity(self):
        """Micro-batches with repeated roots still match workers=0
        bit for bit (the occurrence-order scatter-add contract)."""
        rng = np.random.default_rng(11)
        roots = rng.integers(0, NUM_NODES, size=200)
        assert len(np.unique(roots)) < roots.size  # really has duplicates
        for cached in (0, 2):
            ref, ref_sum = run_trainer(
                workers=0, roots=roots, cached_epochs=cached, epochs=2
            )
            par, par_sum = run_trainer(
                workers=2, roots=roots, cached_epochs=cached, epochs=2
            )
            assert par.epoch_losses == ref.epoch_losses
            assert par.weights_digest == ref.weights_digest
            assert par_sum == ref_sum

    def test_repeat_runs_bit_identical(self):
        """Same seed, same worker count: every artifact is bitwise
        reproducible, cached or not."""
        for cached in (0, 3):
            a, a_sum = run_trainer(workers=0, cached_epochs=cached)
            b, b_sum = run_trainer(workers=0, cached_epochs=cached)
            assert a.epoch_losses == b.epoch_losses
            assert a.weights_digest == b.weights_digest
            assert a_sum == b_sum


class TestPipelinedTrainerBehavior:
    def test_report_accounting(self):
        report, _ = run_trainer(workers=0, epochs=2)
        assert isinstance(report, TrainReport)
        assert report.epochs == 2
        batches_per_epoch = -(-NUM_NODES // 32)
        assert report.micro_batches == 2 * batches_per_epoch
        assert report.samples == 2 * NUM_NODES
        assert len(report.epoch_losses) == 2
        assert report.final_loss == report.epoch_losses[-1]
        assert len(report.weights_digest) == 64

    def test_loss_decreases(self):
        report, _ = run_trainer(workers=0, epochs=6)
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_deeper_pipeline_is_bit_identical(self):
        graph = make_graph()
        labels = make_labels(graph)
        digests = []
        for depth in (1, 2, 4):
            store = make_store(graph)
            with PipelinedTrainer(
                store, labels, FANOUTS, seed=0, pipeline_depth=depth
            ) as trainer:
                report = trainer.train(np.arange(NUM_NODES), epochs=2)
            digests.append((tuple(report.epoch_losses), report.weights_digest))
        assert digests[0] == digests[1] == digests[2]

    def test_validation(self):
        graph = make_graph()
        store = make_store(graph)
        labels = make_labels(graph)
        with pytest.raises(ConfigurationError):
            PipelinedTrainer(store, labels[:-1], FANOUTS)
        with pytest.raises(ConfigurationError):
            PipelinedTrainer(store, labels, FANOUTS, batch_size=0)
        with pytest.raises(ConfigurationError):
            PipelinedTrainer(store, labels, FANOUTS, lr=0.0)
        with pytest.raises(ConfigurationError):
            PipelinedTrainer(store, labels, FANOUTS, cached_epochs=-1)
        with PipelinedTrainer(store, labels, FANOUTS) as trainer:
            with pytest.raises(ConfigurationError):
                trainer.train(np.arange(10), epochs=0)
            with pytest.raises(ConfigurationError):
                trainer.train(np.array([], dtype=np.int64))

    def test_external_engine_not_closed(self):
        graph = make_graph()
        store = make_store(graph)
        labels = make_labels(graph)
        with ParallelSampler(store, workers=0, seed=0, slots=2) as engine:
            with PipelinedTrainer(
                store, labels, FANOUTS, engine=engine
            ) as trainer:
                trainer.train(np.arange(64), epochs=1)
            # the trainer must not have closed the caller's engine
            request = SampleRequest(
                roots=np.arange(8), fanouts=FANOUTS, with_attributes=False
            )
            assert engine.sample(request).layers[0].size == 8


class TestDrainOnComputeError:
    def _executor(self, store, slots=4):
        engine = ParallelSampler(store, workers=0, seed=3, slots=slots)
        return engine, PipelinedExecutor(engine, depth=slots)

    def _requests(self, count, batch=16):
        rng = np.random.default_rng(5)
        for _ in range(count):
            yield SampleRequest(
                roots=rng.integers(0, NUM_NODES, size=batch),
                fanouts=FANOUTS,
                with_attributes=False,
            )

    def test_compute_error_drains_in_flight(self):
        """A failing compute stage must flush the pipeline: the engine's
        arena slots come back and the executor stays usable."""
        store = make_store(make_graph())
        engine, executor = self._executor(store)
        seen = []

        def compute(result):
            seen.append(result)
            if len(seen) == 2:
                raise RuntimeError("injected compute failure")
            return result

        with engine:
            with pytest.raises(RuntimeError, match="injected"):
                list(executor.stream(self._requests(8), compute))
            assert len(seen) == 2
            assert executor.drain_failures == 0
            # every slot was freed: a full-depth run fits again
            results = executor.run(self._requests(6))
            assert len(results) == 6

    def test_generator_close_drains(self):
        store = make_store(make_graph())
        engine, executor = self._executor(store)
        with engine:
            stream = executor.stream(self._requests(8))
            next(stream)
            stream.close()
            assert not executor._in_flight
            assert len(executor.run(self._requests(6))) == 6

    def test_one_stream_at_a_time(self):
        store = make_store(make_graph())
        engine, executor = self._executor(store)
        with engine:
            first = executor.stream(self._requests(8))
            next(first)  # pipeline now holds in-flight micro-batches
            second = executor.stream(self._requests(2))
            with pytest.raises(ParallelExecutionError, match="one stream"):
                next(second)
            first.close()

    def test_discard_unknown_seq_rejected(self):
        store = make_store(make_graph())
        with ParallelSampler(store, workers=0, seed=3, slots=2) as engine:
            with pytest.raises(ParallelExecutionError):
                engine.discard(99)


class TestGnnSessionTrain:
    def test_session_train_matches_trainer(self):
        graph = make_graph()
        labels = make_labels(graph)
        with GnnSession(graph, num_partitions=4, seed=0) as session:
            report = session.train(labels, FANOUTS, epochs=2)
        ref, _ = run_trainer(workers=0, epochs=2)
        assert report.epoch_losses == ref.epoch_losses
        assert report.weights_digest == ref.weights_digest

    def test_session_train_rejects_dynamic(self):
        graph = make_graph()
        labels = make_labels(graph)
        with GnnSession(DynamicGraph(graph), num_partitions=2) as session:
            with pytest.raises(ConfigurationError, match="static"):
                session.train(labels, FANOUTS)

    def test_session_train_rejects_layout(self):
        graph = make_graph()
        labels = make_labels(graph)
        with GnnSession(graph, num_partitions=4, layout="ldg") as session:
            with pytest.raises(ConfigurationError, match="locality layout"):
                session.train(labels, FANOUTS)
