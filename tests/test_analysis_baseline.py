"""Suppression-comment and baseline workflow tests.

Covers the ISSUE contract: a suppressed finding doesn't fail the run, a
stale baseline entry is reported, and ``--update-baseline`` round-trips
to a clean exit.
"""

import json
from pathlib import Path

from repro.analysis import Baseline, BaselineEntry, analyze_source
from repro.analysis.baseline import BASELINE_VERSION
from repro.analysis.findings import Finding

MODULE = "repro/framework/sampler.py"


def findings_of(source, module_path=MODULE):
    return analyze_source(source, module_path=module_path)


# ------------------------------------------------------------- suppressions
def test_inline_suppression_moves_finding_aside():
    result = findings_of(
        "import random  # repro: allow[det-rng] fixture for docs\n"
    )
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["det-rng"]


def test_comment_line_suppresses_next_code_line():
    source = (
        "# repro: allow[det-wallclock] measured on the host on purpose\n"
        "import time\n"
    )
    result = findings_of(source)
    assert result.findings == []
    assert [f.rule for f in result.suppressed] == ["det-wallclock"]


def test_suppression_is_rule_scoped():
    source = "import time  # repro: allow[det-rng] wrong rule id\n"
    result = findings_of(source)
    assert [f.rule for f in result.findings] == ["det-wallclock"]
    assert result.suppressed == []


def test_suppression_without_reason_is_invalid():
    result = findings_of("import time  # repro: allow[det-wallclock]\n")
    fired = {f.rule for f in result.findings}
    assert "suppress-format" in fired
    assert "det-wallclock" in fired  # malformed comment suppresses nothing


def test_suppression_with_unknown_rule_is_invalid():
    result = findings_of("x = 1  # repro: allow[no-such-rule] because\n")
    assert [f.rule for f in result.findings] == ["suppress-format"]


def test_string_literal_is_not_a_suppression():
    source = 'note = "# repro: allow[det-wallclock] not a comment"\nimport time\n'
    result = findings_of(source)
    assert [f.rule for f in result.findings] == ["det-wallclock"]


def test_multi_rule_suppression():
    source = (
        "import time, random"
        "  # repro: allow[det-wallclock, det-rng] demo of both\n"
    )
    result = findings_of(source)
    assert result.findings == []
    assert sorted(f.rule for f in result.suppressed) == [
        "det-rng",
        "det-wallclock",
    ]


# ---------------------------------------------------------------- baselines
def make_finding(rule="det-rng", line=3, snippet="import random"):
    return Finding(
        path=MODULE,
        line=line,
        col=1,
        rule=rule,
        message="msg",
        snippet=snippet,
    )


def test_baselined_finding_is_not_new():
    finding = make_finding()
    baseline = Baseline.from_findings([finding])
    result = baseline.apply([finding])
    assert result.new == []
    assert result.baselined_count == 1
    assert result.stale == []


def test_baseline_fingerprint_survives_line_moves():
    baseline = Baseline.from_findings([make_finding(line=3)])
    result = baseline.apply([make_finding(line=40)])
    assert result.new == []
    assert result.stale == []


def test_fixed_finding_goes_stale():
    baseline = Baseline.from_findings([make_finding()])
    result = baseline.apply([])
    assert result.new == []
    assert len(result.stale) == 1
    assert result.stale[0].rule == "det-rng"


def test_count_budget_catches_regrowth():
    finding = make_finding()
    baseline = Baseline.from_findings([finding, finding])
    result = baseline.apply([finding, finding, finding])
    assert len(result.new) == 1
    assert result.baselined_count == 2


def test_save_load_round_trip(tmp_path):
    path = tmp_path / "lint-baseline.json"
    baseline = Baseline.from_findings(
        [make_finding(), make_finding(rule="units-magic", snippet="x * 1e9")]
    )
    baseline.save(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["version"] == BASELINE_VERSION
    assert len(payload["entries"]) == 2

    reloaded = Baseline.load(path)
    result = reloaded.apply(
        [make_finding(), make_finding(rule="units-magic", snippet="x * 1e9")]
    )
    assert result.new == [] and result.stale == []


def test_missing_baseline_file_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "nope.json")
    result = baseline.apply([make_finding()])
    assert len(result.new) == 1


def test_entries_serialized_sorted(tmp_path):
    path = tmp_path / "lint-baseline.json"
    entries = [
        BaselineEntry(
            rule="units-magic", path="z.py", snippet="b", message="m", count=1
        ),
        BaselineEntry(
            rule="det-rng", path="a.py", snippet="a", message="m", count=1
        ),
    ]
    Baseline(entries).save(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    rules = [entry["rule"] for entry in payload["entries"]]
    assert rules == sorted(rules)
