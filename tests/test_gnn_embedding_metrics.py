"""Tests for repro.gnn.embedding and repro.gnn.metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gnn.embedding import EmbeddingTable
from repro.gnn.metrics import accuracy, hits_at_k, micro_f1


class TestEmbeddingTable:
    def test_lookup_shape(self):
        table = EmbeddingTable(100, 8, seed=0)
        out = table.lookup(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 8)

    def test_lookup_out_of_range(self):
        table = EmbeddingTable(10, 4)
        with pytest.raises(ConfigurationError):
            table.lookup(np.array([10]))

    def test_sparse_update(self):
        table = EmbeddingTable(10, 4, seed=0)
        before = table.table.copy()
        table.accumulate_grad(np.array([3]), np.ones((1, 4)))
        table.step(0.5)
        assert np.allclose(table.table[3], before[3] - 0.5)
        untouched = [i for i in range(10) if i != 3]
        assert np.allclose(table.table[untouched], before[untouched])

    def test_duplicate_indices_sum(self):
        table = EmbeddingTable(10, 2, seed=0)
        before = table.table[5].copy()
        table.accumulate_grad(np.array([5, 5]), np.ones((2, 2)))
        table.step(1.0)
        assert np.allclose(table.table[5], before - 2.0)

    def test_pending_rows(self):
        table = EmbeddingTable(10, 2)
        table.accumulate_grad(np.array([1, 2]), np.zeros((2, 2)))
        assert table.pending_rows == 2
        table.step(0.1)
        assert table.pending_rows == 0

    def test_grad_shape_mismatch(self):
        table = EmbeddingTable(10, 2)
        with pytest.raises(ConfigurationError):
            table.accumulate_grad(np.array([1]), np.zeros((2, 2)))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EmbeddingTable(0, 4)

    def test_training_moves_embedding_toward_target(self):
        table = EmbeddingTable(5, 3, seed=1)
        target = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        for _ in range(200):
            emb = table.lookup(np.array([2]))
            grad = emb - target
            table.accumulate_grad(np.array([2]), grad)
            table.step(0.1)
        assert np.allclose(table.table[2], target, atol=1e-2)


class TestMetrics:
    def test_micro_f1_perfect(self):
        labels = np.array([[1, 0], [0, 1]])
        assert micro_f1(labels, labels) == 1.0

    def test_micro_f1_zero(self):
        predictions = np.array([[1, 1]])
        labels = np.array([[0, 0]])
        assert micro_f1(predictions, labels) == 0.0

    def test_micro_f1_partial(self):
        predictions = np.array([[1, 0, 1, 0]])
        labels = np.array([[1, 1, 0, 0]])
        # tp=1, fp=1, fn=1 -> f1 = 2/(2+1+1)
        assert micro_f1(predictions, labels) == pytest.approx(0.5)

    def test_micro_f1_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            micro_f1(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_micro_f1_all_negative(self):
        assert micro_f1(np.zeros((2, 3)), np.zeros((2, 3))) == 0.0

    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(
            2 / 3
        )

    def test_accuracy_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_hits_at_1(self):
        scores = np.array([[3.0, 1.0, 2.0], [0.0, 5.0, 1.0]])
        assert hits_at_k(scores, 1) == pytest.approx(0.5)

    def test_hits_at_2(self):
        scores = np.array([[3.0, 1.0, 2.0], [0.5, 5.0, 0.1]])
        assert hits_at_k(scores, 2) == pytest.approx(1.0)

    def test_hits_validation(self):
        with pytest.raises(ConfigurationError):
            hits_at_k(np.zeros((2,)), 1)
        with pytest.raises(ConfigurationError):
            hits_at_k(np.zeros((2, 3)), 5)
