"""Tests for repro.gnn.embedding and repro.gnn.metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gnn.embedding import (
    EmbeddingShard,
    EmbeddingTable,
    ShardedEmbeddingTable,
)
from repro.gnn.metrics import accuracy, hits_at_k, micro_f1
from repro.graph.partition import HashPartitioner


class TestEmbeddingTable:
    def test_lookup_shape(self):
        table = EmbeddingTable(100, 8, seed=0)
        out = table.lookup(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 8)

    def test_lookup_out_of_range(self):
        table = EmbeddingTable(10, 4)
        with pytest.raises(ConfigurationError):
            table.lookup(np.array([10]))

    def test_sparse_update(self):
        table = EmbeddingTable(10, 4, seed=0)
        before = table.table.copy()
        table.accumulate_grad(np.array([3]), np.ones((1, 4)))
        table.step(0.5)
        assert np.allclose(table.table[3], before[3] - 0.5)
        untouched = [i for i in range(10) if i != 3]
        assert np.allclose(table.table[untouched], before[untouched])

    def test_duplicate_indices_sum(self):
        table = EmbeddingTable(10, 2, seed=0)
        before = table.table[5].copy()
        table.accumulate_grad(np.array([5, 5]), np.ones((2, 2)))
        table.step(1.0)
        assert np.allclose(table.table[5], before - 2.0)

    def test_pending_rows(self):
        table = EmbeddingTable(10, 2)
        table.accumulate_grad(np.array([1, 2]), np.zeros((2, 2)))
        assert table.pending_rows == 2
        table.step(0.1)
        assert table.pending_rows == 0

    def test_grad_shape_mismatch(self):
        table = EmbeddingTable(10, 2)
        with pytest.raises(ConfigurationError):
            table.accumulate_grad(np.array([1]), np.zeros((2, 2)))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EmbeddingTable(0, 4)

    def test_training_moves_embedding_toward_target(self):
        table = EmbeddingTable(5, 3, seed=1)
        target = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        for _ in range(200):
            emb = table.lookup(np.array([2]))
            grad = emb - target
            table.accumulate_grad(np.array([2]), grad)
            table.step(0.1)
        assert np.allclose(table.table[2], target, atol=1e-2)


class TestShardedEmbeddingTable:
    NODES = 60
    DIM = 6

    def _tables(self, partitions=3, seed=5):
        dense = EmbeddingTable(self.NODES, self.DIM, seed=seed)
        sharded = ShardedEmbeddingTable(
            self.NODES, self.DIM, HashPartitioner(partitions), seed=seed
        )
        return dense, sharded

    def test_init_bit_identical_to_dense(self):
        dense, sharded = self._tables()
        assert np.array_equal(dense.table, sharded.to_dense())

    def test_shard_count_follows_partitioner(self):
        _, sharded = self._tables(partitions=4)
        assert sharded.num_shards == 4
        owned = np.concatenate([s.node_ids for s in sharded.shards])
        assert np.array_equal(np.sort(owned), np.arange(self.NODES))

    def test_lookup_matches_dense(self):
        dense, sharded = self._tables()
        nodes = np.array([[0, 7, 7], [59, 3, 0]])
        assert np.array_equal(dense.lookup(nodes), sharded.lookup(nodes))

    def test_duplicate_root_batches_bit_identical(self):
        """Duplicate-root micro-batches: occurrence-order float32 sums
        must match the dense table bit for bit (satellite 3)."""
        dense, sharded = self._tables()
        rng = np.random.default_rng(0)
        for _ in range(5):
            nodes = rng.integers(0, self.NODES, size=40)
            grads = rng.standard_normal((40, self.DIM)).astype(np.float32)
            dense.accumulate_grad(nodes, grads)
            sharded.accumulate_grad(nodes, grads)
            dense.step(0.1)
            sharded.step(0.1)
        assert np.array_equal(dense.table, sharded.to_dense())

    def test_single_partition_matches_dense(self):
        dense, sharded = self._tables(partitions=1)
        nodes = np.array([1, 1, 2, 1])
        grads = np.full((4, self.DIM), 0.25, dtype=np.float32)
        dense.accumulate_grad(nodes, grads)
        sharded.accumulate_grad(nodes, grads)
        dense.step(1.0)
        sharded.step(1.0)
        assert np.array_equal(dense.table, sharded.to_dense())

    def test_shard_rejects_out_of_shard_nodes(self):
        _, sharded = self._tables()
        shard = sharded.shards[0]
        foreign = np.setdiff1d(np.arange(self.NODES), shard.node_ids)[:1]
        with pytest.raises(ConfigurationError, match="not owned by"):
            shard.accumulate_grad(
                foreign, np.ones((1, self.DIM), dtype=np.float32)
            )
        # a rejected batch must not leave partial pending state
        assert shard.pending_rows == 0

    def test_table_routes_instead_of_rejecting(self):
        _, sharded = self._tables()
        nodes = np.arange(self.NODES)  # touches every shard
        sharded.accumulate_grad(
            nodes, np.ones((self.NODES, self.DIM), dtype=np.float32)
        )
        assert sharded.pending_rows == self.NODES
        sharded.step(1.0)
        assert sharded.pending_rows == 0

    def test_lookup_out_of_range(self):
        _, sharded = self._tables()
        with pytest.raises(ConfigurationError):
            sharded.lookup(np.array([self.NODES]))
        with pytest.raises(ConfigurationError):
            sharded.accumulate_grad(
                np.array([-1]), np.ones((1, self.DIM), dtype=np.float32)
            )

    def test_shard_validation(self):
        with pytest.raises(ConfigurationError, match="sorted"):
            EmbeddingShard(0, np.array([3, 1]), np.zeros((2, 2), np.float32))
        with pytest.raises(ConfigurationError, match="rows"):
            EmbeddingShard(0, np.array([1, 3]), np.zeros((1, 2), np.float32))


class TestMetrics:
    def test_micro_f1_perfect(self):
        labels = np.array([[1, 0], [0, 1]])
        assert micro_f1(labels, labels) == 1.0

    def test_micro_f1_zero(self):
        predictions = np.array([[1, 1]])
        labels = np.array([[0, 0]])
        assert micro_f1(predictions, labels) == 0.0

    def test_micro_f1_partial(self):
        predictions = np.array([[1, 0, 1, 0]])
        labels = np.array([[1, 1, 0, 0]])
        # tp=1, fp=1, fn=1 -> f1 = 2/(2+1+1)
        assert micro_f1(predictions, labels) == pytest.approx(0.5)

    def test_micro_f1_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            micro_f1(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_micro_f1_all_negative(self):
        assert micro_f1(np.zeros((2, 3)), np.zeros((2, 3))) == 0.0

    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(
            2 / 3
        )

    def test_accuracy_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_hits_at_1(self):
        scores = np.array([[3.0, 1.0, 2.0], [0.0, 5.0, 1.0]])
        assert hits_at_k(scores, 1) == pytest.approx(0.5)

    def test_hits_at_2(self):
        scores = np.array([[3.0, 1.0, 2.0], [0.5, 5.0, 0.1]])
        assert hits_at_k(scores, 2) == pytest.approx(1.0)

    def test_hits_validation(self):
        with pytest.raises(ConfigurationError):
            hits_at_k(np.zeros((2,)), 1)
        with pytest.raises(ConfigurationError):
            hits_at_k(np.zeros((2, 3)), 5)
