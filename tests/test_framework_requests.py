"""Tests for repro.framework.requests."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.framework.requests import (
    NegativeSampleRequest,
    SampleRequest,
    SampleResult,
)


class TestSampleRequest:
    def test_basic_fields(self):
        request = SampleRequest(roots=np.array([1, 2, 3]), fanouts=(5, 2))
        assert request.batch_size == 3
        assert request.num_hops == 2

    def test_nodes_per_root(self):
        request = SampleRequest(roots=np.array([0]), fanouts=(10, 10))
        assert request.nodes_per_root() == 111

    def test_nodes_per_root_one_hop(self):
        request = SampleRequest(roots=np.array([0]), fanouts=(7,))
        assert request.nodes_per_root() == 8

    def test_rejects_empty_roots(self):
        with pytest.raises(ConfigurationError):
            SampleRequest(roots=np.array([]), fanouts=(5,))

    def test_rejects_empty_fanouts(self):
        with pytest.raises(ConfigurationError):
            SampleRequest(roots=np.array([1]), fanouts=())

    def test_rejects_nonpositive_fanout(self):
        with pytest.raises(ConfigurationError):
            SampleRequest(roots=np.array([1]), fanouts=(5, 0))

    def test_roots_coerced_to_int64(self):
        request = SampleRequest(roots=[1, 2], fanouts=(2,))
        assert request.roots.dtype == np.int64


class TestNegativeSampleRequest:
    def test_valid(self):
        request = NegativeSampleRequest(pairs=np.array([[0, 1], [2, 3]]), rate=5)
        assert request.pairs.shape == (2, 2)

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            NegativeSampleRequest(pairs=np.array([1, 2, 3]), rate=5)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            NegativeSampleRequest(pairs=np.array([[0, 1]]), rate=0)


class TestSampleResult:
    def test_total_nodes(self):
        result = SampleResult(
            layers=[np.zeros(4, dtype=np.int64), np.zeros((4, 10), dtype=np.int64)]
        )
        assert result.total_nodes() == 44
        assert result.num_hops == 1

    def test_flat_nodes(self):
        result = SampleResult(
            layers=[np.array([1, 2]), np.array([[3, 4], [5, 6]])]
        )
        assert result.flat_nodes().tolist() == [1, 2, 3, 4, 5, 6]

    def test_empty_result(self):
        result = SampleResult()
        assert result.total_nodes() == 0
        assert result.flat_nodes().size == 0
