"""Cross-module integration tests.

These exercise whole pipelines: hardware-vs-software sampler functional
equivalence, the accuracy-parity experiment (Tech-2), RISC-V-driven AxE
control, and the consistency between the event simulator, the
analytical model, and the FaaS DSE.
"""

import numpy as np
import pytest

from repro.axe.commands import Command, CommandKind, sample_command
from repro.axe.engine import AxeEngine, EngineConfig
from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.framework.selectors import select_streaming
from repro.graph.csr import CSRGraph
from repro.graph.datasets import instantiate_dataset
from repro.graph.partition import HashPartitioner
from repro.gnn.models import GraphSageEncoder
from repro.gnn.train import Trainer, train_to_convergence
from repro.memstore.store import PartitionedStore
from repro.riscv import Qrch, QrchQueue, RiscvCpu, assemble


class TestHardwareSoftwareEquivalence:
    """The AxE engine and the software sampler implement the same
    functional contract."""

    @pytest.fixture(scope="class")
    def graph(self):
        return instantiate_dataset("ss", max_nodes=3000, seed=1)

    def test_sampled_subgraphs_are_valid_in_both(self, graph):
        roots = np.arange(12)
        engine = AxeEngine(graph, EngineConfig(num_cores=2))
        hw_results, _stats = engine.run(sample_command(roots, (5, 5)))
        store = PartitionedStore(graph, HashPartitioner(4))
        sampler = MultiHopSampler(store, seed=0)
        sw_result = sampler.sample(
            SampleRequest(roots=roots, fanouts=(5, 5), with_attributes=False)
        )
        # Same layer shapes; both contain only true neighbors.
        for index, root in enumerate(roots):
            hw_layers = hw_results[int(root)]
            assert hw_layers[1].size == sw_result.layers[1][index].size
            allowed = set(graph.neighbors(int(root)).tolist()) or {int(root)}
            assert set(hw_layers[1].tolist()) <= allowed
            assert set(sw_result.layers[1][index].tolist()) <= allowed

    def test_negative_sampling_contract(self, graph):
        pairs = np.array([[1, 2], [3, 4], [5, 6]])
        engine = AxeEngine(graph, EngineConfig(num_cores=1))
        negatives, _stats = engine.run(
            Command(kind=CommandKind.NEGATIVE_SAMPLE, nodes=pairs, rate=5)
        )
        for row, (src, _dst) in enumerate(pairs):
            forbidden = set(graph.neighbors(int(src)).tolist()) | {int(src)}
            assert not (set(negatives[row].tolist()) & forbidden)


class TestAccuracyParity:
    """Tech-2's claim: streaming sampling matches uniform sampling's
    end-model accuracy (0.548 vs 0.549 on PPI in the paper)."""

    @staticmethod
    def _ppi_like_task(seed=0, num_nodes=400, num_labels=5):
        rng = np.random.default_rng(seed)
        communities = rng.integers(0, num_labels, num_nodes)
        attrs = np.eye(num_labels, dtype=np.float32)[communities]
        attrs += 0.3 * rng.standard_normal(attrs.shape).astype(np.float32)
        edges = []
        for node in range(num_nodes):
            same = np.flatnonzero(communities == communities[node])
            for _ in range(6):
                edges.append((node, int(rng.choice(same))))
        graph = CSRGraph.from_edges(num_nodes, edges, node_attr=attrs)
        labels = np.eye(num_labels, dtype=np.int64)[communities]
        return graph, labels

    def _train_f1(self, selector, seed=0):
        graph, labels = self._ppi_like_task(seed=seed)
        store = PartitionedStore(graph, HashPartitioner(2))
        kwargs = {} if selector is None else {"selector": selector}
        sampler = MultiHopSampler(store, seed=seed, **kwargs)
        encoder = GraphSageEncoder(graph.attr_len, 16, (5,), seed=seed)
        trainer = Trainer(sampler, encoder, num_labels=labels.shape[1], lr=3.0)
        roots = np.arange(graph.num_nodes)
        train_to_convergence(trainer, roots[:300], labels[:300], epochs=6)
        return trainer.evaluate(roots[300:], labels[300:])

    def test_streaming_matches_uniform_f1(self):
        uniform_f1 = self._train_f1(None)
        streaming_f1 = self._train_f1(select_streaming)
        assert uniform_f1 > 0.7
        assert streaming_f1 > 0.7
        assert abs(uniform_f1 - streaming_f1) < 0.08


class TestRiscvDrivesAxe:
    """The control plane: a RISC-V program launches an AxE sampling
    command through a QRCH queue and reads back the completion."""

    def test_control_program_launches_sampling(self):
        graph = instantiate_dataset("ss", max_nodes=1000, seed=0)
        engine = AxeEngine(graph, EngineConfig(num_cores=1))
        completions = []

        def launch_sample(batch_size, fanout):
            roots = np.arange(batch_size % graph.num_nodes + 1)
            _results, stats = engine.run(sample_command(roots, (max(1, fanout),)))
            completions.append(stats)
            return int(stats.roots)

        hub = Qrch()
        hub.attach(7, QrchQueue("axe", launch_sample))
        cpu = RiscvCpu(qrch=hub)
        cpu.load_program(
            assemble(
                """
                addi x2, x0, 16    # batch size
                addi x3, x0, 5     # fanout
                qpush x0, x2, x3, 7
                qpull x4, 7
                ecall
                """
            )
        )
        cpu.run()
        assert cpu.registers[4] == 17  # roots completed, echoed back
        assert completions and completions[0].elapsed_s > 0


class TestModelConsistency:
    """The event simulator, analytical model, and DSE agree on trends."""

    def test_event_sim_and_analytical_agree_on_memory_scaling(self):
        from repro.perfmodel.poc import PocConfigPoint, validate_model

        graph = instantiate_dataset("ls", max_nodes=6000, seed=0)
        points = [PocConfigPoint(2, memory, 1) for memory in ("1-chn", "4-chn")]
        rows = validate_model(graph, points, batch_size=32)
        # Both agree that 4 channels >= 1 channel.
        assert rows[1].measured_roots_per_s >= rows[0].measured_roots_per_s * 0.9
        assert rows[1].modeled_roots_per_s >= rows[0].modeled_roots_per_s

    def test_dse_mem_opt_uses_fewer_instances(self):
        """mem-opt shards in 512GB FPGA DRAM, so it needs no more
        instances than base's host quota at the small size."""
        from repro.faas.dse import FaasDse
        from repro.faas.arch import get_architecture

        dse = FaasDse()
        from repro.cost.instances import FAAS_CONFIGS

        small = FAAS_CONFIGS["small"]
        base_instances = dse.num_instances(get_architecture("base.tc"), small, "syn")
        mem_instances = dse.num_instances(get_architecture("mem-opt.tc"), small, "syn")
        assert mem_instances < base_instances

    def test_end_to_end_story_holds(self):
        """The paper's four-sentence story, in code: sampling dominates
        end-to-end, the PoC FPGA replaces ~894 vCPUs, FaaS.base already
        wins on perf/$, and mem-opt.tc wins by the largest margin."""
        from repro.gnn.e2e import EndToEndModel
        from repro.perfmodel.poc import geomean_equivalence, poc_vcpu_equivalence
        from repro.faas.dse import FaasDse
        from repro.faas.report import arch_geomeans

        assert EndToEndModel().breakdown(True).sampling_fraction > 0.5
        equivalence = geomean_equivalence(
            poc_vcpu_equivalence(max_nodes=4000, batch_size=48)
        )
        assert equivalence > 300
        dse = FaasDse()
        geomeans = arch_geomeans(dse.evaluate_all(), dse.cpu_baseline_all())
        assert geomeans["base.decp"] > 1.0
        assert max(geomeans, key=geomeans.get) == "mem-opt.tc"
