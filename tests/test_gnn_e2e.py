"""Tests for repro.gnn.e2e (Figure 3)."""

import pytest

from repro.errors import ConfigurationError
from repro.gnn.e2e import EndToEndModel, StageBreakdown


@pytest.fixture
def model():
    return EndToEndModel()


class TestBreakdown:
    def test_training_sampling_dominates(self, model):
        """Figure 3: sampling takes ~64% of training time."""
        breakdown = model.breakdown(training=True)
        assert 0.55 < breakdown.sampling_fraction < 0.75

    def test_inference_sampling_dominates_more(self, model):
        """Figure 3: sampling takes ~88% of inference time."""
        breakdown = model.breakdown(training=False)
        assert 0.78 < breakdown.sampling_fraction < 0.95

    def test_inference_heavier_share_than_training(self, model):
        assert (
            model.breakdown(False).sampling_fraction
            > model.breakdown(True).sampling_fraction
        )

    def test_fractions_sum_to_one(self, model):
        breakdown = model.breakdown(True)
        assert breakdown.sampling_fraction + breakdown.nn_fraction == pytest.approx(1.0)

    def test_training_slower_than_inference(self, model):
        assert model.breakdown(True).total_s > model.breakdown(False).total_s

    def test_as_dict(self, model):
        d = model.breakdown(True).as_dict()
        assert set(d) == {"sampling", "embedding", "nn"}

    def test_storage_ratio_is_orders_of_magnitude(self, model):
        """Figure 3: graph storage dwarfs the NN model by >= 1e5."""
        assert model.storage_ratio() > 1e5

    def test_nn_model_is_megabytes(self, model):
        assert model.nn_model_bytes() < 10 * 1024 * 1024

    def test_more_workers_shrinks_sampling_share(self):
        few = EndToEndModel(worker_vcpus=60).breakdown(True)
        many = EndToEndModel(worker_vcpus=480).breakdown(True)
        assert many.sampling_fraction < few.sampling_fraction

    def test_faster_gpu_grows_sampling_share(self):
        slow = EndToEndModel(gpu_effective_tflops=0.5).breakdown(True)
        fast = EndToEndModel(gpu_effective_tflops=8.0).breakdown(True)
        assert fast.sampling_fraction > slow.sampling_fraction

    def test_negative_rate_increases_training_nn(self):
        lean = EndToEndModel(negative_rate=0)
        heavy = EndToEndModel(negative_rate=20)
        assert heavy.nn_time(True) > lean.nn_time(True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EndToEndModel(batch_size=0)
        with pytest.raises(ConfigurationError):
            EndToEndModel(negative_rate=-1)


class TestStageBreakdown:
    def test_totals(self):
        breakdown = StageBreakdown(6.0, 1.0, 3.0)
        assert breakdown.total_s == 10.0
        assert breakdown.sampling_fraction == pytest.approx(0.6)
        assert breakdown.nn_fraction == pytest.approx(0.4)


class TestBatchedSampling:
    def test_batched_divides_sampling_time(self):
        base = EndToEndModel()
        fast = EndToEndModel(batched_sampling=True, batched_speedup=5.0)
        assert fast.sampling_time(True) == pytest.approx(
            base.sampling_time(True) / 5.0
        )
        # Non-sampling stages are untouched.
        assert fast.nn_time(True) == base.nn_time(True)
        assert fast.breakdown(True).sampling_fraction < base.breakdown(True).sampling_fraction

    def test_speedup_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            EndToEndModel(batched_speedup=0.9)
