"""Edge-case coverage for the store's vectorized batch gathers.

Three regimes the hot-path tests skip over: empty frontiers, batches
whose every occurrence fails under fault injection (all-miss), and
deduplicated batches where every key repeats (``counts`` > 1
everywhere). Accounting parity against repeated single-node calls is
the invariant throughout.
"""

import numpy as np
import pytest

from repro.errors import ReplicaUnavailableError
from repro.graph.csr import CSRGraph
from repro.graph.partition import HashPartitioner, RangePartitioner
from repro.memstore.faults import FaultInjector, ReliableReadPath
from repro.memstore.replication import ReplicaPlacement
from repro.memstore.retry import RetryPolicy
from repro.memstore.store import PartitionedStore


def chain_graph(num_nodes: int = 10, attr_len: int = 4) -> CSRGraph:
    """Node i points at node i+1 (last node isolated)."""
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    indptr[1:] = np.minimum(np.arange(1, num_nodes + 1), num_nodes - 1)
    indices = np.arange(1, num_nodes, dtype=np.int64)
    attr = (
        np.arange(1, num_nodes + 1, dtype=np.float32)[:, None]
        * np.ones(attr_len, dtype=np.float32)
    )
    return CSRGraph(indptr=indptr, indices=indices, node_attr=attr)


def faulty_store(kill: bool = True) -> PartitionedStore:
    """Two range shards; shard 1's only replica is dead when ``kill``."""
    graph = chain_graph(10)
    partitioner = RangePartitioner(2, graph.num_nodes)
    placement = ReplicaPlacement(num_partitions=2, replication_factor=1)
    injector = FaultInjector()
    path = ReliableReadPath(
        placement, RetryPolicy(hedge=False), injector, seed=0, jitter_sigma=0.0
    )
    if kill:
        injector.kill_replica(1, 0)
    return PartitionedStore(graph, partitioner, reliability=path)


class TestEmptyFrontier:
    def test_neighbors_empty(self):
        store = PartitionedStore(chain_graph(), HashPartitioner(2))
        batch = store.get_neighbors_batch(np.empty(0, dtype=np.int64), 0)
        assert len(batch) == 0
        assert batch.values.size == 0
        assert batch.offsets.tolist() == [0]
        assert batch.served.size == 0
        assert batch.fallbacks == 0
        assert store.summary.total_count == 0
        assert store.summary.total_bytes == 0

    def test_attributes_empty(self):
        store = PartitionedStore(chain_graph(), HashPartitioner(2))
        batch = store.get_attributes_batch(np.empty(0, dtype=np.int64), 0)
        assert len(batch) == 0
        assert batch.rows.shape == (0, store.graph.attr_len)
        assert batch.fallbacks == 0
        assert store.summary.total_count == 0

    def test_empty_with_counts(self):
        store = PartitionedStore(chain_graph(), HashPartitioner(2))
        batch = store.get_neighbors_batch(
            np.empty(0, dtype=np.int64), 0, counts=np.empty(0, dtype=np.int64)
        )
        assert len(batch) == 0
        assert store.summary.total_count == 0


class TestAllMissUnderFaults:
    def test_neighbors_all_miss_degraded(self):
        store = faulty_store()
        # Nodes 5..8 live on dead shard 1; reader sits on shard 0.
        nodes = np.arange(5, 9, dtype=np.int64)
        counts = np.full(4, 2, dtype=np.int64)
        batch = store.get_neighbors_batch(nodes, 0, counts=counts, degraded_ok=True)
        assert not batch.served.any()
        assert batch.fallbacks == int(counts.sum())
        # Every miss degrades to an empty slice; nothing is recorded.
        assert batch.values.size == 0
        assert batch.offsets.tolist() == [0, 0, 0, 0, 0]
        assert store.summary.total_count == 0
        assert store.summary.remote_count == 0

    def test_attributes_all_miss_degraded(self):
        store = faulty_store()
        nodes = np.arange(5, 9, dtype=np.int64)
        batch = store.get_attributes_batch(nodes, 0, degraded_ok=True)
        assert not batch.served.any()
        assert batch.fallbacks == nodes.size
        assert not batch.rows.any()  # degraded rows are zero, not junk
        assert not np.isnan(batch.rows).any()
        assert store.summary.total_count == 0

    def test_all_miss_raises_without_degraded_ok(self):
        store = faulty_store()
        nodes = np.arange(5, 9, dtype=np.int64)
        with pytest.raises(ReplicaUnavailableError):
            store.get_neighbors_batch(nodes, 0, degraded_ok=False)
        with pytest.raises(ReplicaUnavailableError):
            store.get_attributes_batch(nodes, 0, degraded_ok=False)
        # The failing (first) occurrence recorded nothing.
        assert store.summary.total_count == 0

    def test_live_shard_unaffected(self):
        store = faulty_store()
        nodes = np.arange(0, 4, dtype=np.int64)  # shard 0, local to reader
        batch = store.get_neighbors_batch(nodes, 0, degraded_ok=True)
        assert batch.served.all()
        assert batch.fallbacks == 0


class TestDedupCountsAllRepeated:
    """``counts`` accounting when every key occurs more than once."""

    def occurrences(self, counts):
        nodes = np.arange(1, 5, dtype=np.int64)
        return nodes, np.asarray(counts, dtype=np.int64)

    def test_neighbors_counts_match_repeated_singles(self):
        nodes, counts = self.occurrences([3, 2, 4, 2])
        batched = PartitionedStore(chain_graph(), HashPartitioner(2))
        batched.get_neighbors_batch(nodes, 0, counts=counts)
        single = PartitionedStore(chain_graph(), HashPartitioner(2))
        for node, count in zip(nodes, counts):
            for _ in range(count):
                single.get_neighbors(int(node), 0)
        assert batched.summary == single.summary

    def test_attributes_counts_match_repeated_singles(self):
        nodes, counts = self.occurrences([2, 2, 2, 2])
        batched = PartitionedStore(chain_graph(), HashPartitioner(2))
        batched.get_attributes_batch(nodes, 0, counts=counts)
        single = PartitionedStore(chain_graph(), HashPartitioner(2))
        for node, count in zip(nodes, counts):
            for _ in range(count):
                single.get_attributes(np.asarray([node], dtype=np.int64), 0)
        assert batched.summary == single.summary

    def test_dedup_get_attributes_every_key_repeated(self):
        nodes = np.array([3, 1, 3, 1, 3], dtype=np.int64)
        deduped = PartitionedStore(chain_graph(), HashPartitioner(2))
        rows = deduped.get_attributes(nodes, 0, dedup=True)
        plain = PartitionedStore(chain_graph(), HashPartitioner(2))
        expected = plain.get_attributes(nodes, 0)
        np.testing.assert_array_equal(rows, expected)
        assert deduped.summary == plain.summary

    def test_counts_shape_mismatch_rejected(self):
        from repro.errors import ConfigurationError

        store = PartitionedStore(chain_graph(), HashPartitioner(2))
        with pytest.raises(ConfigurationError):
            store.get_neighbors_batch(
                np.array([1, 2]), 0, counts=np.array([1, 2, 3])
            )
        with pytest.raises(ConfigurationError):
            store.get_attributes_batch(
                np.array([1, 2]), 0, counts=np.array([1])
            )
