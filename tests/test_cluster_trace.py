"""Tests for repro.cluster.trace (deterministic diurnal flash-crowd traces)."""

import numpy as np
import pytest

from repro.cluster.trace import (
    FlashCrowd,
    TenantMix,
    TraceConfig,
    default_mix,
    flash_crowd_day,
    generate_trace,
    trace_digest,
)
from repro.errors import ConfigurationError


def small_config(**kwargs):
    defaults = dict(duration_s=2.0, users=50_000, seed=7)
    defaults.update(kwargs)
    return TraceConfig(**defaults)


class TestDeterminism:
    def test_regeneration_is_byte_identical(self):
        config = flash_crowd_day(duration_s=2.0, users=100_000, seed=3)
        first = generate_trace(config)
        second = generate_trace(config)
        assert len(first) == len(second)
        assert trace_digest(first) == trace_digest(second)

    def test_seed_changes_the_trace(self):
        base = generate_trace(small_config(seed=1))
        other = generate_trace(small_config(seed=2))
        assert trace_digest(base) != trace_digest(other)

    def test_adding_a_tenant_preserves_other_streams(self):
        """SeedSequence spawning: tenant streams are independent."""
        two = TraceConfig(
            duration_s=2.0,
            users=50_000,
            seed=7,
            tenants=(
                TenantMix(name="a", share=0.5),
                TenantMix(name="b", share=0.5),
            ),
        )
        three = TraceConfig(
            duration_s=2.0,
            users=50_000,
            seed=7,
            tenants=(
                TenantMix(name="a", share=0.5),
                TenantMix(name="b", share=0.5 - 0.25),
                TenantMix(name="c", share=0.25),
            ),
        )
        a_two = [a for a in generate_trace(two) if a.tenant == "a"]
        a_three = [a for a in generate_trace(three) if a.tenant == "a"]
        # Tenant a's share and child seed are unchanged, so its arrival
        # times are identical even though the merged seq numbers shift.
        assert [a.time_s for a in a_two] == [a.time_s for a in a_three]

    def test_arrivals_sorted_and_resequenced(self):
        arrivals = generate_trace(small_config())
        times = [a.time_s for a in arrivals]
        assert times == sorted(times)
        assert [a.seq for a in arrivals] == list(range(len(arrivals)))

    def test_digest_covers_roots(self):
        arrivals = generate_trace(small_config())
        mutated = list(arrivals)
        bumped = mutated[0].roots.copy()
        bumped[0] += 1
        mutated[0] = type(mutated[0])(
            time_s=mutated[0].time_s,
            tenant=mutated[0].tenant,
            roots=bumped,
            fanouts=mutated[0].fanouts,
            slo_s=mutated[0].slo_s,
            seq=mutated[0].seq,
        )
        assert trace_digest(arrivals) != trace_digest(mutated)


class TestRates:
    def test_diurnal_trough_at_start_crest_at_midday(self):
        config = small_config(diurnal_amplitude=0.5)
        assert config.diurnal_multiplier(0.0) == pytest.approx(0.5)
        assert config.diurnal_multiplier(
            config.duration_s / 2
        ) == pytest.approx(1.5)

    def test_flash_crowd_trapezoid(self):
        crowd = FlashCrowd(
            start_s=1.0, duration_s=1.0, multiplier=3.0, ramp_s=0.25
        )
        assert crowd.multiplier_at(0.9) == 1.0
        assert crowd.multiplier_at(1.125) == pytest.approx(2.0)
        assert crowd.multiplier_at(1.5) == 3.0
        assert crowd.multiplier_at(1.875) == pytest.approx(2.0)
        assert crowd.multiplier_at(2.1) == 1.0

    def test_flash_crowd_scopes_to_tenant(self):
        config = small_config(
            flash_crowds=(
                FlashCrowd(
                    start_s=0.5,
                    duration_s=0.5,
                    multiplier=2.0,
                    ramp_s=0.1,
                    tenants=("fraud",),
                ),
            )
        )
        assert config.flash_multiplier("fraud", 0.75) == 2.0
        assert config.flash_multiplier("recsys", 0.75) == 1.0

    def test_flash_crowd_raises_arrival_count(self):
        quiet = small_config()
        spiky = small_config(
            flash_crowds=(
                FlashCrowd(start_s=0.4, duration_s=1.2, multiplier=3.0),
            )
        )
        assert len(generate_trace(spiky)) > len(generate_trace(quiet))

    def test_rate_never_exceeds_peak_envelope(self):
        config = flash_crowd_day(duration_s=2.0, users=50_000)
        for tenant in config.tenants:
            peak = config.peak_rate(tenant)
            for t in np.linspace(0, config.duration_s, 101):
                assert config.rate(tenant, float(t)) <= peak + 1e-9

    def test_tenant_specs_match_mix(self):
        config = small_config()
        specs = {s.name: s for s in config.tenant_specs()}
        for mix in config.tenants:
            spec = specs[mix.name]
            assert spec.rate_rps == pytest.approx(
                config.total_rps * mix.share
            )
            assert spec.slo_s == mix.slo_s
            assert spec.fanouts == mix.fanouts


class TestValidation:
    def test_shares_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            small_config(
                tenants=(
                    TenantMix(name="a", share=0.5),
                    TenantMix(name="b", share=0.4),
                )
            )

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ConfigurationError):
            small_config(
                tenants=(
                    TenantMix(name="a", share=0.5),
                    TenantMix(name="a", share=0.5),
                )
            )

    def test_flash_crowd_unknown_tenant_rejected(self):
        with pytest.raises(ConfigurationError):
            small_config(
                flash_crowds=(
                    FlashCrowd(
                        start_s=0.1,
                        duration_s=0.5,
                        multiplier=2.0,
                        tenants=("nope",),
                    ),
                )
            )

    def test_flash_crowd_multiplier_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            FlashCrowd(start_s=0.0, duration_s=1.0, multiplier=1.0)

    def test_ramp_must_fit_window(self):
        with pytest.raises(ConfigurationError):
            FlashCrowd(
                start_s=0.0, duration_s=1.0, multiplier=2.0, ramp_s=0.6
            )

    def test_default_mix_shares_sum_to_one(self):
        assert sum(t.share for t in default_mix()) == pytest.approx(1.0)
