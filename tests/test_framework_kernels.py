"""Tests for the kernel tier registry and the NumPy reference kernels."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.framework.kernels import (
    KERNEL_TIERS,
    NUMPY_KERNELS,
    NumpyKernels,
    compiled_available,
    compiled_unavailable_reason,
    default_kernels,
    get_kernels,
    rowwise_weighted_picks,
    set_default_kernels,
)


class TestGetKernels:
    def test_none_and_numpy_resolve_to_reference(self):
        assert get_kernels(None) is NUMPY_KERNELS
        assert get_kernels("numpy") is NUMPY_KERNELS
        assert get_kernels() is NUMPY_KERNELS

    def test_tier_object_passes_through(self):
        assert get_kernels(NUMPY_KERNELS) is NUMPY_KERNELS

    def test_rejects_non_tier_object(self):
        with pytest.raises(ConfigurationError):
            get_kernels(42)

    def test_rejects_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_kernels("cuda")

    def test_auto_always_resolves(self):
        tier = get_kernels("auto")
        assert tier.name in ("numpy", "compiled")

    def test_compiled_raises_or_resolves(self):
        if compiled_available():
            assert get_kernels("compiled").compiled is True
            assert compiled_unavailable_reason() is None
        else:
            reason = compiled_unavailable_reason()
            assert reason is not None
            with pytest.raises(ConfigurationError, match="numba"):
                get_kernels("compiled")

    def test_tier_names_registry(self):
        assert KERNEL_TIERS == ("auto", "numpy", "compiled")

    def test_default_tier_is_numpy(self):
        assert default_kernels() is NUMPY_KERNELS

    def test_set_default_round_trip(self):
        try:
            tier = set_default_kernels("auto")
            assert default_kernels() is tier
        finally:
            set_default_kernels("numpy")
        assert default_kernels() is NUMPY_KERNELS


class TestNumpyKernels:
    def test_gather_rows(self):
        values = np.arange(10) * 10
        out = NUMPY_KERNELS.gather_rows(values, np.array([0, 4, 7]), 3)
        assert out.tolist() == [[0, 10, 20], [40, 50, 60], [70, 80, 90]]

    def test_take_picks(self):
        matrix = np.array([[1, 2, 3], [4, 5, 6]])
        picks = np.array([[2, 0], [1, 1]])
        out = NUMPY_KERNELS.take_picks(matrix, picks)
        assert out.tolist() == [[3, 1], [5, 5]]

    def test_segment_sum_accumulates_duplicates(self):
        values = np.array([[1.0], [2.0], [4.0]])
        out = NUMPY_KERNELS.segment_sum(values, np.array([1, 1, 0]), 3)
        assert out.tolist() == [[4.0], [3.0], [0.0]]

    def test_ragged_segment_sum_handles_empty_segments(self):
        values = np.arange(6, dtype=np.float64).reshape(3, 2)
        offsets = np.array([0, 0, 2, 2, 3])
        out = NUMPY_KERNELS.ragged_segment_sum(values, offsets)
        assert out.tolist() == [[0, 0], [2, 4], [0, 0], [4, 5]]

    def test_rowwise_picks_is_module_function(self):
        cdf = np.array([[0.5, 1.0]])
        draws = np.array([[0.4, 0.6]])
        assert np.array_equal(
            NUMPY_KERNELS.rowwise_weighted_picks(cdf, draws),
            rowwise_weighted_picks(cdf, draws),
        )


needs_numba = pytest.mark.skipif(
    not compiled_available(), reason="numba not installed"
)


@needs_numba
class TestCompiledParity:
    """The compiled tier must match the reference tier bit for bit."""

    def setup_method(self):
        self.compiled = get_kernels("compiled")
        self.rng = np.random.default_rng(0)

    def test_rowwise_weighted_picks_parity(self):
        for k, d, m in ((1, 1, 1), (4, 3, 8), (16, 9, 5)):
            weights = self.rng.random((k, d))
            weights[self.rng.random((k, d)) < 0.3] = 0.0
            weights[:, 0] += 1e-9  # keep every row's sum positive
            cdf = np.cumsum(
                weights / weights.sum(axis=1, keepdims=True), axis=1
            )
            draws = self.rng.random((k, m))
            # Include exact plateau hits alongside ordinary draws.
            draws[:, 0] = cdf[:, -1]
            assert np.array_equal(
                self.compiled.rowwise_weighted_picks(cdf, draws),
                NumpyKernels.rowwise_weighted_picks(cdf, draws),
            )

    def test_gather_rows_parity(self):
        values = self.rng.integers(0, 1000, size=64)
        starts = self.rng.integers(0, 60, size=12)
        assert np.array_equal(
            self.compiled.gather_rows(values, starts, 4),
            NumpyKernels.gather_rows(values, starts, 4),
        )

    def test_take_picks_parity(self):
        matrix = self.rng.integers(0, 100, size=(6, 5))
        picks = self.rng.integers(0, 5, size=(6, 9))
        assert np.array_equal(
            self.compiled.take_picks(matrix, picks),
            NumpyKernels.take_picks(matrix, picks),
        )

    def test_segment_sum_parity(self):
        values = self.rng.random((20, 3))
        ids = self.rng.integers(0, 7, size=20)
        assert np.array_equal(
            self.compiled.segment_sum(values, ids, 7),
            NumpyKernels.segment_sum(values, ids, 7),
        )

    def test_ragged_segment_sum_parity(self):
        values = self.rng.random((10, 2))
        offsets = np.array([0, 0, 3, 3, 7, 10])
        assert np.array_equal(
            self.compiled.ragged_segment_sum(values, offsets),
            NumpyKernels.ragged_segment_sum(values, offsets),
        )

    def test_selectors_parity_end_to_end(self):
        from repro.framework.selectors import (
            select_streaming_weighted_bucket,
            select_uniform_bucket,
            select_weighted_bucket,
        )

        matrix = self.rng.integers(0, 500, size=(8, 6))
        weights = self.rng.random((8, 6))
        for select, kwargs in (
            (select_uniform_bucket, {}),
            (select_weighted_bucket, {"weights": weights}),
            (select_streaming_weighted_bucket, {"weights": weights}),
        ):
            out_np = select(
                matrix, 5, np.random.default_rng(7), kernels="numpy", **kwargs
            )
            out_c = select(
                matrix, 5, np.random.default_rng(7), kernels="compiled",
                **kwargs
            )
            assert np.array_equal(out_np, out_c)
