"""Tests for repro.gnn.layers, including gradient checks."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gnn.layers import (
    Dense,
    MaxPoolAggregator,
    MeanAggregator,
    SageLayer,
    relu,
    relu_grad,
)


def numerical_gradient(f, x, eps=1e-4):
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = f()
        flat[i] = original - eps
        minus = f()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


class TestActivations:
    def test_relu(self):
        assert relu(np.array([-1.0, 0.0, 2.0])).tolist() == [0.0, 0.0, 2.0]

    def test_relu_grad(self):
        assert relu_grad(np.array([-1.0, 0.5])).tolist() == [0.0, 1.0]


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, seed=0)
        out = layer.forward(np.zeros((5, 4), dtype=np.float32))
        assert out.shape == (5, 3)

    def test_linear_forward_value(self):
        layer = Dense(2, 2, activation="linear", seed=0)
        layer.weight = np.eye(2, dtype=np.float32)
        layer.bias = np.array([1.0, -1.0], dtype=np.float32)
        out = layer.forward(np.array([[2.0, 3.0]], dtype=np.float32))
        assert out.tolist() == [[3.0, 2.0]]

    def test_weight_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 2, activation="relu", seed=1)
        x = rng.standard_normal((4, 3)).astype(np.float32)
        target = rng.standard_normal((4, 2)).astype(np.float32)

        def loss():
            out = layer.forward(x)
            return float(0.5 * np.sum((out - target) ** 2))

        out = layer.forward(x)
        layer.zero_grad()
        layer.backward(out - target)
        numeric = numerical_gradient(loss, layer.weight)
        assert np.allclose(layer.grad_weight, numeric, atol=1e-2)

    def test_input_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, activation="relu", seed=2)
        x = rng.standard_normal((2, 3)).astype(np.float32)
        target = rng.standard_normal((2, 2)).astype(np.float32)

        def loss():
            return float(0.5 * np.sum((layer.forward(x) - target) ** 2))

        out = layer.forward(x)
        grad_x = layer.backward(out - target)
        numeric = numerical_gradient(loss, x)
        assert np.allclose(grad_x, numeric, atol=1e-2)

    def test_step_applies_and_resets(self):
        layer = Dense(2, 2, seed=0)
        layer.grad_weight = np.ones_like(layer.weight)
        before = layer.weight.copy()
        layer.step(0.1)
        assert np.allclose(layer.weight, before - 0.1)
        assert np.allclose(layer.grad_weight, 0)

    def test_3d_input(self):
        layer = Dense(4, 3, seed=0)
        out = layer.forward(np.zeros((2, 5, 4), dtype=np.float32))
        assert out.shape == (2, 5, 3)
        grad = layer.backward(np.ones((2, 5, 3), dtype=np.float32))
        assert grad.shape == (2, 5, 4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Dense(0, 2)
        with pytest.raises(ConfigurationError):
            Dense(2, 2, activation="tanh")


class TestAggregators:
    def test_mean_forward(self):
        agg = MeanAggregator()
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])  # (1,1,2,2)
        assert agg.forward(x).tolist() == [[[2.0, 3.0]]]

    def test_mean_backward_spreads(self):
        agg = MeanAggregator()
        x = np.ones((1, 1, 4, 2))
        agg.forward(x)
        grad = agg.backward(np.ones((1, 1, 2)))
        assert grad.shape == x.shape
        assert np.allclose(grad, 0.25)

    def test_max_forward(self):
        agg = MaxPoolAggregator()
        x = np.array([[[[1.0, 5.0], [3.0, 4.0]]]])
        assert agg.forward(x).tolist() == [[[3.0, 5.0]]]

    def test_max_backward_routes_to_argmax(self):
        agg = MaxPoolAggregator()
        x = np.array([[[[1.0, 5.0], [3.0, 4.0]]]])
        agg.forward(x)
        grad = agg.backward(np.array([[[1.0, 1.0]]]))
        assert grad.tolist() == [[[[0.0, 1.0], [1.0, 0.0]]]]

    def test_max_backward_ties_pick_first(self):
        agg = MaxPoolAggregator()
        x = np.array([[[[2.0], [2.0]]]])
        agg.forward(x)
        grad = agg.backward(np.array([[[1.0]]]))
        assert grad.reshape(-1).tolist() == [1.0, 0.0]


class TestSageLayer:
    def test_forward_shape(self):
        layer = SageLayer(6, 4, seed=0)
        self_feats = np.zeros((2, 3, 6), dtype=np.float32)
        neighbor_feats = np.zeros((2, 3, 5, 6), dtype=np.float32)
        out = layer.forward(self_feats, neighbor_feats)
        assert out.shape == (2, 3, 4)

    def test_output_is_normalized(self):
        rng = np.random.default_rng(0)
        layer = SageLayer(6, 4, seed=0)
        out = layer.forward(
            rng.standard_normal((2, 3, 6)).astype(np.float32),
            rng.standard_normal((2, 3, 5, 6)).astype(np.float32),
        )
        norms = np.linalg.norm(out, axis=-1)
        assert np.all((norms < 1.0 + 1e-5) & ((norms > 0.99) | (norms < 1e-6)))

    def test_backward_shapes(self):
        rng = np.random.default_rng(0)
        layer = SageLayer(6, 4, aggregator="mean", seed=0)
        self_feats = rng.standard_normal((2, 3, 6)).astype(np.float32)
        neighbor_feats = rng.standard_normal((2, 3, 5, 6)).astype(np.float32)
        out = layer.forward(self_feats, neighbor_feats)
        grad_self, grad_neighbors = layer.backward(np.ones_like(out))
        assert grad_self.shape == self_feats.shape
        assert grad_neighbors.shape == neighbor_feats.shape

    def test_input_gradient_numerical(self):
        rng = np.random.default_rng(3)
        layer = SageLayer(3, 2, aggregator="mean", normalize=False, seed=1)
        self_feats = rng.standard_normal((1, 1, 3)).astype(np.float32)
        neighbor_feats = rng.standard_normal((1, 1, 2, 3)).astype(np.float32)

        def loss():
            return float(layer.forward(self_feats, neighbor_feats).sum())

        layer.forward(self_feats, neighbor_feats)
        grad_self, _ = layer.backward(
            np.ones((1, 1, 2), dtype=np.float32)
        )
        numeric = numerical_gradient(loss, self_feats)
        assert np.allclose(grad_self, numeric, atol=1e-2)

    def test_unknown_aggregator(self):
        with pytest.raises(ConfigurationError):
            SageLayer(4, 4, aggregator="median")
