"""Tests for repro.memstore.outstanding (Equation 3, Figure 2e)."""

import pytest

from repro.errors import ConfigurationError
from repro.memstore.links import get_link
from repro.memstore.outstanding import (
    achieved_bandwidth,
    mean_request_bytes,
    outstanding_for_link,
    outstanding_requests_needed,
    outstanding_table,
)
from repro.units import GB


MIX = {16: 0.5, 64: 0.3, 512: 0.2}


class TestMeanRequest:
    def test_weighted_mean(self):
        assert mean_request_bytes({8: 0.5, 24: 0.5}) == 16

    def test_unnormalized_probabilities(self):
        assert mean_request_bytes({8: 1, 24: 1}) == 16

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            mean_request_bytes({})

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigurationError):
            mean_request_bytes({0: 1.0})

    def test_rejects_negative_probability(self):
        with pytest.raises(ConfigurationError):
            mean_request_bytes({8: -1.0})

    def test_rejects_zero_mass(self):
        with pytest.raises(ConfigurationError):
            mean_request_bytes({8: 0.0})


class TestEquation3:
    def test_littles_law(self):
        # O = B / mean * L: 16GB/s of 64B requests at 1us -> 250 reqs
        needed = outstanding_requests_needed(16e9, 1e-6, {64: 1.0})
        assert needed == pytest.approx(250.0)

    def test_longer_latency_needs_more(self):
        """Figure 2(e): remote DRAM needs far more outstanding requests
        than local DRAM at the same bandwidth target."""
        local = get_link("local_dram")
        remote = get_link("rdma_remote_dram")
        o_local = outstanding_requests_needed(16 * GB, local.latency(64), MIX)
        o_remote = outstanding_requests_needed(16 * GB, remote.latency(64), MIX)
        assert o_remote > 10 * o_local

    def test_scales_linearly_with_bandwidth(self):
        low = outstanding_requests_needed(16e9, 1e-6, MIX)
        high = outstanding_requests_needed(200e9, 1e-6, MIX)
        assert high / low == pytest.approx(200 / 16)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            outstanding_requests_needed(0, 1e-6, MIX)
        with pytest.raises(ConfigurationError):
            outstanding_requests_needed(1e9, 0, MIX)


class TestHelpers:
    def test_outstanding_for_link_default_peak(self):
        link = get_link("pcie_host_dram")
        needed = outstanding_for_link(link, MIX)
        assert needed > 0

    def test_outstanding_for_link_target(self):
        link = get_link("pcie_host_dram")
        half = outstanding_for_link(link, MIX, target_bandwidth=link.peak_bandwidth / 2)
        full = outstanding_for_link(link, MIX)
        assert half == pytest.approx(full / 2)

    def test_achieved_bandwidth_saturates(self):
        link = get_link("local_dram")
        low = achieved_bandwidth(link, MIX, 1)
        high = achieved_bandwidth(link, MIX, 10_000)
        assert high > low
        assert high <= link.peak_bandwidth

    def test_outstanding_table_shape(self):
        links = [get_link("local_dram"), get_link("rdma_remote_dram")]
        targets = [16 * GB, 100 * GB, 200 * GB]
        table = outstanding_table(links, targets, MIX)
        assert set(table) == {"local_dram", "rdma_remote_dram"}
        for row in table.values():
            assert set(row) == set(targets)
            # Figure 2(e): monotone in the bandwidth target.
            values = [row[t] for t in targets]
            assert values == sorted(values)
