"""Tests for repro.axe.scoreboard."""

import pytest

from repro.axe.scoreboard import OrderingScoreboard
from repro.errors import CapacityError, SimulationError


class TestOrderingScoreboard:
    def test_in_order_release(self):
        board = OrderingScoreboard(4)
        a = board.allocate()
        b = board.allocate()
        board.complete(b, "b")
        assert board.release_ready() == []  # a still pending
        board.complete(a, "a")
        assert board.release_ready() == ["a", "b"]

    def test_release_prefix_only(self):
        board = OrderingScoreboard(4)
        ids = [board.allocate() for _ in range(3)]
        board.complete(ids[0], 0)
        board.complete(ids[2], 2)
        assert board.release_ready() == [0]
        board.complete(ids[1], 1)
        assert board.release_ready() == [1, 2]

    def test_capacity_enforced(self):
        board = OrderingScoreboard(2)
        board.allocate()
        board.allocate()
        assert board.full
        with pytest.raises(CapacityError):
            board.allocate()

    def test_slots_free_after_release(self):
        board = OrderingScoreboard(1)
        entry = board.allocate()
        board.complete(entry, None)
        board.release_ready()
        board.allocate()  # must not raise

    def test_double_complete_rejected(self):
        board = OrderingScoreboard(2)
        entry = board.allocate()
        board.complete(entry, None)
        with pytest.raises(SimulationError):
            board.complete(entry, None)

    def test_unknown_entry_rejected(self):
        board = OrderingScoreboard(2)
        with pytest.raises(SimulationError):
            board.complete(99, None)

    def test_max_occupancy_tracked(self):
        board = OrderingScoreboard(8)
        ids = [board.allocate() for _ in range(5)]
        for entry in ids:
            board.complete(entry, None)
        board.release_ready()
        assert board.max_occupancy == 5

    def test_occupancy(self):
        board = OrderingScoreboard(3)
        board.allocate()
        assert board.occupancy == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(CapacityError):
            OrderingScoreboard(0)
