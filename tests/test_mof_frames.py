"""Tests for repro.mof.frames (Table 5)."""

import pytest

from repro.errors import ConfigurationError
from repro.mof.frames import (
    GENZ,
    MOF,
    FrameFormat,
    batch_breakdown,
    packing_gain,
)


class TestFrameFormat:
    def test_frames_for(self):
        assert GENZ.frames_for(128) == 32
        assert MOF.frames_for(128) == 2

    def test_frames_for_remainder(self):
        assert MOF.frames_for(65) == 2
        assert GENZ.frames_for(5) == 2

    def test_frames_for_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            MOF.frames_for(0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FrameFormat("x", header_bytes=-1, addr_bytes=4, requests_per_frame=4)
        with pytest.raises(ConfigurationError):
            FrameFormat("x", header_bytes=4, addr_bytes=0, requests_per_frame=4)
        with pytest.raises(ConfigurationError):
            FrameFormat("x", header_bytes=4, addr_bytes=4, requests_per_frame=0)


class TestTable5:
    """Table 5 reproduction: 128 requests of 16B / 64B."""

    def test_genz_16b_row(self):
        row = batch_breakdown(GENZ, 128, 16)
        assert row.frames == 64
        assert row.header_fraction == pytest.approx(0.5102, abs=0.01)
        assert row.data_utilization == pytest.approx(0.3265, abs=0.01)

    def test_genz_64b_row(self):
        row = batch_breakdown(GENZ, 128, 64)
        assert row.frames == 64
        assert row.header_fraction == pytest.approx(0.2577, abs=0.005)
        assert row.addr_fraction == pytest.approx(0.0825, abs=0.005)
        assert row.data_utilization == pytest.approx(0.6598, abs=0.005)

    def test_mof_16b_row(self):
        row = batch_breakdown(MOF, 128, 16)
        assert row.frames == 4
        assert row.addr_fraction == pytest.approx(0.1953, abs=0.02)
        assert row.data_utilization == pytest.approx(0.7811, abs=0.03)

    def test_mof_64b_row(self):
        row = batch_breakdown(MOF, 128, 64)
        assert row.data_utilization == pytest.approx(0.9403, abs=0.02)
        assert row.addr_fraction == pytest.approx(0.0588, abs=0.005)

    def test_mof_beats_genz_at_all_sizes(self):
        for size in (8, 16, 32, 64, 128):
            assert packing_gain(128, size) > 1.0

    def test_gain_larger_for_small_requests(self):
        """The paper: the advantage is more obvious for small data."""
        assert packing_gain(128, 16) > packing_gain(128, 64)

    def test_total_is_consistent(self):
        row = batch_breakdown(MOF, 128, 64)
        assert row.total_bytes == row.header_bytes + row.addr_bytes + row.data_bytes
        assert (
            row.header_fraction + row.addr_fraction + row.data_utilization
            == pytest.approx(1.0)
        )


class TestCompressionOverrides:
    def test_compressed_data_reduces_total(self):
        raw = batch_breakdown(MOF, 128, 8)
        squeezed = batch_breakdown(MOF, 128, 8, compressed_data_bytes=300)
        assert squeezed.total_bytes < raw.total_bytes

    def test_compressed_addr_reduces_total(self):
        raw = batch_breakdown(MOF, 128, 8)
        squeezed = batch_breakdown(MOF, 128, 8, compressed_addr_bytes=200)
        assert squeezed.total_bytes < raw.total_bytes

    def test_rejects_negative_compressed(self):
        with pytest.raises(ConfigurationError):
            batch_breakdown(MOF, 128, 8, compressed_data_bytes=-1)

    def test_rejects_bad_request_bytes(self):
        with pytest.raises(ConfigurationError):
            batch_breakdown(MOF, 128, 0)
