"""Tests for repro.framework.selectors (uniform vs streaming, Tech-2)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.framework.selectors import (
    SELECTORS,
    get_selector,
    select_streaming,
    select_uniform,
)


class TestUniform:
    def test_samples_from_input(self):
        rng = np.random.default_rng(0)
        neighbors = np.array([5, 7, 9])
        picks = select_uniform(neighbors, 10, rng)
        assert len(picks) == 10
        assert set(picks.tolist()) <= {5, 7, 9}

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            select_uniform(np.array([]), 3, np.random.default_rng(0))

    def test_rejects_bad_fanout(self):
        with pytest.raises(ConfigurationError):
            select_uniform(np.array([1]), 0, np.random.default_rng(0))


class TestStreaming:
    def test_samples_from_input(self):
        rng = np.random.default_rng(0)
        neighbors = np.arange(100, 130)
        picks = select_streaming(neighbors, 10, rng)
        assert len(picks) == 10
        assert set(picks.tolist()) <= set(neighbors.tolist())

    def test_one_pick_per_group(self):
        """Each of the K picks must come from its contiguous group."""
        rng = np.random.default_rng(1)
        n, k = 40, 4
        neighbors = np.arange(n)
        picks = select_streaming(neighbors, k, rng)
        for group, pick in enumerate(picks):
            assert group * n // k <= pick < (group + 1) * n // k

    def test_small_list_wraps(self):
        rng = np.random.default_rng(2)
        picks = select_streaming(np.array([3, 4]), 6, rng)
        assert len(picks) == 6
        assert set(picks.tolist()) <= {3, 4}

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            select_streaming(np.array([]), 3, np.random.default_rng(0))

    def test_near_uniform_marginals(self):
        """The paper's accuracy-parity claim rests on step-based sampling
        being statistically close to uniform: every element's selection
        probability is K/N exactly when K divides N."""
        rng = np.random.default_rng(3)
        n, k, trials = 20, 4, 6000
        counts = np.zeros(n)
        for _ in range(trials):
            picks = select_streaming(np.arange(n), k, rng)
            counts[picks] += 1
        expected = trials * k / n
        # Chi-square-ish tolerance: all within 15% of expectation.
        assert (np.abs(counts - expected) / expected < 0.15).all()

    def test_streaming_covers_distinct_groups(self):
        """Unlike uniform-with-replacement, streaming never picks twice
        from the same group — it has provably better spread."""
        rng = np.random.default_rng(4)
        n, k = 100, 10
        picks = select_streaming(np.arange(n), k, rng)
        groups = picks // (n // k)
        assert len(set(groups.tolist())) == k


class TestRegistry:
    def test_get_selector(self):
        assert get_selector("uniform") is select_uniform
        assert get_selector("streaming") is select_streaming

    def test_registry_complete(self):
        assert set(SELECTORS) == {
            "uniform",
            "streaming",
            "weighted",
            "streaming_weighted",
        }

    def test_unknown_selector(self):
        with pytest.raises(ConfigurationError):
            get_selector("sorted")
