"""Tests for repro.framework.selectors (uniform vs streaming, Tech-2)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.framework.selectors import (
    SELECTORS,
    _rowwise_weighted_picks,
    get_selector,
    select_streaming,
    select_streaming_bucket,
    select_streaming_weighted_bucket,
    select_uniform,
    select_uniform_bucket,
    select_weighted_bucket,
)


class TestUniform:
    def test_samples_from_input(self):
        rng = np.random.default_rng(0)
        neighbors = np.array([5, 7, 9])
        picks = select_uniform(neighbors, 10, rng)
        assert len(picks) == 10
        assert set(picks.tolist()) <= {5, 7, 9}

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            select_uniform(np.array([]), 3, np.random.default_rng(0))

    def test_rejects_bad_fanout(self):
        with pytest.raises(ConfigurationError):
            select_uniform(np.array([1]), 0, np.random.default_rng(0))


class TestStreaming:
    def test_samples_from_input(self):
        rng = np.random.default_rng(0)
        neighbors = np.arange(100, 130)
        picks = select_streaming(neighbors, 10, rng)
        assert len(picks) == 10
        assert set(picks.tolist()) <= set(neighbors.tolist())

    def test_one_pick_per_group(self):
        """Each of the K picks must come from its contiguous group."""
        rng = np.random.default_rng(1)
        n, k = 40, 4
        neighbors = np.arange(n)
        picks = select_streaming(neighbors, k, rng)
        for group, pick in enumerate(picks):
            assert group * n // k <= pick < (group + 1) * n // k

    def test_small_list_wraps(self):
        rng = np.random.default_rng(2)
        picks = select_streaming(np.array([3, 4]), 6, rng)
        assert len(picks) == 6
        assert set(picks.tolist()) <= {3, 4}

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            select_streaming(np.array([]), 3, np.random.default_rng(0))

    def test_near_uniform_marginals(self):
        """The paper's accuracy-parity claim rests on step-based sampling
        being statistically close to uniform: every element's selection
        probability is K/N exactly when K divides N."""
        rng = np.random.default_rng(3)
        n, k, trials = 20, 4, 6000
        counts = np.zeros(n)
        for _ in range(trials):
            picks = select_streaming(np.arange(n), k, rng)
            counts[picks] += 1
        expected = trials * k / n
        # Chi-square-ish tolerance: all within 15% of expectation.
        assert (np.abs(counts - expected) / expected < 0.15).all()

    def test_streaming_covers_distinct_groups(self):
        """Unlike uniform-with-replacement, streaming never picks twice
        from the same group — it has provably better spread."""
        rng = np.random.default_rng(4)
        n, k = 100, 10
        picks = select_streaming(np.arange(n), k, rng)
        groups = picks // (n // k)
        assert len(set(groups.tolist())) == k


class TestRegistry:
    def test_get_selector(self):
        assert get_selector("uniform") is select_uniform
        assert get_selector("streaming") is select_streaming

    def test_registry_complete(self):
        assert set(SELECTORS) == {
            "uniform",
            "streaming",
            "weighted",
            "streaming_weighted",
        }

    def test_unknown_selector(self):
        with pytest.raises(ConfigurationError):
            get_selector("sorted")


class _PlateauRng:
    """Stub RNG whose uniforms land exactly on the CDF's final plateau."""

    def random(self, shape):
        return np.ones(shape, dtype=np.float64)


class TestRowwiseWeightedPicksBoundary:
    """Regression: a draw on a trailing zero-weight plateau must never
    select a zero-weight entry (the old ``side="right"`` + clip-to-d-1
    resolved it to the last column regardless of its weight)."""

    @staticmethod
    def _cdf(weights):
        weights = np.asarray(weights, dtype=np.float64)
        return np.cumsum(weights / weights.sum(axis=1, keepdims=True), axis=1)

    def test_trailing_zero_weights_unpickable(self):
        cdf = self._cdf([[1.0, 0.0, 0.0]])
        picks = _rowwise_weighted_picks(cdf, np.array([[1.0]]))
        assert picks.tolist() == [[0]]

    def test_partial_trailing_zero_run(self):
        cdf = self._cdf([[1.0, 1.0, 1.0, 0.0]])
        picks = _rowwise_weighted_picks(cdf, np.array([[1.0]]))
        # cdf == [1/3, 2/3, 1, 1]: the plateau draw resolves to the
        # entry that completed the mass, not the zero-weight tail.
        assert picks.tolist() == [[2]]

    def test_interior_plateau_still_skipped(self):
        cdf = self._cdf([[1.0, 0.0, 1.0]])
        # cdf == [0.5, 0.5, 1]; a draw exactly on the interior plateau
        # must resolve past it (side="right"), never to the zero column.
        picks = _rowwise_weighted_picks(cdf, np.array([[0.5]]))
        assert picks.tolist() == [[2]]

    def test_rows_clamp_independently(self):
        cdf = self._cdf([[1.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        picks = _rowwise_weighted_picks(cdf, np.full((2, 2), 1.0))
        assert picks[0].tolist() == [0, 0]
        assert picks[1].tolist() == [2, 2]

    def test_in_range_draws_unaffected(self):
        cdf = self._cdf([[1.0, 2.0, 1.0]])
        draws = np.array([[0.0, 0.2, 0.5, 0.7, 0.99]])
        picks = _rowwise_weighted_picks(cdf, draws)
        assert picks.tolist() == [[0, 0, 1, 1, 2]]

    def test_end_to_end_bucket_never_picks_zero_weight(self):
        matrix = np.array([[10, 11, 12]])
        weights = np.array([[1.0, 0.0, 0.0]])
        out = select_weighted_bucket(matrix, 4, _PlateauRng(), weights=weights)
        assert out.tolist() == [[10, 10, 10, 10]]

    def test_statistical_zero_weight_exclusion(self):
        rng = np.random.default_rng(0)
        matrix = np.tile(np.array([[10, 11, 12]]), (8, 1))
        weights = np.tile(np.array([[1.0, 1.0, 0.0]]), (8, 1))
        for _ in range(50):
            out = select_weighted_bucket(matrix, 16, rng, weights=weights)
            assert not (out == 12).any()


class TestBucketEdgeCases:
    def test_fanout_exceeds_bucket_width(self):
        rng = np.random.default_rng(0)
        matrix = np.array([[7, 8], [9, 10]])
        for select in (select_uniform_bucket, select_streaming_bucket):
            out = select(matrix, 5, rng)
            assert out.shape == (2, 5)
            assert set(out[0].tolist()) <= {7, 8}
            assert set(out[1].tolist()) <= {9, 10}

    def test_fanout_exceeds_width_weighted(self):
        rng = np.random.default_rng(1)
        matrix = np.array([[7, 8]])
        weights = np.array([[3.0, 1.0]])
        for select in (
            select_weighted_bucket,
            select_streaming_weighted_bucket,
        ):
            out = select(matrix, 6, rng, weights=weights)
            assert out.shape == (1, 6)
            assert set(out[0].tolist()) <= {7, 8}

    def test_single_column_bucket(self):
        rng = np.random.default_rng(2)
        matrix = np.array([[4], [5], [6]])
        weights = np.ones((3, 1))
        for out in (
            select_uniform_bucket(matrix, 3, rng),
            select_streaming_bucket(matrix, 3, rng),
            select_weighted_bucket(matrix, 3, rng, weights=weights),
            select_streaming_weighted_bucket(matrix, 3, rng, weights=weights),
        ):
            assert out.tolist() == [[4] * 3, [5] * 3, [6] * 3]

    def test_all_equal_weights_near_uniform(self):
        rng = np.random.default_rng(3)
        matrix = np.tile(np.arange(4), (64, 1))
        weights = np.full((64, 4), 2.5)
        counts = np.zeros(4)
        for _ in range(40):
            out = select_weighted_bucket(matrix, 8, rng, weights=weights)
            counts += np.bincount(out.ravel(), minlength=4)
        expected = counts.sum() / 4
        assert (np.abs(counts - expected) / expected < 0.1).all()

    def test_one_hot_weights_deterministic(self):
        rng = np.random.default_rng(4)
        matrix = np.tile(np.arange(100, 105), (3, 1))
        weights = np.zeros((3, 5))
        weights[0, 4] = 1.0  # one-hot on the last column
        weights[1, 0] = 1.0
        weights[2, 2] = 1.0
        out = select_weighted_bucket(matrix, 7, rng, weights=weights)
        assert out[0].tolist() == [104] * 7
        assert out[1].tolist() == [100] * 7
        assert out[2].tolist() == [102] * 7
        # Streaming: one group == whole row, so one-hot is deterministic
        # there too (smaller groups that miss the hot column fall back
        # to uniform within the group, like the scalar selector).
        out = select_streaming_weighted_bucket(matrix, 1, rng, weights=weights)
        assert out.tolist() == [[104], [100], [102]]

    def test_bucket_weight_validation(self):
        rng = np.random.default_rng(0)
        matrix = np.ones((2, 3), dtype=np.int64)
        with pytest.raises(ConfigurationError):
            select_weighted_bucket(
                matrix, 2, rng, weights=np.ones((2, 2))
            )
        with pytest.raises(ConfigurationError):
            select_weighted_bucket(
                matrix, 2, rng, weights=np.zeros((2, 3))
            )

    def test_rejects_non_matrix(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            select_uniform_bucket(np.arange(3), 2, rng)
        with pytest.raises(ConfigurationError):
            select_streaming_bucket(np.empty((2, 0)), 2, rng)
