"""Tests for repro.axe.system (multi-card PoC simulation)."""

import numpy as np
import pytest

from repro.axe.core import CoreConfig
from repro.axe.events import Simulator
from repro.axe.loadunit import MemoryChannel
from repro.axe.system import MultiCardSystem, PathChannel, SystemConfig
from repro.errors import ConfigurationError
from repro.graph.generators import power_law_graph
from repro.memstore.links import LinkModel
from repro.mof.topology import full_mesh, ring


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(4000, 8.0, attr_len=16, seed=0)


class TestPathChannel:
    def test_legs_traversed_in_order(self):
        sim = Simulator()
        fast = MemoryChannel(sim, LinkModel("fast", 1e-6, 1e12))
        slow = MemoryChannel(sim, LinkModel("slow", 5e-6, 1e12))
        done = []
        PathChannel([fast, slow]).request(64, lambda: done.append(sim.now))
        sim.run()
        assert done[0] >= 6e-6  # both latencies paid

    def test_single_leg(self):
        sim = Simulator()
        channel = MemoryChannel(sim, LinkModel("x", 1e-6, 1e12))
        done = []
        PathChannel([channel]).request(64, lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigurationError):
            PathChannel([])


class TestMultiCardSystem:
    def test_batch_completes(self, graph):
        system = MultiCardSystem(graph, SystemConfig(num_cards=4))
        stats = system.run_batch(np.arange(64))
        assert stats.roots == 64
        assert sum(stats.per_card_roots) == 64
        assert stats.elapsed_s > 0

    def test_remote_traffic_crosses_fabric(self, graph):
        system = MultiCardSystem(graph, SystemConfig(num_cards=4))
        stats = system.run_batch(np.arange(64))
        assert stats.remote_requests > 0
        assert sum(stats.fabric_bytes.values()) > 0

    def test_remote_fraction_near_three_quarters(self, graph):
        """Hash partitioning over 4 cards: ~75% of node touches remote."""
        system = MultiCardSystem(graph, SystemConfig(num_cards=4))
        stats = system.run_batch(np.arange(128))
        assert 0.6 < stats.remote_fraction < 0.9

    def test_single_card_no_fabric(self, graph):
        system = MultiCardSystem(graph, SystemConfig(num_cards=1))
        stats = system.run_batch(np.arange(32))
        assert stats.remote_requests == 0
        assert not stats.fabric_bytes or sum(stats.fabric_bytes.values()) == 0

    def test_four_cards_beat_one(self, graph):
        """Scaling out: 4 cards sample the same batch faster than 1,
        despite ~75% of accesses crossing the fabric."""
        one = MultiCardSystem(
            graph, SystemConfig(num_cards=1, output_link=None)
        ).run_batch(np.arange(96))
        four = MultiCardSystem(
            graph, SystemConfig(num_cards=4, output_link=None)
        ).run_batch(np.arange(96))
        assert four.elapsed_s < one.elapsed_s
        assert four.roots_per_second > 2 * one.roots_per_second

    def test_mesh_beats_ring(self, graph):
        """The PoC's full-mesh DAC fabric outperforms a ring with the
        same per-link bandwidth (multi-hop forwarding doubles load)."""
        config = SystemConfig(num_cards=4, output_link=None)
        mesh_stats = MultiCardSystem(graph, config, topology=full_mesh(4)).run_batch(
            np.arange(96)
        )
        ring_stats = MultiCardSystem(graph, config, topology=ring(4)).run_batch(
            np.arange(96)
        )
        assert mesh_stats.elapsed_s <= ring_stats.elapsed_s

    def test_fabric_load_balanced_on_mesh(self, graph):
        system = MultiCardSystem(graph, SystemConfig(num_cards=4))
        stats = system.run_batch(np.arange(256))
        volumes = np.array(list(stats.fabric_bytes.values()), dtype=float)
        assert volumes.min() > 0.3 * volumes.mean()

    def test_deterministic(self, graph):
        config = SystemConfig(num_cards=2, seed=7)
        a = MultiCardSystem(graph, config).run_batch(np.arange(32))
        b = MultiCardSystem(graph, config).run_batch(np.arange(32))
        assert a.elapsed_s == b.elapsed_s

    def test_validation(self, graph):
        with pytest.raises(ConfigurationError):
            SystemConfig(num_cards=0)
        with pytest.raises(ConfigurationError):
            MultiCardSystem(graph, SystemConfig(num_cards=3), topology=full_mesh(4))
        system = MultiCardSystem(graph, SystemConfig(num_cards=2))
        with pytest.raises(ConfigurationError):
            system.run_batch(np.array([], dtype=np.int64))
