"""Tests for repro.perfmodel.poc (Figures 14/15)."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.datasets import instantiate_dataset
from repro.perfmodel.poc import (
    POC_SWEEP,
    PocConfigPoint,
    build_poc_engine,
    geomean_equivalence,
    poc_vcpu_equivalence,
    validate_model,
)


@pytest.fixture(scope="module")
def graph():
    return instantiate_dataset("ls", max_nodes=8000, seed=0)


class TestSweepDefinition:
    def test_sweep_covers_figure15_axes(self):
        assert len(POC_SWEEP) == 4 * 2 * 3  # memory x nodes x cores
        labels = {point.label for point in POC_SWEEP}
        assert "pcie/1n/1c" in labels
        assert "4-chn/4n/4c" in labels

    def test_point_validation(self):
        with pytest.raises(ConfigurationError):
            PocConfigPoint(1, "hbm", 1)
        with pytest.raises(ConfigurationError):
            PocConfigPoint(0, "pcie", 1)


class TestValidation:
    def test_model_tracks_measurement(self, graph):
        """Figure 15: the analytical model stays within a reasonable
        band of the event-simulated measurement on every point."""
        points = [
            PocConfigPoint(1, "pcie", 1),
            PocConfigPoint(2, "4-chn", 1),
            PocConfigPoint(2, "4-chn", 4),
            PocConfigPoint(4, "2-chn", 4),
        ]
        rows = validate_model(graph, points, batch_size=48)
        for row in rows:
            assert row.error < 0.35

    def test_mean_error_small(self, graph):
        points = [PocConfigPoint(c, "4-chn", 1) for c in (1, 2, 4)]
        rows = validate_model(graph, points, batch_size=48)
        mean_error = sum(row.error for row in rows) / len(rows)
        assert mean_error < 0.25

    def test_unbounded_model_dominates(self, graph):
        """The no-PCIe-limit bars (right y-axis of Figure 15) are always
        at or above the bounded prediction."""
        rows = validate_model(graph, POC_SWEEP[:6], batch_size=32)
        for row in rows:
            assert row.modeled_unbounded_roots_per_s >= row.modeled_roots_per_s

    def test_most_configs_output_bottlenecked(self, graph):
        """§7.2: most PoC configurations are eventually bottlenecked by
        the PCIe output bandwidth."""
        points = [PocConfigPoint(c, m, 4) for c in (2, 4) for m in ("2-chn", "4-chn")]
        rows = validate_model(graph, points, batch_size=32)
        output_bound = sum(1 for row in rows if row.bottleneck == "output")
        assert output_bound >= len(rows) / 2


class TestBuildEngine:
    def test_pcie_config_single_channel(self, graph):
        engine = build_poc_engine(graph, PocConfigPoint(1, "pcie", 1))
        assert engine.config.num_local_channels == 1
        assert engine.config.remote_link is None

    def test_multinode_has_remote(self, graph):
        engine = build_poc_engine(graph, PocConfigPoint(1, "1-chn", 4))
        assert engine.config.remote_link is not None
        assert engine.config.num_fpga_nodes == 4

    def test_output_limit_toggle(self, graph):
        engine = build_poc_engine(
            graph, PocConfigPoint(1, "1-chn", 1), with_output_limit=False
        )
        assert engine.config.output_link is None


class TestFigure14:
    def test_equivalence_near_894(self):
        """The headline: one PoC FPGA ~ 894 vCPUs (geomean)."""
        rows = poc_vcpu_equivalence(max_nodes=6000, batch_size=64)
        assert len(rows) == 6
        geomean = geomean_equivalence(rows)
        assert 600 < geomean < 1300

    def test_each_dataset_beats_cpu_by_far(self):
        rows = poc_vcpu_equivalence(
            datasets=("ss", "ll"), max_nodes=6000, batch_size=64
        )
        for row in rows:
            assert row.vcpu_equivalence > 50

    def test_geomean_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            geomean_equivalence([])
