"""Tests for repro.riscv.qrch and repro.riscv.mmio (Table 7)."""

import pytest

from repro.errors import CapacityError, ConfigurationError, SimulationError
from repro.riscv.asm import assemble
from repro.riscv.cpu import RiscvCpu
from repro.riscv.mmio import MmioBus, MmioDevice
from repro.riscv.qrch import INTERACTION_COSTS, TABLE7, Qrch, QrchQueue


class TestQrchQueue:
    def test_push_service_pull(self):
        queue = QrchQueue("adder", lambda a, b: a + b)
        queue.push(2, 3)
        queue.service()
        value, _cycles = queue.pull()
        assert value == 5

    def test_fifo_order(self):
        queue = QrchQueue("echo", lambda a, b: a)
        queue.push(1, 0)
        queue.push(2, 0)
        queue.service()
        assert queue.pull()[0] == 1
        assert queue.pull()[0] == 2

    def test_none_result_no_response(self):
        queue = QrchQueue("sink", lambda a, b: None)
        queue.push(1, 2)
        queue.service()
        assert not queue.response_available
        assert queue.pull()[0] is None

    def test_depth_enforced(self):
        queue = QrchQueue("q", lambda a, b: a, depth=1)
        queue.push(1, 0)
        with pytest.raises(CapacityError):
            queue.push(2, 0)

    def test_result_truncated_to_32bit(self):
        queue = QrchQueue("big", lambda a, b: 2**40)
        queue.push(0, 0)
        queue.service()
        assert queue.pull()[0] == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QrchQueue("q", lambda a, b: a, depth=0)
        with pytest.raises(ConfigurationError):
            QrchQueue("q", lambda a, b: a, push_cycles=-1)


class TestQrchHub:
    def test_attach_and_roundtrip(self):
        hub = Qrch()
        hub.attach(3, QrchQueue("mul", lambda a, b: a * b))
        hub.push(3, 6, 7)
        value, _cycles = hub.pull(3)
        assert value == 42

    def test_duplicate_attach_rejected(self):
        hub = Qrch()
        hub.attach(1, QrchQueue("a", lambda a, b: a))
        with pytest.raises(ConfigurationError):
            hub.attach(1, QrchQueue("b", lambda a, b: b))

    def test_unknown_queue(self):
        with pytest.raises(ConfigurationError):
            Qrch().push(9, 0, 0)

    def test_index_bounds(self):
        with pytest.raises(ConfigurationError):
            Qrch().attach(128, QrchQueue("q", lambda a, b: a))

    def test_interaction_cycles_accumulate(self):
        hub = Qrch()
        hub.attach(0, QrchQueue("q", lambda a, b: a))
        hub.push(0, 1, 2)
        hub.pull(0)
        assert hub.interaction_cycles == 8  # 4 push + 4 pull


class TestTable7:
    def test_cost_ordering(self):
        """Table 7: ISA-ext (~1) < QRCH (~10) < MMIO (~100)."""
        assert (
            INTERACTION_COSTS["isa_ext"]
            < INTERACTION_COSTS["qrch"]
            < INTERACTION_COSTS["mmio"]
        )

    def test_qrch_order_of_magnitude(self):
        assert 5 <= INTERACTION_COSTS["qrch"] <= 20

    def test_table_rows(self):
        names = [row.name for row in TABLE7]
        assert names == ["mmio", "isa_ext", "qrch"]
        assert TABLE7[2].extensibility == "good"

    def test_measured_qrch_vs_mmio_on_cpu(self):
        """End-to-end: the same accelerator interaction costs ~10x more
        cycles via MMIO than via QRCH."""
        # QRCH version
        hub = Qrch()
        hub.attach(5, QrchQueue("inc", lambda a, b: a + 1))
        cpu_q = RiscvCpu(qrch=hub)
        cpu_q.load_program(
            assemble("addi x2, x0, 41\nqpush x0, x2, x0, 5\nqpull x4, 5\necall")
        )
        cpu_q.run()
        assert cpu_q.registers[4] == 42

        # MMIO version: write operand, read result (device computes on
        # write).
        state = {}
        device = MmioDevice(
            "inc",
            read_handler=lambda offset: state.get("value", 0) + 1,
            write_handler=lambda offset, value: state.__setitem__("value", value),
        )
        bus = MmioBus(access_cycles=100)
        bus.attach(0x4000_0000, 0x100, device)
        cpu_m = RiscvCpu(mmio=bus)
        cpu_m.load_program(
            assemble(
                "lui x1, 0x40000\naddi x2, x0, 41\nsw x2, 0(x1)\nlw x4, 0(x1)\necall"
            )
        )
        cpu_m.run()
        assert cpu_m.registers[4] == 42
        assert bus.interaction_cycles > 5 * hub.interaction_cycles


class TestMmio:
    def test_register_storage(self):
        device = MmioDevice("csr")
        device.write(4, 123)
        assert device.read(4) == 123
        assert device.read(8) == 0

    def test_bus_routing(self):
        bus = MmioBus()
        a, b = MmioDevice("a"), MmioDevice("b")
        bus.attach(0x1000, 0x100, a)
        bus.attach(0x2000, 0x100, b)
        bus.write(0x1004, 1)
        bus.write(0x2004, 2)
        assert bus.read(0x1004)[0] == 1
        assert bus.read(0x2004)[0] == 2

    def test_overlap_rejected(self):
        bus = MmioBus()
        bus.attach(0x1000, 0x100, MmioDevice("a"))
        with pytest.raises(ConfigurationError):
            bus.attach(0x1080, 0x100, MmioDevice("b"))

    def test_unmapped_access(self):
        with pytest.raises(SimulationError):
            MmioBus().read(0x9999)

    def test_access_cycles_charged(self):
        bus = MmioBus(access_cycles=100)
        bus.attach(0, 16, MmioDevice("d"))
        _value, cycles = bus.read(0)
        assert cycles == 100
        assert bus.interaction_cycles == 100

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MmioBus(access_cycles=0)
        bus = MmioBus()
        with pytest.raises(ConfigurationError):
            bus.attach(-1, 16, MmioDevice("d"))


class TestQrchBlockingPull:
    def test_pull_spins_until_data(self):
        """QPULL with an empty response queue re-executes until the
        accelerator produces data (here: second push fills it)."""
        hub = Qrch()
        produced = []

        def handler(a, b):
            produced.append(a)
            return a

        hub.attach(2, QrchQueue("q", handler))
        cpu = RiscvCpu(qrch=hub)
        cpu.load_program(
            assemble("addi x2, x0, 9\nqpush x0, x2, x0, 2\nqpull x4, 2\necall")
        )
        cpu.run()
        assert cpu.registers[4] == 9
