"""Tests for repro.framework.export (batch serialization)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.framework.export import batch_nbytes, load_batch, save_batch
from repro.framework.requests import SampleRequest, SampleResult
from repro.framework.sampler import MultiHopSampler
from repro.graph.generators import power_law_graph
from repro.graph.partition import HashPartitioner
from repro.memstore.store import PartitionedStore


@pytest.fixture
def sampled_batch():
    graph = power_law_graph(500, 6.0, attr_len=8, seed=0)
    store = PartitionedStore(graph, HashPartitioner(2))
    sampler = MultiHopSampler(store, seed=0)
    return sampler.sample(
        SampleRequest(roots=np.arange(16), fanouts=(5, 3))
    )


class TestRoundtrip:
    def test_layers_roundtrip(self, sampled_batch, tmp_path):
        path = tmp_path / "batch.npz"
        save_batch(sampled_batch, path)
        loaded = load_batch(path)
        assert len(loaded.layers) == len(sampled_batch.layers)
        for original, restored in zip(sampled_batch.layers, loaded.layers):
            assert np.array_equal(original, restored)

    def test_attributes_roundtrip(self, sampled_batch, tmp_path):
        path = tmp_path / "batch.npz"
        save_batch(sampled_batch, path)
        loaded = load_batch(path)
        assert loaded.attributes is not None
        for original, restored in zip(
            sampled_batch.attributes, loaded.attributes
        ):
            assert np.allclose(original, restored)

    def test_without_attributes(self, tmp_path):
        result = SampleResult(layers=[np.arange(4), np.arange(8).reshape(4, 2)])
        path = tmp_path / "ids.npz"
        save_batch(result, path)
        loaded = load_batch(path)
        assert loaded.attributes is None
        assert np.array_equal(loaded.layers[1], result.layers[1])

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_batch(tmp_path / "nope.npz")

    def test_empty_result_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_batch(SampleResult(), tmp_path / "x.npz")

    def test_misaligned_attributes_rejected(self, tmp_path):
        result = SampleResult(
            layers=[np.arange(4), np.arange(8).reshape(4, 2)],
            attributes=[np.zeros((4, 2))],
        )
        with pytest.raises(ConfigurationError):
            save_batch(result, tmp_path / "x.npz")


class TestBatchBytes:
    def test_batch_nbytes_counts_everything(self, sampled_batch):
        nbytes = batch_nbytes(sampled_batch)
        id_bytes = sum(layer.nbytes for layer in sampled_batch.layers)
        attr_bytes = sum(attr.nbytes for attr in sampled_batch.attributes)
        assert nbytes == id_bytes + attr_bytes

    def test_ids_only(self):
        result = SampleResult(layers=[np.arange(4, dtype=np.int64)])
        assert batch_nbytes(result) == 32
