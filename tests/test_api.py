"""Tests for repro.api (the Section 5 multi-level interface)."""

import numpy as np
import pytest

from repro.api import GnnSession
from repro.errors import ConfigurationError
from repro.graph.generators import power_law_graph


@pytest.fixture(scope="module")
def session():
    graph = power_law_graph(1500, 8.0, attr_len=8, seed=0)
    return GnnSession(graph, num_partitions=4, seed=0)


class TestAcceleratorLevel:
    def test_csr_roundtrip(self, session):
        session.set_csr(3, 1234)
        assert session.read_csr(3) == 1234

    def test_csr_independent_indices(self, session):
        session.set_csr(4, 1)
        session.set_csr(5, 2)
        assert session.read_csr(4) == 1
        assert session.read_csr(5) == 2


class TestGnnOperatorLevel:
    def test_software_sample(self, session):
        result = session.sample(np.arange(8), (5, 2))
        assert result.layers[2].shape == (8, 10)
        assert result.attributes is not None

    def test_hardware_sample(self, session):
        results, stats = session.sample_hw(np.arange(8), (5,))
        assert set(results) == set(range(8))
        assert stats.roots_per_second > 0

    def test_software_and_hardware_agree_on_shapes(self, session):
        sw = session.sample(np.arange(4), (6,), with_attributes=False)
        hw, _stats = session.sample_hw(np.arange(4), (6,))
        for index in range(4):
            assert sw.layers[1][index].size == hw[index][1].size

    def test_read_node_attributes(self, session):
        values = session.read_node_attributes(np.array([1, 2, 3]))
        assert np.allclose(values, session.graph.node_attr[[1, 2, 3]])

    def test_negative_sample(self, session):
        negatives = session.negative_sample(np.array([[0, 1]]), rate=4)
        assert negatives.shape == (1, 4)
        forbidden = set(session.graph.neighbors(0).tolist()) | {0}
        assert not (set(negatives[0].tolist()) & forbidden)


class TestFixedModelLevel:
    def test_graphsage_trains(self, session):
        trainer = session.graphsage(hidden_dim=8, fanouts=(4,), num_labels=3)
        rng = np.random.default_rng(0)
        roots = rng.integers(0, session.graph.num_nodes, 32)
        labels = rng.integers(0, 2, (32, 3))
        first = trainer.train_step(roots, labels)
        for _ in range(5):
            last = trainer.train_step(roots, labels)
        assert np.isfinite(first) and np.isfinite(last)

    def test_graphsage_needs_attributes(self):
        graph = power_law_graph(100, 3.0, attr_len=0, seed=0)
        session = GnnSession(graph, num_partitions=2)
        with pytest.raises(ConfigurationError):
            session.graphsage(hidden_dim=4, fanouts=(2,), num_labels=2)


class TestConfiguration:
    def test_streaming_method(self):
        graph = power_law_graph(300, 6.0, attr_len=4, seed=1)
        session = GnnSession(graph, sampling_method="streaming", seed=1)
        result = session.sample(np.arange(4), (5,), with_attributes=False)
        assert result.layers[1].shape == (4, 5)

    def test_unknown_method(self):
        graph = power_law_graph(100, 3.0, seed=0)
        with pytest.raises(ConfigurationError):
            GnnSession(graph, sampling_method="sorted")

    def test_cache_enabled(self):
        graph = power_law_graph(300, 6.0, attr_len=4, seed=1)
        session = GnnSession(graph, cache_nodes=500, seed=1)
        session.sample(np.arange(32), (5,))
        before = session.store.summary.total_count
        session.store.reset_trace()
        session.sample(np.arange(32), (5,))
        assert session.store.summary.total_count < before

    def test_negative_cache_rejected(self):
        graph = power_law_graph(100, 3.0, seed=0)
        with pytest.raises(ConfigurationError):
            GnnSession(graph, cache_nodes=-1)


class TestServingLevel:
    def small_tenants(self):
        from repro.serving import TenantSpec

        return [
            TenantSpec(name="a", rate_rps=120.0, roots_per_request=2,
                       fanouts=(3, 2), slo_s=30e-3),
            TenantSpec(name="b", rate_rps=80.0, roots_per_request=4,
                       fanouts=(3, 2), slo_s=50e-3),
        ]

    def test_serve_functional_end_to_end(self, session):
        report = session.serve(
            tenants=self.small_tenants(), duration_s=0.15
        )
        assert report.completed == report.admitted > 0
        assert report.mean_batch_occupancy >= 1.0
        assert report.p99 < 50e-3
        assert set(report.backends) == {"axe", "software"}

    def test_serve_default_tenants_timing_only(self, session):
        report = session.serve(duration_s=0.1, functional=False)
        assert set(report.tenants) == {"recsys", "fraud", "search"}
        assert report.completed > 0

    def test_serve_software_only(self, session):
        report = session.serve(
            tenants=self.small_tenants(),
            duration_s=0.1,
            functional=False,
            include_hardware=False,
        )
        assert set(report.backends) == {"software"}
        assert report.completed == report.admitted > 0

    def test_serve_hardware_failure_degrades(self, session):
        report = session.serve(
            tenants=self.small_tenants(),
            duration_s=0.15,
            functional=False,
            fail_hardware_at_s=0.05,
        )
        # No admitted request is lost across the failover.
        assert report.completed == report.admitted > 0
        assert report.backends["software"].batches > 0

    def test_serve_deterministic(self, session):
        kwargs = dict(
            tenants=self.small_tenants(), duration_s=0.1, functional=False
        )
        a = session.serve(**kwargs)
        b = session.serve(**kwargs)
        assert a.latencies_s == b.latencies_s

    def test_fail_hardware_requires_hardware(self, session):
        with pytest.raises(ConfigurationError):
            session.serve(
                duration_s=0.1,
                include_hardware=False,
                fail_hardware_at_s=0.05,
            )


class TestBatchedSession:
    def test_batched_session_samples(self):
        graph = power_law_graph(300, 6.0, attr_len=4, seed=1)
        session = GnnSession(graph, num_partitions=2, batched=True)
        assert session.sampler.batched
        result = session.sample(np.array([1, 2, 3]), (4, 2))
        assert result.layers[2].shape == (3, 8)
        for hop in range(2):
            parents = result.layers[hop].reshape(-1)
            picks = result.layers[hop + 1].reshape(parents.size, -1)
            for i, parent in enumerate(parents):
                neighbors = graph.neighbors(int(parent))
                if neighbors.size == 0:
                    assert (picks[i] == parent).all()
                else:
                    assert np.isin(picks[i], neighbors).all()

    def test_default_is_reference_path(self):
        graph = power_law_graph(100, 4.0, attr_len=2, seed=2)
        assert not GnnSession(graph).sampler.batched


class TestDynamicSession:
    @pytest.fixture()
    def dynamic_session(self):
        from repro.graph.dynamic import DynamicGraph

        graph = power_law_graph(800, 6.0, attr_len=8, seed=0)
        return GnnSession(DynamicGraph(graph), num_partitions=2, seed=0)

    def test_sample_over_dynamic_store(self, dynamic_session):
        result = dynamic_session.sample(np.arange(8), (4, 2))
        assert result.layers[2].shape == (8, 8)
        assert len(dynamic_session.store.last_sample_epochs) == 1

    def test_mutate_then_sample_sees_new_edges(self, dynamic_session):
        from repro.memstore.ingest import Mutation

        before = dynamic_session.store.view.num_edges
        applied = dynamic_session.mutate(
            [Mutation("edge", src=0, dst=1), Mutation("node", attach_to=0)]
        )
        assert applied == 2
        assert dynamic_session.store.view.num_edges == before + 2
        assert dynamic_session.store.view.num_nodes == 801

    def test_mutate_requires_dynamic(self, session):
        from repro.memstore.ingest import Mutation

        with pytest.raises(ConfigurationError):
            session.mutate([Mutation("edge", src=0, dst=1)])

    def test_serve_with_mutation_rate(self, dynamic_session):
        report = dynamic_session.serve(
            duration_s=0.2, functional=True, mutation_rate=200.0, seed=0
        )
        assert report.mutations_applied == 40
        assert report.completed > 0

    def test_serve_with_explicit_timeline(self, dynamic_session):
        from repro.memstore.ingest import Mutation

        timeline = [
            Mutation("edge", src=0, dst=1, time_s=0.05),
            Mutation("node", attach_to=2, time_s=0.1),
        ]
        report = dynamic_session.serve(
            duration_s=0.2, functional=True, mutations=timeline, seed=0
        )
        assert report.mutations_applied == 2
        assert dynamic_session.store.view.num_nodes == 801

    def test_serve_mutations_require_dynamic(self, session):
        with pytest.raises(ConfigurationError):
            session.serve(duration_s=0.1, mutation_rate=10.0)

    def test_serve_hardware_incompatible_with_dynamic(self, dynamic_session):
        with pytest.raises(ConfigurationError):
            dynamic_session.serve(duration_s=0.1, include_hardware=True)

    def test_workers_incompatible_with_dynamic(self):
        from repro.graph.dynamic import DynamicGraph

        graph = power_law_graph(400, 6.0, attr_len=4, seed=0)
        with pytest.raises(ConfigurationError):
            GnnSession(DynamicGraph(graph), workers=2)

    def test_serve_rate_zero_matches_static(self):
        """A dynamic session serving zero mutations reports the same
        outcome as a static session over the same CSR."""
        from repro.graph.dynamic import DynamicGraph

        graph = power_law_graph(800, 6.0, attr_len=8, seed=0)
        static = GnnSession(graph, num_partitions=2, seed=0)
        dynamic = GnnSession(DynamicGraph(graph), num_partitions=2, seed=0)
        rs = static.serve(
            duration_s=0.2, functional=True, include_hardware=False, seed=0
        )
        rd = dynamic.serve(duration_s=0.2, functional=True, seed=0)
        assert rs.completed == rd.completed
        assert rs.offered == rd.offered
        assert rd.mutations_applied == 0
