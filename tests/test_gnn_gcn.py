"""Tests for repro.gnn.gcn (and the on-FPGA reduction equivalence)."""

import numpy as np
import pytest

from repro.axe.vpu import VectorUnit
from repro.errors import ConfigurationError
from repro.gnn.gcn import GcnEncoder, GcnLayer


def features_for(batch, fanouts, attr_len, seed=0):
    rng = np.random.default_rng(seed)
    out = [rng.standard_normal((batch, attr_len)).astype(np.float32)]
    width = 1
    for fanout in fanouts:
        width *= fanout
        out.append(rng.standard_normal((batch, width, attr_len)).astype(np.float32))
    return out


class TestGcnLayer:
    def test_forward_shape(self):
        layer = GcnLayer(6, 4, seed=0)
        out = layer.forward(
            np.zeros((2, 3, 6), dtype=np.float32),
            np.zeros((2, 3, 5, 6), dtype=np.float32),
        )
        assert out.shape == (2, 3, 4)

    def test_mean_includes_self(self):
        layer = GcnLayer(2, 2, activation="linear", seed=0)
        layer.linear.weight = np.eye(2, dtype=np.float32)
        layer.linear.bias = np.zeros(2, dtype=np.float32)
        self_feats = np.full((1, 1, 2), 4.0, dtype=np.float32)
        neighbors = np.zeros((1, 1, 3, 2), dtype=np.float32)
        out = layer.forward(self_feats, neighbors)
        assert np.allclose(out, 1.0)  # (4 + 0 + 0 + 0) / 4

    def test_backward_shapes(self):
        layer = GcnLayer(6, 4, seed=0)
        self_feats = np.random.default_rng(0).standard_normal((2, 3, 6)).astype(np.float32)
        neighbors = np.random.default_rng(1).standard_normal((2, 3, 5, 6)).astype(np.float32)
        out = layer.forward(self_feats, neighbors)
        grad_self, grad_neighbors = layer.backward(np.ones_like(out))
        assert grad_self.shape == self_feats.shape
        assert grad_neighbors.shape == neighbors.shape

    def test_shape_mismatch(self):
        layer = GcnLayer(4, 4)
        with pytest.raises(ConfigurationError):
            layer.forward(np.zeros((1, 2, 4)), np.zeros((1, 3, 5, 4)))


class TestGcnEncoder:
    def test_forward_shape(self):
        encoder = GcnEncoder(8, 16, (4, 3), seed=0)
        out = encoder.forward(features_for(5, (4, 3), 8))
        assert out.shape == (5, 16)

    def test_trains_toward_target(self):
        encoder = GcnEncoder(6, 8, (3,), seed=0)
        features = features_for(8, (3,), 6, seed=1)
        target = np.random.default_rng(2).standard_normal((8, 8)).astype(np.float32)
        first = None
        for _ in range(60):
            out = encoder.forward(features)
            diff = out - target
            loss = float(0.5 * np.sum(diff**2))
            if first is None:
                first = loss
            encoder.layers[0].backward(diff[:, None, :])
            encoder.step(0.01)
        assert loss < 0.5 * first

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GcnEncoder(0, 8, (3,))
        encoder = GcnEncoder(4, 8, (3,))
        with pytest.raises(ConfigurationError):
            encoder.forward(features_for(2, (3, 2), 4))


class TestReductionEquivalence:
    def test_vpu_reduced_path_matches_full_path(self):
        """The paper's GCN argument, end to end: aggregating on-FPGA
        (VPU mean over the closed neighborhood) and shipping only the
        reduced rows produces the SAME encoder output as shipping all
        rows and aggregating on the host."""
        batch, fanout, attr = 6, 5, 8
        rng = np.random.default_rng(0)
        self_feats = rng.standard_normal((batch, 1, attr)).astype(np.float32)
        neighbors = rng.standard_normal((batch, 1, fanout, attr)).astype(np.float32)

        encoder = GcnEncoder(attr, 4, (fanout,), seed=1)
        full = encoder.forward(
            [self_feats[:, 0, :], neighbors.reshape(batch, fanout, attr)]
        )

        # On-FPGA: the VPU computes the closed-neighborhood mean.
        vpu = VectorUnit()
        closed = np.concatenate(
            [self_feats[:, :, None, :], neighbors], axis=2
        ).reshape(batch, fanout + 1, attr)
        reduced, _cycles = vpu.reduce_neighborhood("mean", closed)
        off_fpga = encoder.forward_from_reduced([reduced[:, None, :]])

        assert np.allclose(full, off_fpga, atol=1e-5)

    def test_reduced_path_rejects_multihop(self):
        encoder = GcnEncoder(4, 4, (3, 2))
        with pytest.raises(ConfigurationError):
            encoder.forward_from_reduced([np.zeros((2, 1, 4))])
