"""Tests for repro.axe.core and repro.axe.engine."""

import dataclasses

import numpy as np
import pytest

from repro.axe.commands import Command, CommandKind, sample_command
from repro.axe.core import CoreConfig
from repro.axe.engine import AxeEngine, EngineConfig
from repro.errors import CommandError, ConfigurationError
from repro.graph.generators import power_law_graph
from repro.memstore.links import get_link


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(3000, 8.0, attr_len=16, seed=0)


@pytest.fixture
def engine(graph):
    return AxeEngine(graph, EngineConfig(num_cores=2))


class TestCoreConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(fanouts=())
        with pytest.raises(ConfigurationError):
            CoreConfig(sampler="magic")
        with pytest.raises(ConfigurationError):
            CoreConfig(window=0)
        with pytest.raises(ConfigurationError):
            CoreConfig(frequency_hz=0)


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(num_cores=0)
        with pytest.raises(ConfigurationError):
            EngineConfig(num_fpga_nodes=2, my_node=2)
        with pytest.raises(ConfigurationError):
            EngineConfig(num_fpga_nodes=4, remote_link=None)


class TestSampleCommand:
    def test_results_cover_all_roots(self, engine, graph):
        roots = np.arange(20)
        results, stats = engine.run(sample_command(roots, (5, 4)))
        assert set(results) == set(range(20))
        assert stats.roots == 20

    def test_layer_shapes(self, engine):
        results, _stats = engine.run(sample_command(np.array([3]), (5, 4)))
        layers = results[3]
        assert layers[0].shape == (1,)
        assert layers[1].shape == (5,)
        assert layers[2].shape == (20,)

    def test_sampled_nodes_are_neighbors(self, engine, graph):
        results, _stats = engine.run(sample_command(np.array([7]), (6,)))
        sampled = results[7][1]
        allowed = set(graph.neighbors(7).tolist()) or {7}
        assert set(sampled.tolist()) <= allowed

    def test_hop2_consistency(self, engine, graph):
        results, _stats = engine.run(sample_command(np.array([11]), (3, 4)))
        hop1, hop2 = results[11][1], results[11][2]
        for group, parent in enumerate(hop1):
            allowed = set(graph.neighbors(int(parent)).tolist()) or {int(parent)}
            assert set(hop2[group * 4 : (group + 1) * 4].tolist()) <= allowed

    def test_timing_positive_and_finite(self, engine):
        _results, stats = engine.run(sample_command(np.arange(16), (5, 5)))
        assert stats.elapsed_s > 0
        assert stats.roots_per_second > 0
        assert stats.events > 0

    def test_reservoir_method(self, engine):
        results, _stats = engine.run(
            sample_command(np.array([3]), (4,), method="reservoir")
        )
        assert len(results[3][1]) == 4

    def test_streaming_faster_than_reservoir(self):
        """Tech-2 end to end: on a regular graph (identical degrees, so
        identical memory traffic) with near-free memory, the streaming
        sampler engine finishes the batch measurably faster (12 vs 22
        cycles per GetSample)."""
        from repro.graph.csr import CSRGraph

        num_nodes, degree = 512, 12
        edges = [
            (v, (v + off + 1) % num_nodes)
            for v in range(num_nodes)
            for off in range(degree)
        ]
        regular = CSRGraph.from_edges(
            num_nodes, edges,
            node_attr=np.zeros((num_nodes, 4), dtype=np.float32),
        )
        config = EngineConfig(
            num_cores=1,
            core=CoreConfig(max_tags=1024, window=1),
            local_link=get_link("local_dram"),
            output_link=None,
        )
        roots = np.arange(32)
        engine = AxeEngine(regular, config)
        _r, fast = engine.run(sample_command(roots, (10, 10), method="streaming"))
        _r, slow = engine.run(sample_command(roots, (10, 10), method="reservoir"))
        assert slow.elapsed_s > 1.1 * fast.elapsed_s

    def test_more_cores_not_slower(self, graph):
        roots = np.arange(64)
        single = AxeEngine(graph, EngineConfig(num_cores=1)).run(
            sample_command(roots, (10, 10))
        )[1]
        quad = AxeEngine(graph, EngineConfig(num_cores=4)).run(
            sample_command(roots, (10, 10))
        )[1]
        assert quad.elapsed_s <= single.elapsed_s * 1.05

    def test_output_channel_can_bottleneck(self, graph):
        """The PoC observation: PCIe output caps throughput; removing it
        speeds the same batch up."""
        roots = np.arange(64)
        with_output = AxeEngine(graph, EngineConfig(num_cores=2)).run(
            sample_command(roots, (10, 10))
        )[1]
        without = AxeEngine(
            graph, EngineConfig(num_cores=2, output_link=None)
        ).run(sample_command(roots, (10, 10)))[1]
        assert without.elapsed_s < with_output.elapsed_s

    def test_multi_node_uses_remote_channel(self, graph):
        engine = AxeEngine(graph, EngineConfig(num_cores=1, num_fpga_nodes=4))
        _results, stats = engine.run(sample_command(np.arange(16), (5, 5)))
        assert stats.channel_bytes["remote"] > 0

    def test_single_node_no_remote_traffic(self, graph):
        engine = AxeEngine(graph, EngineConfig(num_cores=1, num_fpga_nodes=1))
        _results, stats = engine.run(sample_command(np.arange(8), (5,)))
        assert "remote" not in stats.channel_bytes

    def test_deterministic(self, graph):
        config = EngineConfig(num_cores=2, seed=3)
        a = AxeEngine(graph, config).run(sample_command(np.arange(8), (5,)))
        b = AxeEngine(graph, config).run(sample_command(np.arange(8), (5,)))
        assert a[1].elapsed_s == b[1].elapsed_s
        assert all(
            np.array_equal(a[0][root][1], b[0][root][1]) for root in range(8)
        )


class TestOtherCommands:
    def test_csr_roundtrip(self, engine):
        engine.run(Command(kind=CommandKind.SET_CSR, csr_index=5, csr_value=77))
        value, _stats = engine.run(Command(kind=CommandKind.READ_CSR, csr_index=5))
        assert value == 77

    def test_csr_index_range(self):
        with pytest.raises(CommandError):
            Command(kind=CommandKind.SET_CSR, csr_index=32)

    def test_read_node_attribute(self, engine, graph):
        nodes = np.array([1, 5, 9])
        values, stats = engine.run(
            Command(kind=CommandKind.READ_NODE_ATTRIBUTE, nodes=nodes)
        )
        assert np.allclose(values, graph.node_attr[nodes])
        assert stats.elapsed_s > 0

    def test_read_edge_attribute_known_edge(self, engine, graph):
        src = 0
        dst = int(graph.neighbors(src)[0])
        pairs = np.array([[src, dst], [src, graph.num_nodes - 1]])
        weights, _stats = engine.run(
            Command(kind=CommandKind.READ_EDGE_ATTRIBUTE, nodes=pairs)
        )
        assert weights[0] == 1.0  # unweighted graph: existing edge
        # second pair may or may not be an edge; must be 1.0 or NaN
        assert weights[1] == 1.0 or np.isnan(weights[1])

    def test_negative_sample(self, engine, graph):
        pairs = np.array([[2, 3], [4, 5]])
        negatives, _stats = engine.run(
            Command(kind=CommandKind.NEGATIVE_SAMPLE, nodes=pairs, rate=8)
        )
        assert negatives.shape == (2, 8)
        for row, (src, _dst) in enumerate(pairs):
            forbidden = set(graph.neighbors(int(src)).tolist()) | {int(src)}
            assert not (set(negatives[row].tolist()) & forbidden)

    def test_command_validation(self):
        with pytest.raises(CommandError):
            Command(kind=CommandKind.SAMPLE_N_HOP, nodes=np.array([1]), fanouts=())
        with pytest.raises(CommandError):
            Command(kind=CommandKind.NEGATIVE_SAMPLE, nodes=np.array([[1, 2]]), rate=0)
        with pytest.raises(CommandError):
            Command(
                kind=CommandKind.READ_EDGE_ATTRIBUTE, nodes=np.array([1, 2, 3])
            )

    def test_batches_per_second_helper(self, engine):
        _results, stats = engine.run(sample_command(np.arange(8), (5,)))
        assert stats.batches_per_second(8) == pytest.approx(
            stats.roots_per_second / 8
        )


class TestEdgeWeightFetch:
    """Table 4: sample n-hop with or without edge attributes."""

    def test_edge_weights_add_traffic(self, graph):
        import dataclasses as dc
        from repro.axe.commands import Command, CommandKind

        roots = np.arange(32)
        engine = AxeEngine(graph, EngineConfig(num_cores=1, output_link=None))
        plain = Command(
            kind=CommandKind.SAMPLE_N_HOP, nodes=roots, fanouts=(5, 5),
            with_attributes=False,
        )
        weighted = Command(
            kind=CommandKind.SAMPLE_N_HOP, nodes=roots, fanouts=(5, 5),
            with_attributes=False, with_edge_attributes=True,
        )
        _r, plain_stats = engine.run(plain)
        _r, weighted_stats = engine.run(weighted)
        plain_bytes = sum(plain_stats.channel_bytes.values())
        weighted_bytes = sum(weighted_stats.channel_bytes.values())
        assert weighted_bytes > plain_bytes

    def test_functional_contract_preserved(self, graph):
        """Edge-weight fetching changes timing, not the sampling
        contract: shapes and neighbor-membership still hold."""
        from repro.axe.commands import Command, CommandKind

        roots = np.arange(8)
        engine = AxeEngine(graph, EngineConfig(num_cores=1, seed=5))
        with_w, _s = engine.run(
            Command(
                kind=CommandKind.SAMPLE_N_HOP, nodes=roots, fanouts=(4,),
                with_edge_attributes=True,
            )
        )
        for root in range(8):
            sampled = with_w[root][1]
            assert sampled.shape == (4,)
            allowed = set(graph.neighbors(root).tolist()) or {root}
            assert set(sampled.tolist()) <= allowed


class TestOnFpgaReduction:
    """§4.1: VPU reduction before output cuts the PCIe bottleneck."""

    def test_reduced_output_fewer_bytes(self, graph):
        import dataclasses as dc

        roots = np.arange(32)

        def run(reduce_output):
            config = EngineConfig(
                num_cores=1,
                core=CoreConfig(reduce_output=reduce_output),
            )
            _r, stats = AxeEngine(graph, config).run(
                sample_command(roots, (10, 10))
            )
            return stats

        raw = run(False)
        reduced = run(True)
        assert reduced.channel_bytes["output"] < 0.2 * raw.channel_bytes["output"]

    def test_reduction_relieves_output_bottleneck(self, graph):
        """With the PoC output-bound at PCIe, on-FPGA aggregation gives
        a large throughput win (the paper's GCN argument)."""
        roots = np.arange(48)
        raw = AxeEngine(
            graph, EngineConfig(num_cores=2, core=CoreConfig())
        ).run(sample_command(roots, (10, 10)))[1]
        reduced = AxeEngine(
            graph, EngineConfig(num_cores=2, core=CoreConfig(reduce_output=True))
        ).run(sample_command(roots, (10, 10)))[1]
        assert reduced.roots_per_second > 1.5 * raw.roots_per_second
