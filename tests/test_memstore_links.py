"""Tests for repro.memstore.links (Figure 2d)."""

import pytest

from repro.errors import ConfigurationError
from repro.memstore.links import LINK_PRESETS, LinkModel, get_link


class TestLinkModel:
    def test_latency_grows_with_size(self):
        link = get_link("rdma_remote_dram")
        assert link.latency(1024) > link.latency(8)

    def test_latency_includes_base(self):
        link = LinkModel("l", 1e-6, 1e9, 0)
        assert link.latency(0) == pytest.approx(1e-6)

    def test_effective_bandwidth_monotone_in_outstanding(self):
        link = get_link("rdma_remote_dram")
        assert link.effective_bandwidth(64, 16) > link.effective_bandwidth(64, 1)

    def test_effective_bandwidth_capped_at_wire(self):
        link = get_link("pcie_host_dram")
        # Absurd concurrency cannot exceed payload wire share.
        huge = link.effective_bandwidth(1024, 100_000)
        wire_share = 1024 / (1024 + link.packet_overhead_bytes)
        assert huge == pytest.approx(link.peak_bandwidth * wire_share)

    def test_small_requests_waste_bandwidth(self):
        """Figure 2(d): 8B remote reads achieve ~1/100 of the bandwidth
        1KB reads achieve at equal concurrency."""
        link = get_link("rdma_remote_dram")
        small = link.effective_bandwidth(8, 16)
        large = link.effective_bandwidth(1024, 16)
        assert large / small > 50

    def test_utilization_bounds(self):
        link = get_link("mof_fabric")
        util = link.utilization(64, 8)
        assert 0 < util <= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkModel("bad", 0, 1e9)
        with pytest.raises(ConfigurationError):
            LinkModel("bad", 1e-6, 0)
        with pytest.raises(ConfigurationError):
            LinkModel("bad", 1e-6, 1e9, -1)

    def test_rejects_bad_requests(self):
        link = get_link("local_dram")
        with pytest.raises(ConfigurationError):
            link.effective_bandwidth(0)
        with pytest.raises(ConfigurationError):
            link.effective_bandwidth(8, 0)
        with pytest.raises(ConfigurationError):
            link.latency(-1)


class TestPresets:
    def test_figure2d_latency_ordering(self):
        """Local DRAM << PCIe host DRAM << RDMA remote (Observation-3)."""
        local = get_link("local_dram").latency(8)
        pcie = get_link("pcie_host_dram").latency(8)
        rdma = get_link("rdma_remote_dram").latency(8)
        sw = get_link("sw_remote_dram").latency(8)
        assert local < pcie < rdma < sw

    def test_mof_between_pcie_and_rdma_latency(self):
        mof = get_link("mof_fabric").latency(8)
        assert get_link("pcie_host_dram").latency(8) < mof
        assert mof < get_link("rdma_remote_dram").latency(8)

    def test_mof_bandwidth_dominates_nic(self):
        assert (
            get_link("mof_fabric").peak_bandwidth
            > 5 * get_link("rdma_remote_dram").peak_bandwidth
        )

    def test_table8_bandwidths(self):
        from repro.units import GB

        assert get_link("pcie_host_dram").peak_bandwidth == 16 * GB
        assert get_link("fpga_local_dram").peak_bandwidth == pytest.approx(102.4 * GB)
        assert get_link("mof_fabric").peak_bandwidth == 100 * GB

    def test_get_link_unknown(self):
        with pytest.raises(ConfigurationError):
            get_link("quantum_link")

    def test_all_presets_valid(self):
        for name, link in LINK_PRESETS.items():
            assert link.name == name
            assert link.latency(64) > 0
