"""Tests for repro.cost (pricing, regression, instances — Figure 16)."""

import pytest

from repro.errors import ConfigurationError
from repro.cost.instances import (
    FAAS_CONFIGS,
    FaasInstanceConfig,
    GPU_RULE_GBPS_PER_V100,
    gpu_cost_for_throughput,
)
from repro.cost.pricing import PRICE_CATALOG, catalog_price
from repro.cost.regression import CostModel, fit_cost_model, validate_cost_model
from repro.units import GB, gbps_to_bytes_per_s


class TestPricing:
    def test_catalog_covers_all_families(self):
        assert len(PRICE_CATALOG) == 10
        assert any(row.fpgas for row in PRICE_CATALOG.values())
        assert any(row.gpus for row in PRICE_CATALOG.values())

    def test_prices_positive_and_ordered(self):
        assert catalog_price("ecs-g7-s") < catalog_price("ecs-g7-l")

    def test_fpga_instances_cost_more(self):
        assert catalog_price("faas-f3-s") > catalog_price("ecs-g7-s")

    def test_gpu_instance_priciest_class(self):
        assert catalog_price("gpu-v100") > catalog_price("ecs-g7-m")

    def test_unknown_product(self):
        with pytest.raises(ConfigurationError):
            catalog_price("ecs-q9")

    def test_large_memory_premium(self):
        """ecs-re-x carries a super-linear premium over its resources."""
        row = PRICE_CATALOG["ecs-re-x"]
        linear_estimate = fit_cost_model().price(*row.features())
        assert row.price_per_hour > linear_estimate


class TestRegression:
    def test_fit_recovers_true_rates(self):
        from repro.cost.pricing import TRUE_RATES

        model = fit_cost_model()
        assert model.per_vcpu == pytest.approx(TRUE_RATES["per_vcpu"], rel=0.5)
        assert model.per_fpga == pytest.approx(TRUE_RATES["per_fpga"], rel=0.3)
        assert model.per_gpu == pytest.approx(TRUE_RATES["per_gpu"], rel=0.3)

    def test_validation_rows_cover_catalog(self):
        rows = validate_cost_model()
        assert {row.product_id for row in rows} == set(PRICE_CATALOG)

    def test_figure16_error_structure(self):
        """Figure 16: the model is generally accurate, except the
        large-memory instance which it under-estimates."""
        rows = {row.product_id: row for row in validate_cost_model()}
        outlier = rows.pop("ecs-re-x")
        for row in rows.values():
            assert row.error < 0.15
        assert outlier.predicted < outlier.listed
        assert outlier.error > 0.05

    def test_price_monotone_in_resources(self):
        model = fit_cost_model()
        assert model.price(8, 32) > model.price(2, 8)
        assert model.price(2, 8, fpgas=1) > model.price(2, 8)
        assert model.price(2, 8, gpus=1) > model.price(2, 8, fpgas=1) - 5

    def test_price_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            fit_cost_model().price(-1, 8)

    def test_fit_needs_enough_rows(self):
        with pytest.raises(ConfigurationError):
            fit_cost_model(list(PRICE_CATALOG.values())[:3])


class TestInstances:
    def test_table12_shapes(self):
        assert FAAS_CONFIGS["small"].mem_bytes == 8 * GB
        assert FAAS_CONFIGS["medium"].mem_bytes == 384 * GB
        assert FAAS_CONFIGS["large"].mem_bytes == 512 * GB
        assert FAAS_CONFIGS["large"].fpga_chips == 2

    def test_table12_nic_quotas(self):
        assert FAAS_CONFIGS["small"].nic_bandwidth == pytest.approx(
            gbps_to_bytes_per_s(10)
        )
        assert FAAS_CONFIGS["large"].nic_bandwidth == pytest.approx(
            gbps_to_bytes_per_s(50)
        )

    def test_table12_mof_quotas(self):
        assert FAAS_CONFIGS["medium"].mof_bandwidth == pytest.approx(
            gbps_to_bytes_per_s(200)
        )
        assert FAAS_CONFIGS["large"].mof_bandwidth == pytest.approx(
            gbps_to_bytes_per_s(800)
        )

    def test_instance_validation(self):
        with pytest.raises(ConfigurationError):
            FaasInstanceConfig("x", 0, 1, 1, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            FaasInstanceConfig("x", 2, 8 * GB, 1, 0, 1.0)

    def test_gpu_rule(self):
        model = fit_cost_model()
        cost_12 = gpu_cost_for_throughput(model, GPU_RULE_GBPS_PER_V100 * GB)
        gpu_price = model.price(12, 92, gpus=1)
        assert cost_12 == pytest.approx(gpu_price)

    def test_gpu_rule_scales_fractionally(self):
        model = fit_cost_model()
        half = gpu_cost_for_throughput(model, 6 * GB)
        full = gpu_cost_for_throughput(model, 12 * GB)
        assert half == pytest.approx(full / 2)

    def test_gpu_rule_sensitivity_knob(self):
        """Limitation-2: 10 V100s per 12GB/s inflates GPU cost 10x."""
        model = fit_cost_model()
        base = gpu_cost_for_throughput(model, 12 * GB, gpus_per_12gbps=1)
        deep = gpu_cost_for_throughput(model, 12 * GB, gpus_per_12gbps=10)
        assert deep == pytest.approx(10 * base)

    def test_gpu_rule_validation(self):
        model = fit_cost_model()
        with pytest.raises(ConfigurationError):
            gpu_cost_for_throughput(model, -1)
        with pytest.raises(ConfigurationError):
            gpu_cost_for_throughput(model, 1, gpus_per_12gbps=0)
