"""Tests for repro.graph.hetero."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphError
from repro.graph.csr import CSRGraph
from repro.graph.hetero import HeteroGraph, make_ecommerce_graph


@pytest.fixture(scope="module")
def shop_graph():
    return make_ecommerce_graph(
        num_users=200, num_items=400, num_shops=10, seed=0
    )


class TestConstruction:
    def test_node_types(self, shop_graph):
        assert set(shop_graph.node_types) == {"user", "item", "shop"}
        assert shop_graph.node_types["item"].num_nodes == 400
        assert shop_graph.node_types["item"].attr_len == 32

    def test_relations_present(self, shop_graph):
        assert ("user", "click", "item") in shop_graph.relations
        assert ("shop", "sells", "item") in shop_graph.relations

    def test_relations_from(self, shop_graph):
        from_user = shop_graph.relations_from("user")
        assert set(key[1] for key in from_user) == {"click", "buy"}

    def test_item_in_exactly_one_shop(self, shop_graph):
        csr = shop_graph.relation(("item", "in", "shop"))
        assert (csr.degrees() == 1).all()

    def test_shop_sells_inverse_consistent(self, shop_graph):
        item_in = shop_graph.relation(("item", "in", "shop"))
        shop_sells = shop_graph.relation(("shop", "sells", "item"))
        for shop in range(10):
            items = shop_sells.neighbors(shop)
            for item in items:
                assert int(item_in.neighbors(int(item))[0]) == shop

    def test_click_skew(self, shop_graph):
        clicks = shop_graph.relation(("user", "click", "item"))
        in_degrees = np.bincount(clicks.indices, minlength=400)
        top_share = np.sort(in_degrees)[-4:].sum() / max(1, clicks.num_edges)
        assert top_share > 0.10  # popular items dominate

    def test_validation_unknown_type(self):
        with pytest.raises(ConfigurationError):
            HeteroGraph(
                node_types={"a": (2, 0)},
                relations={("a", "e", "b"): CSRGraph.from_edges(2, [])},
            )

    def test_validation_dst_out_of_range(self):
        with pytest.raises(GraphError):
            HeteroGraph(
                node_types={"a": (2, 0), "b": (1, 0)},
                relations={("a", "e", "b"): CSRGraph.from_edges(2, [(0, 1)])},
            )

    def test_validation_src_count_mismatch(self):
        with pytest.raises(GraphError):
            HeteroGraph(
                node_types={"a": (3, 0), "b": (5, 0)},
                relations={("a", "e", "b"): CSRGraph.from_edges(2, [(0, 1)])},
            )

    def test_empty_node_types_rejected(self):
        with pytest.raises(ConfigurationError):
            HeteroGraph(node_types={}, relations={})


class TestAccess:
    def test_attributes_shape(self, shop_graph):
        rows = shop_graph.attributes("user", [0, 5, 7])
        assert rows.shape == (3, 16)

    def test_attributes_unknown_range(self, shop_graph):
        with pytest.raises(GraphError):
            shop_graph.attributes("shop", [100])

    def test_zero_attr_type_raises(self):
        graph = HeteroGraph(
            node_types={"a": (2, 0)},
            relations={},
        )
        with pytest.raises(GraphError):
            graph.attributes("a", [0])

    def test_unknown_relation(self, shop_graph):
        with pytest.raises(GraphError):
            shop_graph.relation(("user", "returns", "item"))


class TestMetapathSampling:
    def test_user_item_shop_shapes(self, shop_graph):
        rng = np.random.default_rng(0)
        layers = shop_graph.sample_metapath(
            roots=np.arange(8),
            metapath=[("user", "click", "item"), ("item", "in", "shop")],
            fanouts=(5, 1),
            rng=rng,
        )
        assert layers[0].shape == (8,)
        assert layers[1].shape == (8, 5)
        assert layers[2].shape == (8, 5)

    def test_sampled_ids_within_type_ranges(self, shop_graph):
        rng = np.random.default_rng(1)
        layers = shop_graph.sample_metapath(
            roots=np.arange(16),
            metapath=[("user", "click", "item"), ("item", "in", "shop")],
            fanouts=(4, 1),
            rng=rng,
        )
        assert layers[1].max() < 400  # items
        assert layers[2].max() < 10  # shops

    def test_second_hop_consistent_with_first(self, shop_graph):
        rng = np.random.default_rng(2)
        layers = shop_graph.sample_metapath(
            roots=np.arange(4),
            metapath=[("user", "click", "item"), ("item", "in", "shop")],
            fanouts=(3, 1),
            rng=rng,
        )
        item_in = shop_graph.relation(("item", "in", "shop"))
        for row in range(4):
            for col in range(3):
                item = int(layers[1][row, col])
                shop = int(layers[2][row, col])
                assert int(item_in.neighbors(item)[0]) == shop

    def test_non_chaining_metapath_rejected(self, shop_graph):
        with pytest.raises(ConfigurationError):
            shop_graph.sample_metapath(
                roots=np.arange(2),
                metapath=[("user", "click", "item"), ("user", "buy", "item")],
                fanouts=(2, 2),
                rng=np.random.default_rng(0),
            )

    def test_length_mismatch_rejected(self, shop_graph):
        with pytest.raises(ConfigurationError):
            shop_graph.sample_metapath(
                roots=np.arange(2),
                metapath=[("user", "click", "item")],
                fanouts=(2, 2),
                rng=np.random.default_rng(0),
            )

    def test_streaming_selector_works_on_metapaths(self, shop_graph):
        from repro.framework.selectors import select_streaming

        rng = np.random.default_rng(3)
        layers = shop_graph.sample_metapath(
            roots=np.arange(8),
            metapath=[("user", "click", "item")],
            fanouts=(6,),
            rng=rng,
            selector=select_streaming,
        )
        assert layers[1].shape == (8, 6)

    def test_zero_degree_cross_type_falls_back_to_random(self):
        # user 0 has no clicks: destination must still be a valid item.
        graph = HeteroGraph(
            node_types={"user": (1, 0), "item": (5, 0)},
            relations={("user", "click", "item"): CSRGraph.from_edges(1, [])},
        )
        layers = graph.sample_metapath(
            roots=np.array([0]),
            metapath=[("user", "click", "item")],
            fanouts=(4,),
            rng=np.random.default_rng(0),
        )
        assert layers[1].min() >= 0 and layers[1].max() < 5
