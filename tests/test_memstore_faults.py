"""Tests for the fault-tolerant remote-memory path.

Covers replica placement, retry-policy validation and backoff math,
the reliable read loop (timeouts, retries, hedging, failover, deadline
exhaustion), fault injection on the virtual clock, determinism, the
store/sampler integration, and the fault-aware Equation-3 sizing.
"""

import math

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    PartitionError,
    ReplicaUnavailableError,
)
from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.framework.service import ServiceConfig, run_service
from repro.graph.generators import power_law_graph
from repro.graph.partition import HashPartitioner
from repro.memstore import (
    FaultInjector,
    FaultStats,
    PartitionedStore,
    ReliableReadPath,
    ReplicaPlacement,
    RetryPolicy,
    expected_attempts,
    outstanding_for_link,
    outstanding_with_faults,
)
from repro.memstore.links import get_link
from repro.serving.metrics import MetricsRegistry


# --------------------------------------------------------------- placement
class TestReplicaPlacement:
    def test_rotating_chain_domains(self):
        placement = ReplicaPlacement(num_partitions=4, replication_factor=2)
        for p in range(4):
            replicas = placement.replicas_of(p)
            assert [r.replica for r in replicas] == [0, 1]
            assert [r.domain for r in replicas] == [p, (p + 1) % 4]

    def test_replicas_occupy_distinct_domains(self):
        placement = ReplicaPlacement(
            num_partitions=6, replication_factor=3, num_domains=5
        )
        for p in range(6):
            domains = [r.domain for r in placement.replicas_of(p)]
            assert len(set(domains)) == 3

    def test_primary_is_replica_zero(self):
        placement = ReplicaPlacement(num_partitions=3)
        primary = placement.primary_of(2)
        assert primary.replica == 0 and primary.partition == 2

    def test_replicas_in_domain(self):
        placement = ReplicaPlacement(num_partitions=4, replication_factor=2)
        hosted = placement.replicas_in_domain(1)
        # Domain 1 hosts partition 1's primary and partition 0's copy.
        assert {(r.partition, r.replica) for r in hosted} == {(1, 0), (0, 1)}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ReplicaPlacement(num_partitions=0)
        with pytest.raises(ConfigurationError):
            ReplicaPlacement(num_partitions=2, replication_factor=0)
        with pytest.raises(ConfigurationError):
            ReplicaPlacement(
                num_partitions=2, replication_factor=3, num_domains=2
            )
        with pytest.raises(PartitionError):
            ReplicaPlacement(num_partitions=2).replicas_of(2)
        with pytest.raises(ConfigurationError):
            ReplicaPlacement(num_partitions=2).replicas_in_domain(9)


# ------------------------------------------------------------------ policy
class TestRetryPolicy:
    def test_backoff_sequence_doubles_then_caps(self):
        policy = RetryPolicy(
            backoff_base_s=10e-6, backoff_multiplier=2.0, backoff_max_s=35e-6
        )
        assert policy.backoff_s(0) == pytest.approx(10e-6)
        assert policy.backoff_s(1) == pytest.approx(20e-6)
        assert policy.backoff_s(2) == pytest.approx(35e-6)  # capped
        assert policy.backoff_s(5) == pytest.approx(35e-6)

    def test_backoff_rejects_negative_index(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_s(-1)

    def test_validation(self):
        for bad in (
            dict(attempt_timeout_s=0),
            dict(deadline_s=-1),
            dict(max_attempts=0),
            dict(backoff_base_s=-1e-6),
            dict(backoff_multiplier=0.5),
            dict(hedge_quantile=0),
            dict(hedge_quantile=101),
            dict(hedge_min_samples=0),
            dict(hedge_delay_s=0),
        ):
            with pytest.raises(ConfigurationError):
                RetryPolicy(**bad)

    def test_expected_attempts(self):
        assert expected_attempts(0.0, 5) == 1.0
        # sum of 0.5^i for i in 0..2
        assert expected_attempts(0.5, 3) == pytest.approx(1.75)
        with pytest.raises(ConfigurationError):
            expected_attempts(1.0, 5)
        with pytest.raises(ConfigurationError):
            expected_attempts(0.1, 0)


# ----------------------------------------------------------- fault injector
class TestFaultInjector:
    def test_kill_and_restore_immediate(self):
        placement = ReplicaPlacement(num_partitions=2)
        injector = FaultInjector()
        replica = placement.primary_of(0)
        assert not injector.is_down(replica)
        injector.kill_replica(0, 0)
        assert injector.is_down(replica)
        injector.restore_replica(0, 0)
        assert not injector.is_down(replica)

    def test_scheduled_kill_applies_at_virtual_time(self):
        placement = ReplicaPlacement(num_partitions=2)
        injector = FaultInjector()
        replica = placement.primary_of(1)
        injector.kill_replica(1, 0, at_s=1e-3)
        assert not injector.is_down(replica)
        injector.advance_to(0.5e-3)
        assert not injector.is_down(replica)
        injector.advance_to(2e-3)
        assert injector.is_down(replica)

    def test_zero_loss_never_loses(self):
        injector = FaultInjector(seed=0, loss_rate=0.0)
        assert not any(injector.request_lost() for _ in range(100))

    def test_loss_rate_validation(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(loss_rate=1.0)

    def test_degrade_link_validation(self):
        with pytest.raises(ConfigurationError):
            FaultInjector().degrade_link(0.0)


# -------------------------------------------------------------- fault stats
class TestFaultStats:
    def test_minus_gives_window_delta(self):
        stats = FaultStats(reads=10, retries=3, busy_s=1.0)
        baseline = stats.copy()
        stats.reads += 5
        stats.retries += 1
        delta = stats.minus(baseline)
        assert delta.reads == 5 and delta.retries == 1
        assert delta.busy_s == pytest.approx(0.0)

    def test_any_faults(self):
        assert not FaultStats(reads=100, attempts=100).any_faults
        assert FaultStats(retries=1).any_faults
        assert FaultStats(hedges=1).any_faults


# ----------------------------------------------------------- reliable reads
def make_path(**kwargs):
    placement = kwargs.pop(
        "placement", ReplicaPlacement(num_partitions=4, replication_factor=2)
    )
    injector = kwargs.pop("injector", None) or FaultInjector(seed=0)
    policy = kwargs.pop("policy", None) or RetryPolicy()
    path = ReliableReadPath(
        placement, policy=policy, injector=injector, seed=0, **kwargs
    )
    return path, injector


class TestReliableReadPath:
    def test_clean_read_no_fault_events(self):
        path, _ = make_path(policy=RetryPolicy(hedge=False))
        for _ in range(50):
            latency = path.read(0, 64)
            assert latency > 0
        stats = path.stats
        assert stats.reads == 50 and stats.attempts == 50
        assert not stats.any_faults

    def test_timeout_fires_on_dead_primary(self):
        policy = RetryPolicy(hedge=False)
        path, injector = make_path(policy=policy)
        injector.kill_replica(0, replica=0)
        before = injector.now
        path.read(0, 64)
        stats = path.stats
        assert stats.timeouts == 1
        assert stats.retries == 1
        assert stats.failovers == 1  # served by replica 1
        # The read burned the full attempt timeout plus the backoff.
        assert injector.now - before >= policy.attempt_timeout_s

    def test_backoff_consumes_virtual_time(self):
        policy = RetryPolicy(hedge=False)
        path, injector = make_path(policy=policy, jitter_sigma=0.0)
        injector.kill_replica(0, replica=0)
        before = injector.now
        latency = path.read(0, 64)
        # timeout + backoff(0) + successful attempt on the replica
        floor = policy.attempt_timeout_s + policy.backoff_s(0)
        assert latency >= floor
        assert injector.now - before == pytest.approx(latency)

    def test_hedge_cancels_loser(self):
        """A dead primary never answers; the hedge to the other replica
        wins every read, with no retry chain needed."""
        policy = RetryPolicy(hedge=True, hedge_delay_s=20e-6)
        path, injector = make_path(policy=policy, jitter_sigma=0.0)
        injector.kill_replica(2, replica=0)
        for _ in range(10):
            latency = path.read(2, 64)
            # The winning response is the hedge: trigger delay + one
            # wire latency; the primary's (never-arriving) response is
            # dropped, not waited for.
            assert latency >= policy.hedge_delay_s
            assert latency < policy.attempt_timeout_s
        stats = path.stats
        assert stats.hedges == 10
        assert stats.hedge_wins == 10
        assert stats.failovers == 10
        assert stats.retries == 0 and stats.timeouts == 0

    def test_hedge_not_issued_when_primary_fast(self):
        # With zero jitter the primary always beats a long hedge delay.
        policy = RetryPolicy(hedge=True, hedge_delay_s=90e-6)
        path, _ = make_path(policy=policy, jitter_sigma=0.0)
        for _ in range(20):
            path.read(0, 64)
        assert path.stats.hedges == 0

    def test_all_replicas_dead_raises_within_deadline(self):
        policy = RetryPolicy(hedge=False, deadline_s=1e-3)
        path, injector = make_path(policy=policy)
        injector.kill_replica(1, replica=0)
        injector.kill_replica(1, replica=1)
        before = injector.now
        with pytest.raises(ReplicaUnavailableError):
            path.read(1, 64)
        assert path.stats.failed_reads == 1
        assert injector.now - before <= policy.deadline_s + 1e-12

    def test_loss_rate_triggers_retries(self):
        policy = RetryPolicy(hedge=False)
        injector = FaultInjector(seed=1, loss_rate=0.3)
        path, _ = make_path(policy=policy, injector=injector)
        for _ in range(100):
            path.read(0, 64)
        assert path.stats.retries > 0
        assert path.stats.failed_reads == 0  # retries recover

    def test_deterministic_across_runs(self):
        def one_run():
            injector = FaultInjector(seed=5, loss_rate=0.1)
            path, _ = make_path(injector=injector)
            injector.kill_replica(0, replica=0, at_s=1e-4)
            for _ in range(200):
                try:
                    path.read(0, 64)
                except ReplicaUnavailableError:
                    pass
            return path.stats
        a, b = one_run(), one_run()
        assert a == b

    def test_degraded_link_slows_reads(self):
        path_a, _ = make_path(policy=RetryPolicy(hedge=False), jitter_sigma=0.0)
        injector_b = FaultInjector()
        injector_b.degrade_link(4.0)
        path_b, _ = make_path(
            policy=RetryPolicy(hedge=False),
            injector=injector_b,
            jitter_sigma=0.0,
        )
        assert path_b.read(0, 64) == pytest.approx(4.0 * path_a.read(0, 64))

    def test_validation(self):
        placement = ReplicaPlacement(num_partitions=2)
        with pytest.raises(ConfigurationError):
            ReliableReadPath(placement, jitter_sigma=-0.1)
        with pytest.raises(ConfigurationError):
            ReliableReadPath(placement, latency_window=0)


class TestLinkDegraded:
    def test_degraded_derives_scaled_link(self):
        link = get_link("mof_fabric")
        slow = link.degraded(latency_factor=2.0, bandwidth_factor=0.5)
        assert slow.name.endswith(":degraded")
        assert slow.latency(64) == pytest.approx(2.0 * link.latency(64))

    def test_degraded_validation(self):
        link = get_link("mof_fabric")
        with pytest.raises(ConfigurationError):
            link.degraded(latency_factor=0.5)
        with pytest.raises(ConfigurationError):
            link.degraded(bandwidth_factor=0.0)


# ------------------------------------------------------- store integration
def make_store(reliability, num_partitions=4, num_nodes=200):
    graph = power_law_graph(
        num_nodes=num_nodes, avg_degree=6, attr_len=4, seed=0
    )
    return PartitionedStore(
        graph, HashPartitioner(num_partitions), reliability=reliability
    )


class TestStoreIntegration:
    def test_remote_reads_ride_reliable_path(self):
        path, _ = make_path()
        store = make_store(path)
        for node in range(50):
            store.get_neighbors(node, from_partition=0)
        assert path.stats.reads > 0

    def test_local_reads_bypass_reliable_path(self):
        path, _ = make_path()
        store = make_store(path)
        # from_partition=None treats every access as local.
        for node in range(50):
            store.get_neighbors(node, from_partition=None)
        store.get_attributes(np.arange(20, dtype=np.int64), None)
        assert path.stats.reads == 0

    def test_no_reliability_no_fault_stats(self):
        store = make_store(None)
        assert store.fault_stats is None

    def test_store_raises_when_shard_unreachable(self):
        path, injector = make_path(
            policy=RetryPolicy(hedge=False, deadline_s=1e-3)
        )
        store = make_store(path)
        injector.kill_replica(1, 0)
        injector.kill_replica(1, 1)
        owners = store.partitioner.partition_of(
            np.arange(store.graph.num_nodes, dtype=np.int64)
        )
        victim = int(np.flatnonzero(owners == 1)[0])
        with pytest.raises(ReplicaUnavailableError):
            store.get_neighbors(victim, from_partition=0)


class TestSamplerDegradedCompletion:
    def _sampler(self, degraded_ok):
        path, injector = make_path(
            policy=RetryPolicy(hedge=False, deadline_s=1e-3)
        )
        store = make_store(path)
        sampler = MultiHopSampler(
            store, seed=0, worker_partition=0, degraded_ok=degraded_ok
        )
        injector.kill_replica(1, 0)
        injector.kill_replica(1, 1)
        return sampler

    def test_strict_mode_propagates(self):
        sampler = self._sampler(degraded_ok=False)
        request = SampleRequest(
            roots=np.arange(32, dtype=np.int64), fanouts=(5, 3)
        )
        with pytest.raises(ReplicaUnavailableError):
            sampler.sample(request)

    def test_degraded_mode_completes(self):
        sampler = self._sampler(degraded_ok=True)
        request = SampleRequest(
            roots=np.arange(32, dtype=np.int64), fanouts=(5, 3)
        )
        result = sampler.sample(request)
        assert result.layers[-1].shape == (32, 15)
        assert sampler.degraded_fallbacks > 0
        assert result.attributes is not None

    def test_matches_baseline_when_replica_survives(self):
        graph = power_law_graph(
            num_nodes=200, avg_degree=6, attr_len=4, seed=0
        )
        request = SampleRequest(
            roots=np.arange(16, dtype=np.int64), fanouts=(4,)
        )
        baseline = MultiHopSampler(
            PartitionedStore(graph, HashPartitioner(4)),
            seed=3,
            worker_partition=0,
        ).sample(request)
        path, injector = make_path()
        injector.kill_replica(1, 0)  # replica 1 survives
        faulted = MultiHopSampler(
            PartitionedStore(graph, HashPartitioner(4), reliability=path),
            seed=3,
            worker_partition=0,
            degraded_ok=True,
        ).sample(request)
        for a, b in zip(baseline.layers, faulted.layers):
            assert np.array_equal(a, b)
        assert path.stats.failovers > 0


# --------------------------------------------------------- equation-3 sizing
class TestOutstandingWithFaults:
    MIX = {16: 0.5, 64: 0.5}

    def test_no_faults_no_amplification(self):
        link = get_link("mof_fabric")
        base = outstanding_for_link(link, self.MIX)
        assert outstanding_with_faults(
            link, self.MIX, RetryPolicy()
        ) == pytest.approx(base)

    def test_loss_and_hedging_amplify(self):
        link = get_link("mof_fabric")
        base = outstanding_for_link(link, self.MIX)
        sized = outstanding_with_faults(
            link, self.MIX, RetryPolicy(), loss_rate=0.2, hedge_rate=0.05
        )
        expected = (expected_attempts(0.2, 5) + 0.05) * base
        assert sized == pytest.approx(expected)

    def test_hedge_rate_validation(self):
        with pytest.raises(ConfigurationError):
            outstanding_with_faults(
                get_link("mof_fabric"), self.MIX, RetryPolicy(), hedge_rate=1.5
            )


# ------------------------------------------------------- service counters
class TestServiceFaultPath:
    RETRY = RetryPolicy(
        attempt_timeout_s=2e-3,
        deadline_s=50e-3,
        backoff_base_s=200e-6,
        hedge_delay_s=1.5e-3,
    )

    def test_faults_require_retry_policy(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(kill_server_at=((0, 1e-3),))
        with pytest.raises(ConfigurationError):
            ServiceConfig(request_loss_rate=0.1)

    def test_fault_event_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(retry=self.RETRY, kill_server_at=((99, 1e-3),))
        with pytest.raises(ConfigurationError):
            ServiceConfig(retry=self.RETRY, kill_server_at=((0, -1.0),))

    def test_retry_config_counters_zero_without_faults(self):
        # Small hops so clean RPCs finish well inside the 2ms timeout.
        config = ServiceConfig(
            num_workers=2,
            batches_per_worker=2,
            batch_size=16,
            fanouts=(5,),
            retry=self.RETRY,
        )
        report = run_service(config, seed=0)
        assert report.total_batches == 4
        assert report.retries == 0 and report.timeouts == 0
        assert report.degraded_shards == 0

    def test_server_kill_completes_with_retries(self):
        config = ServiceConfig(
            num_workers=8,
            batches_per_worker=5,
            batch_size=16,
            fanouts=(5,),
            replication_factor=2,
            retry=self.RETRY,
            kill_server_at=((1, 0.2e-3),),
        )
        report = run_service(config, seed=0)
        assert report.total_batches == 40  # nothing hangs
        # The hedge delay (1.5ms) undercuts the attempt timeout (2ms),
        # so hedged duplicates mask the dead server before any timeout.
        assert report.hedges > 0
        assert report.hedge_wins > 0

    def test_server_kill_without_hedging_times_out_and_retries(self):
        config = ServiceConfig(
            num_workers=8,
            batches_per_worker=5,
            batch_size=16,
            fanouts=(5,),
            replication_factor=2,
            retry=RetryPolicy(
                attempt_timeout_s=2e-3,
                deadline_s=50e-3,
                backoff_base_s=200e-6,
                hedge=False,
            ),
            kill_server_at=((1, 0.2e-3),),
        )
        report = run_service(config, seed=0)
        assert report.total_batches == 40
        assert report.timeouts > 0
        assert report.retries > 0
        assert report.hedges == 0

    def test_loss_recovers_via_retries(self):
        config = ServiceConfig(
            num_workers=4,
            batches_per_worker=2,
            batch_size=16,
            fanouts=(5,),
            replication_factor=2,
            retry=self.RETRY,
            request_loss_rate=0.2,
        )
        report = run_service(config, seed=1)
        assert report.total_batches == 8
        assert report.retries > 0


# ------------------------------------------------------- serving counters
class TestServingStoreCounters:
    def test_registry_surfaces_store_faults(self):
        metrics = MetricsRegistry()
        metrics.on_store_faults(
            FaultStats(
                reads=100, retries=7, timeouts=7, hedges=3, hedge_wins=2,
                failovers=5, failed_reads=1,
            )
        )
        report = metrics.snapshot(duration_s=0.1, drain_s=0.1)
        assert report.store_reads == 100
        assert report.store_retries == 7
        assert report.store_hedges == 3
        assert report.store_hedge_wins == 2
        assert report.store_failovers == 5
        assert report.store_degraded_reads == 1
        assert "store path: 100 reads" in report.format()

    def test_default_report_has_zero_store_counters(self):
        report = MetricsRegistry().snapshot(duration_s=0.1, drain_s=0.1)
        assert report.store_reads == 0
        assert "store path" not in report.format()


# --------------------------------------------------------------- percentiles
class TestNanPercentiles:
    def test_service_report_empty_percentiles_nan(self):
        from repro.framework.service import ServiceReport

        empty = ServiceReport([], 0.0, 0, 0)
        assert math.isnan(empty.p50) and math.isnan(empty.p99)
        assert math.isnan(empty.deadline_miss_rate(1.0))

    def test_tenant_report_empty_percentiles_nan(self):
        from repro.serving.metrics import TenantReport

        tenant = TenantReport(name="t", slo_s=1e-3)
        assert math.isnan(tenant.p50) and math.isnan(tenant.p99)
