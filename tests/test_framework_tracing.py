"""Tests for repro.framework.tracing (Figure 2c)."""

import pytest

from repro.errors import ConfigurationError
from repro.framework.tracing import characterize_access_mix
from repro.graph.datasets import instantiate_dataset
from repro.graph.generators import power_law_graph


class TestAccessMix:
    def test_structure_fraction_near_half(self):
        """Observation-2: ~48% of accesses (by count) are fine-grained
        structure accesses; our model lands in the 40-65% band."""
        graph = instantiate_dataset("ml", max_nodes=5000, seed=0)
        report = characterize_access_mix(graph, "ml", batch_size=32, num_batches=2)
        assert 0.40 < report.structure_count_fraction < 0.65

    def test_structure_accesses_are_fine_grained(self):
        graph = instantiate_dataset("ss", max_nodes=4000, seed=0)
        report = characterize_access_mix(graph, "ss", batch_size=16, num_batches=2)
        # Paper: 8-64B indirect accesses.
        assert report.mean_structure_bytes < 128
        assert report.mean_attribute_bytes > report.mean_structure_bytes

    def test_attribute_bytes_dominate(self):
        graph = instantiate_dataset("ll", max_nodes=4000, seed=0)
        report = characterize_access_mix(graph, "ll", batch_size=16, num_batches=2)
        assert report.structure_bytes_fraction < 0.5

    def test_remote_fraction_tracks_partitions(self):
        graph = power_law_graph(3000, 6.0, attr_len=8, seed=1)
        few = characterize_access_mix(graph, num_partitions=2, batch_size=16)
        many = characterize_access_mix(graph, num_partitions=16, batch_size=16)
        assert many.remote_count_fraction > few.remote_count_fraction

    def test_worker_partition_none_is_local(self):
        graph = power_law_graph(1000, 4.0, attr_len=4, seed=1)
        report = characterize_access_mix(graph, worker_partition=None, batch_size=8)
        assert report.remote_count_fraction == 0.0

    def test_rejects_bad_batching(self):
        graph = power_law_graph(100, 2.0, attr_len=4, seed=1)
        with pytest.raises(ConfigurationError):
            characterize_access_mix(graph, batch_size=0)

    def test_report_name_default(self):
        graph = power_law_graph(100, 2.0, attr_len=4, seed=1)
        assert characterize_access_mix(graph, batch_size=4).name == "graph"
