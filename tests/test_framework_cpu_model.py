"""Tests for repro.framework.cpu_model."""

import pytest

from repro.errors import ConfigurationError
from repro.framework.cpu_model import CpuSamplingModel, WorkloadShape
from repro.graph.datasets import DATASET_ORDER, get_dataset


@pytest.fixture
def shape():
    return WorkloadShape.from_spec(get_dataset("ls"))


class TestWorkloadShape:
    def test_counts_for_two_hop(self, shape):
        assert shape.neighbor_ops == 11  # root + 10 hop-1 nodes
        assert shape.attr_nodes == 121  # 111 sampled + 10 negatives

    def test_one_hop_counts(self):
        shape = WorkloadShape.from_spec(
            get_dataset("ss"), fanouts=(5,), negative_rate=0
        )
        assert shape.neighbor_ops == 1
        assert shape.attr_nodes == 6

    def test_attribute_bytes_scale_with_attr_len(self):
        small = WorkloadShape.from_spec(get_dataset("ss"))
        large = WorkloadShape.from_spec(get_dataset("ll"))
        assert large.attribute_bytes > small.attribute_bytes

    def test_fetch_is_structure_plus_attrs(self, shape):
        assert shape.fetch_bytes == pytest.approx(
            shape.structure_bytes + shape.attribute_bytes
        )

    def test_access_mix_normalized(self, shape):
        assert sum(shape.access_mix.values()) == pytest.approx(1.0)

    def test_mean_request_between_extremes(self, shape):
        sizes = list(shape.access_mix)
        assert min(sizes) < shape.mean_request_bytes < max(sizes)

    def test_rejects_empty_fanouts(self):
        with pytest.raises(ConfigurationError):
            WorkloadShape.from_spec(get_dataset("ss"), fanouts=())


class TestCpuSamplingModel:
    def test_remote_fraction(self):
        model = CpuSamplingModel()
        assert model.remote_fraction(1) == 0.0
        assert model.remote_fraction(4) == pytest.approx(0.75)

    def test_remote_fraction_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            CpuSamplingModel().remote_fraction(0)

    def test_more_servers_slower_per_vcpu(self, shape):
        model = CpuSamplingModel()
        assert model.roots_per_second(shape, 1) > model.roots_per_second(shape, 15)

    def test_software_cost_dominates_single_server(self, shape):
        model = CpuSamplingModel()
        touched = shape.neighbor_ops + shape.attr_nodes
        expected = 1.0 / (touched * model.per_node_software_s)
        assert model.roots_per_second(shape, 1) == pytest.approx(expected)

    def test_rate_is_hundreds_of_roots(self, shape):
        """Calibrated range: a vCPU samples a few hundred roots/s, which
        puts one PoC FPGA at ~894 vCPUs (Figure 14)."""
        model = CpuSamplingModel()
        rate = model.roots_per_second(shape, 3)
        assert 200 < rate < 800

    def test_batches_per_second(self, shape):
        model = CpuSamplingModel()
        assert model.batches_per_second(shape, 3, batch_size=512) == pytest.approx(
            model.roots_per_second(shape, 3) / 512
        )

    def test_batches_rejects_bad_batch(self, shape):
        with pytest.raises(ConfigurationError):
            CpuSamplingModel().batches_per_second(shape, 3, batch_size=0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CpuSamplingModel(per_node_software_s=0)
        with pytest.raises(ConfigurationError):
            CpuSamplingModel(outstanding_per_vcpu=0)

    def test_more_outstanding_faster(self, shape):
        slow = CpuSamplingModel(outstanding_per_vcpu=1)
        fast = CpuSamplingModel(outstanding_per_vcpu=16)
        assert fast.roots_per_second(shape, 8) > slow.roots_per_second(shape, 8)

    @pytest.mark.parametrize("name", DATASET_ORDER)
    def test_all_datasets_positive_rates(self, name):
        shape = WorkloadShape.from_spec(get_dataset(name))
        assert CpuSamplingModel().roots_per_second(shape, 5) > 0
