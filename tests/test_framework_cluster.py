"""Tests for repro.framework.cluster (Figure 2b)."""

import pytest

from repro.errors import ConfigurationError
from repro.framework.cluster import ClusterModel, ScalingPoint, _geomean
from repro.framework.cpu_model import CpuSamplingModel, WorkloadShape
from repro.graph.datasets import DATASET_ORDER, get_dataset


@pytest.fixture
def model():
    return ClusterModel(CpuSamplingModel(), vcpus_per_server=32)


@pytest.fixture
def shapes():
    return [WorkloadShape.from_spec(get_dataset(name)) for name in DATASET_ORDER]


class TestScaling:
    def test_throughput_grows_with_servers(self, model, shapes):
        assert model.throughput(shapes[0], 15) > model.throughput(shapes[0], 1)

    def test_sublinear_scaling(self, model, shapes):
        """Observation-2: speedup is clearly below linear at 15 servers."""
        curve = model.scaling_curve(shapes[1], (1, 5, 15))
        assert curve[1].speedup_vs_one < 5
        assert curve[2].speedup_vs_one < 15

    def test_efficiency_declines(self, model, shapes):
        curve = model.scaling_curve(shapes[1], (1, 5, 15))
        efficiencies = [point.efficiency for point in curve]
        assert efficiencies[0] >= efficiencies[1] >= efficiencies[2]

    def test_first_point_speedup_one(self, model, shapes):
        curve = model.scaling_curve(shapes[0], (1, 5))
        assert curve[0].speedup_vs_one == pytest.approx(1.0)

    def test_average_curve_structure(self, model, shapes):
        curve = model.average_scaling_curve(shapes, (1, 5, 15))
        assert [point.num_servers for point in curve] == [1, 5, 15]
        assert all(isinstance(point, ScalingPoint) for point in curve)

    def test_average_sublinear(self, model, shapes):
        curve = model.average_scaling_curve(shapes, (1, 5, 15))
        assert 1.5 < curve[1].speedup_vs_one < 5.0
        assert 3.0 < curve[2].speedup_vs_one < 15.0

    def test_rejects_empty_counts(self, model, shapes):
        with pytest.raises(ConfigurationError):
            model.scaling_curve(shapes[0], ())

    def test_rejects_empty_shapes(self, model):
        with pytest.raises(ConfigurationError):
            model.average_scaling_curve([], (1,))

    def test_rejects_bad_vcpus(self):
        with pytest.raises(ConfigurationError):
            ClusterModel(CpuSamplingModel(), vcpus_per_server=0)


class TestGeomean:
    def test_geomean_value(self):
        assert _geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            _geomean([1.0, 0.0])
