"""Tests for repro.memstore.layout (Figure 2a)."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.datasets import DATASET_ORDER, get_dataset
from repro.memstore.layout import FootprintModel
from repro.units import GB, TB


@pytest.fixture
def model():
    return FootprintModel()


class TestFootprint:
    def test_total_is_sum_of_parts(self, model):
        report = model.report(get_dataset("ss"))
        assert report.total_bytes == (
            report.structure_bytes + report.index_bytes + report.attribute_bytes
        )

    def test_footprints_order_with_scale(self, model):
        totals = [model.report(get_dataset(n)).total_bytes for n in DATASET_ORDER]
        # ss < sl (larger attrs), ls > sl (far more nodes), syn largest.
        assert totals[0] < totals[2]
        assert totals[-1] == max(totals)

    def test_syn_needs_many_servers(self, model):
        assert model.min_servers(get_dataset("syn")) >= 10

    def test_small_graphs_fit_one_server(self, model):
        assert model.min_servers(get_dataset("ss")) == 1
        assert model.min_servers(get_dataset("sl")) == 1

    def test_graphs_are_terabyte_scale(self, model):
        assert model.report(get_dataset("ls")).total_bytes > 1 * TB
        assert model.report(get_dataset("syn")).total_bytes > 5 * TB

    def test_attr_overhead_multiplies(self):
        lean = FootprintModel(attr_overhead=1.0)
        fat = FootprintModel(attr_overhead=2.0)
        spec = get_dataset("ss")
        assert fat.attribute_bytes(spec) == 2 * lean.attribute_bytes(spec)

    def test_min_instances_exceeds_min_servers(self, model):
        """Cloud instances with small quotas need far more shards."""
        spec = get_dataset("ml")
        assert model.min_instances(spec, 8 * GB) > model.min_servers(spec)

    def test_min_instances_ceiling(self, model):
        spec = get_dataset("ss")
        total = model.report(spec).total_bytes
        instances = model.min_instances(spec, total // 3)
        assert instances == 4  # ceil(total / (total // 3)) with remainder

    def test_str_is_informative(self, model):
        text = str(model.report(get_dataset("ss")))
        assert "ss" in text and "min_servers" in text


class TestValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            FootprintModel(server_capacity_bytes=0)

    def test_rejects_sub_one_overhead(self):
        with pytest.raises(ConfigurationError):
            FootprintModel(attr_overhead=0.5)

    def test_rejects_negative_sizes(self):
        with pytest.raises(ConfigurationError):
            FootprintModel(bytes_per_edge=-1)

    def test_min_instances_rejects_zero(self, ):
        model = FootprintModel()
        with pytest.raises(ConfigurationError):
            model.min_instances(get_dataset("ss"), 0)
