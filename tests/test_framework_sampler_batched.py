"""Batched sampling fast path: equivalence with the reference walk.

The contract under test: for any fixed sampled layers, the batched
path's accounting (AccessSummary, cache hit/miss counters, degraded
fallbacks, fault stats) is identical to the per-node reference walk's,
and the samples themselves are statistically equivalent (chi-squared
per fanout). Replay (:mod:`repro.framework.replay`) pins the walk to
the batched result's layers so accounting can be compared exactly.
"""

import numpy as np
import pytest

from repro.framework.cache import HotNodeCache
from repro.framework.replay import replay_reference
from repro.framework.requests import NegativeSampleRequest, SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.framework.selectors import SELECTORS
from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_graph
from repro.graph.partition import HashPartitioner, RangePartitioner
from repro.memstore.faults import FaultInjector, ReliableReadPath
from repro.memstore.replication import ReplicaPlacement
from repro.memstore.retry import RetryPolicy
from repro.memstore.store import PartitionedStore


def chi2_critical(df: int, z: float = 4.5) -> float:
    """Wilson-Hilferty approximation of a chi-squared quantile.

    ``z`` is the standard-normal deviate; 4.5 keeps the false-positive
    rate per test around 3e-6, so the statistical assertions are not
    flaky, while still catching any systematic bias.
    """
    term = 1.0 - 2.0 / (9.0 * df) + z * np.sqrt(2.0 / (9.0 * df))
    return df * term**3


def star_graph(degree: int, attr_len: int = 4) -> CSRGraph:
    """Node 0 has neighbors 1..degree; the leaves are isolated."""
    num_nodes = degree + 1
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    indptr[1:] = degree
    indices = np.arange(1, degree + 1, dtype=np.int64)
    attr = (
        np.arange(1, num_nodes + 1, dtype=np.float32)[:, None]
        * np.ones(attr_len, dtype=np.float32)
    )
    return CSRGraph(indptr=indptr, indices=indices, node_attr=attr)


def chain_graph(num_nodes: int = 10, attr_len: int = 4) -> CSRGraph:
    """Every node has exactly one neighbor (the next, mod n), so the
    sampled layers are deterministic regardless of RNG path."""
    indptr = np.arange(num_nodes + 1, dtype=np.int64)
    indices = ((np.arange(num_nodes) + 1) % num_nodes).astype(np.int64)
    attr = (
        np.arange(1, num_nodes + 1, dtype=np.float32)[:, None]
        * np.ones(attr_len, dtype=np.float32)
    )
    return CSRGraph(indptr=indptr, indices=indices, node_attr=attr)


def cache_stats(cache):
    return (
        cache.neighbor_hits,
        cache.neighbor_misses,
        cache.attribute_hits,
        cache.attribute_misses,
    )


class TestAccountingEquivalence:
    @pytest.mark.parametrize("selector_name", sorted(SELECTORS))
    @pytest.mark.parametrize("cache_nodes", [0, 5000])
    def test_summary_matches_replayed_reference(self, selector_name, cache_nodes):
        graph = power_law_graph(1500, 8.0, attr_len=12, seed=1)
        partitioner = HashPartitioner(4)
        roots = np.random.default_rng(0).integers(0, 1500, size=48)
        request = SampleRequest(roots=roots, fanouts=(5, 4), with_attributes=True)

        batched_store = PartitionedStore(graph, partitioner)
        batched_cache = HotNodeCache(cache_nodes) if cache_nodes else None
        sampler = MultiHopSampler(
            batched_store,
            seed=7,
            cache=batched_cache,
            worker_partition=0,
            selector=SELECTORS[selector_name],
            batched=True,
        )
        result = sampler.sample(request)

        replay_store = PartitionedStore(graph, partitioner)
        replay_cache = HotNodeCache(cache_nodes) if cache_nodes else None
        replay_reference(
            result, request, replay_store, worker_partition=0, cache=replay_cache
        )
        assert batched_store.summary == replay_store.summary
        if cache_nodes:
            assert cache_stats(batched_cache) == cache_stats(replay_cache)

    def test_summary_matches_with_edge_weights(self):
        base = power_law_graph(800, 6.0, attr_len=6, seed=2)
        rng = np.random.default_rng(3)
        graph = CSRGraph(
            indptr=base.indptr,
            indices=base.indices,
            node_attr=base.node_attr,
            edge_attr=rng.random(base.indices.size).astype(np.float32),
        )
        partitioner = HashPartitioner(3)
        roots = rng.integers(0, 800, size=32)
        request = SampleRequest(roots=roots, fanouts=(4, 3), with_attributes=True)
        store = PartitionedStore(graph, partitioner)
        sampler = MultiHopSampler(
            store,
            seed=9,
            worker_partition=1,
            selector=SELECTORS["weighted"],
            batched=True,
        )
        result = sampler.sample(request)
        replay_store = PartitionedStore(graph, partitioner)
        replay_reference(result, request, replay_store, worker_partition=1)
        assert store.summary == replay_store.summary

    def test_layer_shapes_and_membership(self):
        graph = power_law_graph(600, 7.0, attr_len=5, seed=4)
        store = PartitionedStore(graph, HashPartitioner(4))
        sampler = MultiHopSampler(store, seed=3, batched=True)
        request = SampleRequest(roots=np.array([1, 2, 3]), fanouts=(4, 3))
        result = sampler.sample(request)
        assert result.layers[0].shape == (3,)
        assert result.layers[1].shape == (3, 4)
        assert result.layers[2].shape == (3, 12)
        for hop in range(2):
            parents = result.layers[hop].reshape(-1)
            picks = result.layers[hop + 1].reshape(parents.size, -1)
            for i, parent in enumerate(parents):
                neighbors = graph.neighbors(int(parent))
                if neighbors.size == 0:
                    assert (picks[i] == parent).all()
                else:
                    assert np.isin(picks[i], neighbors).all()

    def test_attributes_match_node_attr(self):
        graph = star_graph(6)
        store = PartitionedStore(graph, HashPartitioner(2))
        sampler = MultiHopSampler(store, seed=0, batched=True)
        request = SampleRequest(
            roots=np.array([0, 0]), fanouts=(3,), with_attributes=True
        )
        result = sampler.sample(request)
        for layer, attrs in zip(result.layers, result.attributes):
            expected = graph.node_attr[layer.reshape(-1)]
            assert np.array_equal(attrs.reshape(-1, graph.attr_len), expected)

    def test_custom_selector_falls_back_per_position(self):
        def take_first(neighbors, fanout, rng):
            return np.repeat(neighbors[0], fanout)

        graph = power_law_graph(300, 5.0, attr_len=3, seed=5)
        store = PartitionedStore(graph, HashPartitioner(2))
        sampler = MultiHopSampler(store, seed=0, selector=take_first, batched=True)
        result = sampler.sample(SampleRequest(roots=np.array([7, 9]), fanouts=(4,)))
        for i, root in enumerate((7, 9)):
            neighbors = graph.neighbors(root)
            expected = neighbors[0] if neighbors.size else root
            assert (result.layers[1][i] == expected).all()

    def test_zero_degree_roots_self_loop(self):
        graph = star_graph(5)  # leaves 1..5 are isolated
        store = PartitionedStore(graph, HashPartitioner(2))
        sampler = MultiHopSampler(store, seed=0, batched=True)
        result = sampler.sample(
            SampleRequest(roots=np.array([2, 4]), fanouts=(3,))
        )
        assert (result.layers[1] == np.array([[2], [4]])).all()


class TestStatisticalEquivalence:
    @pytest.mark.parametrize("selector_name", ["uniform", "streaming"])
    @pytest.mark.parametrize("batched", [False, True])
    def test_uniform_marginals(self, selector_name, batched):
        # Degree divisible by fanout: both selectors have an exactly
        # uniform per-neighbor marginal, so one chi-squared test covers
        # both. 200 repetitions x fanout 4 over 12 neighbors.
        degree, fanout, repeats = 12, 4, 200
        graph = star_graph(degree)
        store = PartitionedStore(graph, HashPartitioner(2))
        sampler = MultiHopSampler(
            store,
            seed=11,
            selector=SELECTORS[selector_name],
            batched=batched,
        )
        request = SampleRequest(
            roots=np.zeros(repeats, dtype=np.int64), fanouts=(fanout,)
        )
        picks = sampler.sample(request).layers[1].reshape(-1)
        observed = np.bincount(picks, minlength=degree + 1)[1:]
        expected = repeats * fanout / degree
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        assert chi2 < chi2_critical(degree - 1)

    @pytest.mark.parametrize("batched", [False, True])
    def test_weighted_marginals(self, batched):
        degree, fanout, repeats = 4, 5, 300
        base = star_graph(degree)
        weights = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        graph = CSRGraph(
            indptr=base.indptr,
            indices=base.indices,
            node_attr=base.node_attr,
            edge_attr=weights,
        )
        store = PartitionedStore(graph, HashPartitioner(2))
        sampler = MultiHopSampler(
            store, seed=13, selector=SELECTORS["weighted"], batched=batched
        )
        request = SampleRequest(
            roots=np.zeros(repeats, dtype=np.int64), fanouts=(fanout,)
        )
        picks = sampler.sample(request).layers[1].reshape(-1)
        observed = np.bincount(picks, minlength=degree + 1)[1:]
        expected = repeats * fanout * weights / weights.sum()
        chi2 = float(((observed - expected) ** 2 / expected).sum())
        assert chi2 < chi2_critical(degree - 1)


def make_fault_run(batched, cache_nodes=0, graph=None, kill=True):
    graph = graph if graph is not None else chain_graph(10)
    partitioner = RangePartitioner(2, graph.num_nodes)
    placement = ReplicaPlacement(num_partitions=2, replication_factor=1)
    injector = FaultInjector()
    # hedge=False + jitter_sigma=0 keeps the reliable path order-independent
    # so both sampler paths see identical per-read outcomes.
    path = ReliableReadPath(
        placement, RetryPolicy(hedge=False), injector, seed=0, jitter_sigma=0.0
    )
    if kill:
        injector.kill_replica(1, 0)
    store = PartitionedStore(graph, partitioner, reliability=path)
    cache = HotNodeCache(cache_nodes) if cache_nodes else None
    sampler = MultiHopSampler(
        store,
        seed=5,
        cache=cache,
        worker_partition=0,
        degraded_ok=True,
        batched=batched,
    )
    return sampler, store, cache, injector


class TestDegradedParity:
    @pytest.mark.parametrize("cache_nodes", [0, 100])
    def test_degraded_run_matches_reference(self, cache_nodes):
        request = SampleRequest(
            roots=np.array([0, 3, 7, 7, 8]), fanouts=(2, 2), with_attributes=True
        )
        ref_sampler, ref_store, ref_cache, _ = make_fault_run(False, cache_nodes)
        ref_result = ref_sampler.sample(request)
        bat_sampler, bat_store, bat_cache, _ = make_fault_run(True, cache_nodes)
        bat_result = bat_sampler.sample(request)
        # The chain graph pins the layers, so the two live runs are
        # directly comparable, down to every fault counter.
        for ref_layer, bat_layer in zip(ref_result.layers, bat_result.layers):
            assert np.array_equal(ref_layer, bat_layer)
        for ref_attr, bat_attr in zip(ref_result.attributes, bat_result.attributes):
            assert np.array_equal(ref_attr, bat_attr)
        assert ref_store.summary == bat_store.summary
        assert ref_sampler.degraded_fallbacks == bat_sampler.degraded_fallbacks
        ref_stats, bat_stats = ref_store.fault_stats, bat_store.fault_stats
        for field in ("reads", "attempts", "retries", "timeouts", "failed_reads"):
            assert getattr(ref_stats, field) == getattr(bat_stats, field)
        if cache_nodes:
            assert cache_stats(ref_cache) == cache_stats(bat_cache)

    @pytest.mark.parametrize("batched", [False, True])
    def test_degraded_reads_degrade_not_raise(self, batched):
        sampler, _store, _cache, _ = make_fault_run(batched)
        request = SampleRequest(
            roots=np.array([7, 8]), fanouts=(2,), with_attributes=True
        )
        result = sampler.sample(request)
        assert sampler.degraded_fallbacks > 0
        # Dead-shard roots degrade to self-loops and zero rows.
        assert (result.layers[1] == request.roots[:, None]).all()
        assert (result.attributes[1] == 0).all()


class TestCachePoisoningRegression:
    @pytest.mark.parametrize("batched", [False, True])
    def test_recovered_shard_serves_real_attributes(self, batched):
        """Kill shard -> sample -> restore -> real attributes again.

        Degraded zero rows must not be cached: before the fix the first
        degraded run poisoned HotNodeCache and kept serving zeros after
        the shard came back.
        """
        sampler, _store, cache, injector = make_fault_run(batched, cache_nodes=100)
        graph = sampler.store.graph
        request = SampleRequest(
            roots=np.array([7, 8]), fanouts=(1,), with_attributes=True
        )
        degraded = sampler.sample(request)
        assert (degraded.attributes[0] == 0).all()  # shard down: zero rows
        injector.restore_replica(1, 0)
        recovered = sampler.sample(request)
        expected = graph.node_attr[request.roots]
        assert np.array_equal(recovered.attributes[0], expected)
        assert (recovered.attributes[0] != 0).any()
        # And the cache now holds the real rows, not zeros.
        for root in request.roots:
            row = cache.get_attributes(int(root))
            assert row is not None and (row != 0).any()

    @pytest.mark.parametrize("batched", [False, True])
    def test_recovered_shard_serves_real_neighbors(self, batched):
        sampler, _store, cache, injector = make_fault_run(batched, cache_nodes=100)
        request = SampleRequest(roots=np.array([7]), fanouts=(2,))
        degraded = sampler.sample(request)
        assert (degraded.layers[1] == 7).all()  # self-loop fallback
        injector.restore_replica(1, 0)
        recovered = sampler.sample(request)
        assert (recovered.layers[1] == 8).all()  # chain: 7 -> 8
        assert cache.get_neighbors(7) is not None


class TestNegativeSample:
    def _sampler(self, batched=False, num_nodes=400, avg_degree=6.0):
        graph = power_law_graph(num_nodes, avg_degree, attr_len=2, seed=8)
        store = PartitionedStore(graph, HashPartitioner(2))
        return MultiHopSampler(store, seed=2, batched=batched)

    def test_rejects_neighbors_and_source(self):
        sampler = self._sampler()
        pairs = np.array([[3, 4], [10, 11], [50, 51]])
        out = sampler.negative_sample(NegativeSampleRequest(pairs=pairs, rate=20))
        assert out.shape == (3, 20)
        graph = sampler.store.graph
        for row, (src, _dst) in enumerate(pairs):
            forbidden = set(graph.neighbors(int(src)).tolist()) | {int(src)}
            assert not (set(out[row].tolist()) & forbidden)

    def test_draws_in_range(self):
        sampler = self._sampler()
        pairs = np.array([[1, 2]])
        out = sampler.negative_sample(NegativeSampleRequest(pairs=pairs, rate=64))
        assert ((0 <= out) & (out < sampler.store.graph.num_nodes)).all()

    def test_high_degree_source_terminates(self):
        # A source adjacent to most of the graph: the old draw-by-draw
        # loop degenerated here; the block sampler must still fill.
        num_nodes = 50
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        indptr[1:] = num_nodes - 2
        indices = np.arange(2, num_nodes, dtype=np.int64)
        graph = CSRGraph(indptr=indptr, indices=indices)
        store = PartitionedStore(graph, HashPartitioner(2))
        sampler = MultiHopSampler(store, seed=3)
        out = sampler.negative_sample(
            NegativeSampleRequest(pairs=np.array([[0, 1]]), rate=32)
        )
        # Only node 1 and node 0 itself... node 0 forbids {0, 2..49};
        # the sole legal negative is 1.
        assert (out == 1).all()

    def test_all_forbidden_escape(self):
        # Source adjacent to every node (including itself): the
        # historical escape accepts arbitrary draws instead of looping.
        num_nodes = 8
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        indptr[1:] = num_nodes
        indices = np.arange(num_nodes, dtype=np.int64)
        graph = CSRGraph(indptr=indptr, indices=indices)
        store = PartitionedStore(graph, HashPartitioner(2))
        sampler = MultiHopSampler(store, seed=4)
        out = sampler.negative_sample(
            NegativeSampleRequest(pairs=np.array([[0, 1]]), rate=16)
        )
        assert out.shape == (1, 16)
        assert ((0 <= out) & (out < num_nodes)).all()
