"""Tests for repro.riscv.cpu and repro.riscv.asm."""

import pytest

from repro.errors import ConfigurationError, DecodeError, SimulationError
from repro.riscv.asm import assemble
from repro.riscv.cpu import RiscvCpu


def run_program(source, **kwargs):
    cpu = RiscvCpu(**kwargs)
    cpu.load_program(assemble(source))
    cpu.run()
    return cpu


class TestArithmetic:
    def test_addi(self):
        cpu = run_program("addi x1, x0, 42\necall")
        assert cpu.registers[1] == 42

    def test_negative_immediate(self):
        cpu = run_program("addi x1, x0, -5\necall")
        assert cpu.registers[1] == 2**32 - 5  # two's complement

    def test_add_sub(self):
        cpu = run_program(
            "addi x1, x0, 10\naddi x2, x0, 3\nadd x3, x1, x2\nsub x4, x1, x2\necall"
        )
        assert cpu.registers[3] == 13
        assert cpu.registers[4] == 7

    def test_logic_ops(self):
        cpu = run_program(
            "addi x1, x0, 0b1100\naddi x2, x0, 0b1010\n"
            "and x3, x1, x2\nor x4, x1, x2\nxor x5, x1, x2\necall"
        )
        assert cpu.registers[3] == 0b1000
        assert cpu.registers[4] == 0b1110
        assert cpu.registers[5] == 0b0110

    def test_shifts(self):
        cpu = run_program(
            "addi x1, x0, -8\nslli x2, x1, 1\nsrli x3, x1, 1\nsrai x4, x1, 1\necall"
        )
        assert cpu.registers[2] == (2**32 - 16)
        assert cpu.registers[3] == (2**32 - 8) >> 1
        assert cpu.registers[4] == 2**32 - 4

    def test_slt(self):
        cpu = run_program(
            "addi x1, x0, -1\naddi x2, x0, 1\nslt x3, x1, x2\nsltu x4, x1, x2\necall"
        )
        assert cpu.registers[3] == 1  # signed: -1 < 1
        assert cpu.registers[4] == 0  # unsigned: 0xffffffff > 1

    def test_x0_is_hardwired_zero(self):
        cpu = run_program("addi x0, x0, 99\necall")
        assert cpu.registers[0] == 0


class TestControlFlow:
    def test_loop_sum(self):
        cpu = run_program(
            """
            addi x1, x0, 10
            addi x5, x0, 0
        loop:
            add x5, x5, x1
            addi x1, x1, -1
            bne x1, x0, loop
            ecall
            """
        )
        assert cpu.registers[5] == 55

    def test_beq_taken(self):
        cpu = run_program(
            "addi x1, x0, 7\naddi x2, x0, 7\nbeq x1, x2, skip\naddi x3, x0, 1\nskip:\necall"
        )
        assert cpu.registers[3] == 0

    def test_jal_and_jalr(self):
        cpu = run_program(
            """
            jal x1, target
            addi x2, x0, 99
            ecall
        target:
            addi x3, x0, 5
            jalr x0, x1, 0
            """
        )
        assert cpu.registers[3] == 5
        assert cpu.registers[2] == 99  # returned and continued

    def test_blt_bge(self):
        cpu = run_program(
            """
            addi x1, x0, -3
            addi x2, x0, 2
            blt x1, x2, less
            addi x3, x0, 1
        less:
            bge x2, x1, done
            addi x4, x0, 1
        done:
            ecall
            """
        )
        assert cpu.registers[3] == 0
        assert cpu.registers[4] == 0


class TestMemory:
    def test_load_store(self):
        cpu = run_program(
            "addi x1, x0, 1234\naddi x2, x0, 512\nsw x1, 0(x2)\nlw x3, 0(x2)\necall"
        )
        assert cpu.registers[3] == 1234

    def test_store_offset(self):
        cpu = run_program(
            "addi x1, x0, 7\naddi x2, x0, 600\nsw x1, 20(x2)\nlw x3, 20(x2)\necall"
        )
        assert cpu.registers[3] == 7

    def test_out_of_range_load(self):
        cpu = RiscvCpu(memory_bytes=1024)
        cpu.load_program(assemble("lw x1, 0(x2)\necall"))
        cpu.registers[2] = 2048
        with pytest.raises(SimulationError):
            cpu.run()

    def test_memory_validation(self):
        with pytest.raises(ConfigurationError):
            RiscvCpu(memory_bytes=10)  # not multiple of 4


class TestExecutionLimits:
    def test_cycle_counting(self):
        cpu = run_program("addi x1, x0, 1\necall")
        assert cpu.cycles >= 2
        assert cpu.instructions_retired == 2

    def test_runaway_guard(self):
        cpu = RiscvCpu()
        cpu.load_program(assemble("loop:\njal x0, loop"))
        with pytest.raises(SimulationError):
            cpu.run(max_instructions=100)

    def test_halted_cpu_cannot_step(self):
        cpu = run_program("ecall")
        with pytest.raises(SimulationError):
            cpu.step()


class TestAssembler:
    def test_unknown_mnemonic(self):
        with pytest.raises(DecodeError):
            assemble("frobnicate x1, x2")

    def test_bad_register(self):
        with pytest.raises(DecodeError):
            assemble("addi x99, x0, 1")

    def test_bad_immediate(self):
        with pytest.raises(DecodeError):
            assemble("addi x1, x0, banana")

    def test_comments_and_blanks(self):
        words = assemble("# only a comment\n\naddi x1, x0, 1 # trailing\necall")
        assert len(words) == 2

    def test_nop(self):
        cpu = run_program("nop\necall")
        assert cpu.instructions_retired == 2

    def test_hex_immediates(self):
        cpu = run_program("addi x1, x0, 0xff\necall")
        assert cpu.registers[1] == 255

    def test_label_forward_and_backward(self):
        words = assemble(
            "start:\naddi x1, x0, 1\nbne x1, x0, end\njal x0, start\nend:\necall"
        )
        assert len(words) == 4
