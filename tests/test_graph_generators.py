"""Tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import (
    erdos_renyi_graph,
    power_law_graph,
    scaled_synthesis,
)


class TestPowerLaw:
    def test_basic_shape(self):
        graph = power_law_graph(1000, 8.0, attr_len=16, seed=1)
        assert graph.num_nodes == 1000
        assert graph.attr_len == 16
        assert graph.num_edges == pytest.approx(8000, rel=0.1)

    def test_determinism(self):
        a = power_law_graph(500, 5.0, seed=7)
        b = power_law_graph(500, 5.0, seed=7)
        assert np.array_equal(a.indices, b.indices)

    def test_seed_changes_graph(self):
        a = power_law_graph(500, 5.0, seed=7)
        b = power_law_graph(500, 5.0, seed=8)
        assert not np.array_equal(a.indices, b.indices)

    def test_skewed_in_degree(self):
        """A power-law graph's in-degree must be far more skewed than
        uniform: the top 1% of nodes attract a large share of edges."""
        graph = power_law_graph(2000, 10.0, seed=3)
        in_degrees = np.bincount(graph.indices, minlength=2000)
        top = np.sort(in_degrees)[-20:].sum()
        assert top / graph.num_edges > 0.10

    def test_rejects_bad_exponent(self):
        with pytest.raises(ConfigurationError):
            power_law_graph(10, 2.0, exponent=1.0)

    def test_rejects_nonpositive_nodes(self):
        with pytest.raises(ConfigurationError):
            power_law_graph(0, 2.0)

    def test_rejects_negative_degree(self):
        with pytest.raises(ConfigurationError):
            power_law_graph(10, -1.0)

    def test_zero_degree_graph(self):
        graph = power_law_graph(10, 0.0, seed=0)
        assert graph.num_edges == 0

    def test_no_attrs_by_default(self):
        assert power_law_graph(10, 1.0).node_attr is None


class TestErdosRenyi:
    def test_uniform_in_degree(self):
        """ER in-degree should be much flatter than the power-law's."""
        graph = erdos_renyi_graph(2000, 10.0, seed=3)
        in_degrees = np.bincount(graph.indices, minlength=2000)
        top = np.sort(in_degrees)[-20:].sum()
        assert top / graph.num_edges < 0.05

    def test_average_degree(self):
        graph = erdos_renyi_graph(5000, 6.0, seed=2)
        assert graph.num_edges / graph.num_nodes == pytest.approx(6.0, rel=0.05)

    def test_attr_generation(self):
        graph = erdos_renyi_graph(100, 2.0, attr_len=8, seed=0)
        assert graph.node_attr.shape == (100, 8)
        assert graph.node_attr.dtype == np.float32


class TestScaledSynthesis:
    def test_scales_counts(self):
        base = power_law_graph(200, 4.0, seed=1)
        big = scaled_synthesis(base, 5, seed=2)
        assert big.num_nodes == 1000
        assert big.num_edges == base.num_edges * 5

    def test_preserves_degree_distribution(self):
        base = power_law_graph(300, 6.0, seed=1)
        big = scaled_synthesis(base, 4, seed=2)
        assert np.array_equal(
            np.tile(base.degrees(), 4), big.degrees()
        )

    def test_rewires_across_blocks(self):
        base = power_law_graph(200, 8.0, seed=1)
        big = scaled_synthesis(base, 4, seed=2)
        n = base.num_nodes
        # Edge sources are in block src//n; roughly 10% of destinations
        # should land in a different block.
        src_blocks = np.repeat(np.arange(big.num_nodes) // n, big.degrees())
        dst_blocks = big.indices // n
        cross = np.mean(src_blocks != dst_blocks)
        assert 0.02 < cross < 0.25

    def test_scale_one_keeps_structure(self):
        base = power_law_graph(100, 3.0, seed=1)
        same = scaled_synthesis(base, 1, seed=2)
        assert np.array_equal(base.indices, same.indices)

    def test_attr_len_override(self):
        base = power_law_graph(50, 2.0, attr_len=4, seed=1)
        big = scaled_synthesis(base, 2, attr_len=9, seed=2)
        assert big.attr_len == 9

    def test_attr_len_inherits(self):
        base = power_law_graph(50, 2.0, attr_len=4, seed=1)
        big = scaled_synthesis(base, 2, seed=2)
        assert big.attr_len == 4

    def test_rejects_bad_scale(self):
        base = power_law_graph(10, 1.0, seed=0)
        with pytest.raises(ConfigurationError):
            scaled_synthesis(base, 0)
