"""Tests for repro.serving.backends (software + AxE wrappers)."""

import numpy as np
import pytest

from repro.axe.commands import sample_command
from repro.axe.engine import AxeEngine, EngineConfig
from repro.errors import ConfigurationError
from repro.framework.sampler import MultiHopSampler
from repro.graph.generators import power_law_graph
from repro.graph.partition import HashPartitioner
from repro.memstore.store import PartitionedStore
from repro.serving.backends import (
    HardwareBackend,
    SoftwareBackend,
    nodes_per_root,
)


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(400, 6.0, attr_len=4, seed=0)


@pytest.fixture
def sampler(graph):
    return MultiHopSampler(PartitionedStore(graph, HashPartitioner(2)), seed=0)


@pytest.fixture
def engine(graph):
    return AxeEngine(graph, EngineConfig(num_cores=1, output_link=None))


class TestNodesPerRoot:
    def test_matches_geometric_sum(self):
        assert nodes_per_root((5, 5)) == 1 + 5 + 25
        assert nodes_per_root((10,)) == 11
        assert nodes_per_root(()) == 1


class TestSoftwareBackend:
    def test_functional_payload(self, sampler):
        backend = SoftwareBackend(sampler, functional=True)
        result = backend.execute(np.array([1, 2, 3]), (4, 2))
        assert result.payload is not None
        assert result.payload.layers[2].shape == (3, 8)
        assert result.service_s > 0

    def test_timing_only(self, sampler):
        backend = SoftwareBackend(sampler, functional=False)
        result = backend.execute(np.array([1, 2]), (4,))
        assert result.payload is None
        expected = backend.base_overhead_s + 2 * 5 * backend.per_key_s / backend.parallelism
        assert result.service_s == pytest.approx(expected)

    def test_service_time_scales_with_batch(self, sampler):
        backend = SoftwareBackend(sampler, functional=False)
        small = backend.execute(np.array([1]), (5, 5)).service_s
        large = backend.execute(np.arange(16), (5, 5)).service_s
        assert large > small

    def test_validation(self, sampler):
        with pytest.raises(ConfigurationError):
            SoftwareBackend(sampler, concurrency=0)
        with pytest.raises(ConfigurationError):
            SoftwareBackend(sampler, per_key_s=0)
        with pytest.raises(ConfigurationError):
            SoftwareBackend(sampler, parallelism=0)


class TestHardwareBackend:
    def test_functional_runs_engine(self, engine):
        backend = HardwareBackend(engine, functional=True)
        result = backend.execute(np.array([1, 2, 3, 4]), (3, 2))
        assert set(result.payload.keys()) == {1, 2, 3, 4}
        assert result.service_s > backend.dispatch_overhead_s

    def test_timing_only_is_calibrated(self, engine):
        backend = HardwareBackend(engine, functional=False)
        small = backend.execute(np.arange(4), (3, 2)).service_s
        large = backend.execute(np.arange(32), (3, 2)).service_s
        assert small > 0
        assert large > small
        # Model agrees with a measured run within 2x either way.
        _res, stats = engine.run(sample_command(np.arange(32), (3, 2)))
        measured = backend.dispatch_overhead_s + stats.elapsed_s
        assert 0.5 * measured < large < 2.0 * measured

    def test_calibration_cached_per_fanouts(self, engine):
        backend = HardwareBackend(engine, functional=False)
        backend.execute(np.arange(4), (3, 2))
        backend.execute(np.arange(4), (2, 2))
        assert set(backend._calibration) == {(3, 2), (2, 2)}

    def test_fault_hook(self, engine):
        backend = HardwareBackend(engine)
        assert backend.healthy
        backend.fail()
        assert not backend.healthy
        backend.restore()
        assert backend.healthy

    def test_validation(self, engine):
        with pytest.raises(ConfigurationError):
            HardwareBackend(engine, concurrency=0)
        with pytest.raises(ConfigurationError):
            HardwareBackend(engine, dispatch_overhead_s=0)


class TestBatchedSoftwareBackend:
    def test_batched_sampler_cuts_per_key_cost(self, graph):
        store = PartitionedStore(graph, HashPartitioner(2))
        batched = MultiHopSampler(store, seed=0, batched=True)
        roots = np.arange(16, dtype=np.int64)
        slow = SoftwareBackend(
            MultiHopSampler(store, seed=0), functional=False, batched_speedup=5.0
        )
        fast = SoftwareBackend(batched, functional=False, batched_speedup=5.0)
        slow_s = slow.execute(roots, (4, 4)).service_s
        fast_s = fast.execute(roots, (4, 4)).service_s
        assert fast_s < slow_s
        keys = 16 * nodes_per_root((4, 4))
        expected = fast.base_overhead_s + keys * (fast.per_key_s / 5.0) / fast.parallelism
        assert fast_s == pytest.approx(expected)

    def test_invalid_speedup_rejected(self, sampler):
        with pytest.raises(ConfigurationError):
            SoftwareBackend(sampler, batched_speedup=0.5)
