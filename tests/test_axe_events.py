"""Tests for repro.axe.events (the DES kernel)."""

import pytest

from repro.axe.events import Simulator
from repro.errors import SimulationError


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(2.0, lambda: order.append("b"))
        sim.at(1.0, lambda: order.append("a"))
        sim.at(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_tiebreak(self):
        sim = Simulator()
        order = []
        sim.at(1.0, lambda: order.append(1))
        sim.at(1.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.at(5.0, lambda: sim.after(2.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [7.0]

    def test_now_advances(self):
        sim = Simulator()
        sim.at(4.5, lambda: None)
        final = sim.run()
        assert final == 4.5
        assert sim.now == 4.5

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.at(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending() == 1

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().after(-1.0, lambda: None)

    def test_event_cascade(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100:
                sim.after(0.001, tick)

        sim.after(0.0, tick)
        sim.run()
        assert count[0] == 100
        assert sim.events_processed == 100

    def test_livelock_guard(self):
        sim = Simulator()

        def forever():
            sim.after(0.0, forever)

        sim.after(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)
