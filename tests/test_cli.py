"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_footprint(self, capsys):
        assert main(["footprint"]) == 0
        out = capsys.readouterr().out
        assert "syn" in out and "min_servers" in out

    def test_scaling(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_access_mix(self, capsys):
        assert main(["access-mix", "--max-nodes", "1500"]) == 0
        out = capsys.readouterr().out
        assert "structure%" in out

    def test_e2e(self, capsys):
        assert main(["e2e"]) == 0
        out = capsys.readouterr().out
        assert "sampling" in out and "storage ratio" in out

    def test_poc(self, capsys):
        assert main(["poc", "--max-nodes", "3000"]) == 0
        out = capsys.readouterr().out
        assert "geomean" in out

    def test_validate(self, capsys):
        assert main(["validate", "--max-nodes", "3000"]) == 0
        out = capsys.readouterr().out
        assert "mean error" in out

    def test_cost(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "ecs-re-x" in out

    def test_dse(self, capsys):
        assert main(["dse"]) == 0
        out = capsys.readouterr().out
        assert "mem-opt.tc" in out

    def test_sampler(self, capsys):
        assert main(["sampler"]) == 0
        out = capsys.readouterr().out
        assert "LUT saving" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_parser_lists_all_commands(self):
        parser = build_parser()
        help_text = parser.format_help()
        for command in (
            "footprint", "scaling", "access-mix", "e2e", "poc",
            "validate", "cost", "dse", "sampler",
        ):
            assert command in help_text


class TestExtraCommands:
    def test_system(self, capsys):
        from repro.cli import main

        assert main(["system", "--max-nodes", "2000"]) == 0
        out = capsys.readouterr().out
        assert "cards" in out and "remote" in out

    def test_service(self, capsys):
        from repro.cli import main

        assert main(["service"]) == 0
        out = capsys.readouterr().out
        assert "deadline" in out


class TestServeCommand:
    def test_serve_smoke(self, capsys):
        from repro.cli import main

        assert main(["serve", "--duration-s", "0.5", "--max-nodes", "1200",
                     "--no-functional"]) == 0
        out = capsys.readouterr().out
        assert "p99 latency" in out
        assert "shed rate" in out
        assert "batch occupancy" in out

    def test_serve_overload_and_failure(self, capsys):
        from repro.cli import main

        assert main(["serve", "--duration-s", "0.3", "--max-nodes", "1200",
                     "--overload", "2.0", "--fail-hardware-at", "0.15",
                     "--no-functional"]) == 0
        out = capsys.readouterr().out
        assert "2.0x offered/provisioned" in out
        assert "backend software" in out

    def test_parser_lists_serve(self):
        from repro.cli import build_parser

        assert "serve" in build_parser().format_help()


class TestFaultsCommand:
    def test_faults_clean(self, capsys):
        assert main(["faults", "--max-nodes", "600"]) == 0
        out = capsys.readouterr().out
        assert "replicas: 2x" in out
        assert "retries 0" in out
        assert "failed reads 0" in out

    def test_faults_kill_primary(self, capsys):
        assert main(["faults", "--max-nodes", "600",
                     "--kill-partition", "1"]) == 0
        out = capsys.readouterr().out
        assert "killed: partition 1 replica 0" in out
        assert "failovers" in out

    def test_faults_lossy_no_hedge(self, capsys):
        assert main(["faults", "--max-nodes", "600", "--loss-rate", "0.1",
                     "--no-hedge"]) == 0
        out = capsys.readouterr().out
        assert "hedging: off" in out
        assert "loss rate: 10.0%" in out

    def test_parser_lists_faults(self):
        assert "faults" in build_parser().format_help()


class TestBenchSamplerCommand:
    def test_bench_sampler_smoke(self, capsys):
        assert main([
            "bench-sampler", "--max-nodes", "1200", "--batch-size", "32",
            "--fanouts", "4,4", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "accounting match (replayed reference): yes" in out

    def test_bench_sampler_with_cache(self, capsys):
        assert main([
            "bench-sampler", "--max-nodes", "800", "--batch-size", "16",
            "--fanouts", "3,3", "--repeats", "1", "--cache-nodes", "4000",
        ]) == 0
        assert "accounting match (replayed reference): yes" in capsys.readouterr().out

    def test_parser_lists_bench_sampler(self):
        assert "bench-sampler" in build_parser().format_help()


class TestMutateBenchCommand:
    def test_mutate_bench_smoke(self, capsys):
        assert main(["mutate-bench", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "consistency (one epoch per sample): yes" in out
        assert "rate-0 parity vs static store: yes" in out
        assert "rate-0 replay-harness parity:  yes" in out
        assert "torn-read probe (mutation mid-sample): ok" in out

    def test_mutate_bench_json(self, capsys):
        import json

        assert main(["mutate-bench", "--smoke", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["sweep"]) == 3
        assert report["consistent_epochs"] is True
        assert report["rate0_static_match"] is True
        assert report["rate0_replay_match"] is True
        assert report["torn_read_ok"] is True
        rates = [row["rate"] for row in report["sweep"]]
        assert rates == sorted(rates) and rates[0] == 0
        # Mutating rates actually hit the append log.
        assert all(row["delta_hits"] > 0 for row in report["sweep"][1:])

    def test_mutate_bench_with_cache(self, capsys):
        assert main([
            "mutate-bench", "--smoke", "--cache-nodes", "512", "--json",
        ]) == 0
        import json

        report = json.loads(capsys.readouterr().out)
        assert report["rate0_static_match"] is True
        assert all(
            row["cache_invalidations"] > 0 for row in report["sweep"][1:]
        )

    def test_mutate_bench_needs_three_rates(self):
        with pytest.raises(SystemExit):
            main(["mutate-bench", "--rates", "0,8", "--max-nodes", "600"])

    def test_parser_lists_mutate_bench(self):
        assert "mutate-bench" in build_parser().format_help()


class TestServiceNaNGuard:
    def test_zero_batch_runs_print_na(self, capsys, monkeypatch):
        import repro.framework.service as service_mod
        from repro.framework.service import ServiceReport

        empty = ServiceReport(
            batch_latencies_s=[],
            total_time_s=0.0,
            total_batches=0,
            server_max_queue=0,
        )
        monkeypatch.setattr(
            service_mod, "run_service", lambda config: empty
        )
        assert main(["service"]) == 0
        out = capsys.readouterr().out
        assert "n/a (no quiet batches)" in out
        assert "nan" not in out.lower()

    def test_zero_loaded_batches_print_na(self, capsys, monkeypatch):
        import repro.framework.service as service_mod
        from repro.framework.service import ServiceConfig, ServiceReport

        real_run = service_mod.run_service

        def run(config: ServiceConfig):
            if config.num_workers > 1:  # the loaded run
                return ServiceReport(
                    batch_latencies_s=[],
                    total_time_s=0.0,
                    total_batches=0,
                    server_max_queue=0,
                )
            return real_run(config)

        monkeypatch.setattr(service_mod, "run_service", run)
        assert main(["service"]) == 0
        out = capsys.readouterr().out
        assert "n/a (no loaded batches)" in out
        assert "nan" not in out.lower()


class TestLayoutBench:
    def test_layout_bench_smoke(self, capsys):
        assert main(["layout-bench", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "locality win: yes" in out
        assert "replay parity (layout path): yes" in out

    def test_layout_bench_json(self, capsys):
        import json

        assert main(["layout-bench", "--smoke", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["locality_win"] is True
        assert report["replay_match"] is True
        assert report["crossing_reduction"] > 0
        assert report["run_length_gain"] > 1.0
        assert (
            report["layout"]["gather_nodes"]
            == report["baseline"]["gather_nodes"]
        )
        if not report["kernels"]["compiled_available"]:
            assert "numba" in report["kernels"]["reason"]
        else:
            assert report["kernels"]["bit_identical"] is True

    def test_parser_lists_layout_bench(self):
        assert "layout-bench" in build_parser().format_help()
