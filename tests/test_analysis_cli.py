"""``repro lint`` CLI tests: exit codes, JSON output, --explain /
--list-rules, the --update-baseline round trip, and the CI guarantee
that a deliberately introduced violation fails the run."""

import argparse
import io
import json
import shutil
from pathlib import Path

import pytest

import repro
from repro.analysis.lintcli import add_lint_arguments, main, run_lint

SRC_ROOT = Path(repro.__file__).resolve().parent


def lint(argv, cwd_baseline=None):
    """Parse ``argv`` like the CLI and run; return (exit_code, output)."""
    parser = argparse.ArgumentParser()
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    out = io.StringIO()
    code = run_lint(args, out=out)
    return code, out.getvalue()


@pytest.fixture
def empty_baseline(tmp_path):
    path = tmp_path / "lint-baseline.json"
    path.write_text('{"version": 1, "entries": []}', encoding="utf-8")
    return path


# ------------------------------------------------------------ happy paths
def test_repo_is_lint_clean():
    code, output = lint([str(SRC_ROOT)])
    assert code == 0, output
    assert "lint: clean" in output


def test_json_report_shape(tmp_path, empty_baseline):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n", encoding="utf-8")
    code, output = lint(
        [str(target), "--format", "json", "--baseline", str(empty_baseline)]
    )
    assert code == 0
    report = json.loads(output)
    assert report["exit_code"] == 0
    assert report["files_scanned"] == 1
    assert report["findings"] == []
    assert report["stale_baseline"] == []


def test_new_finding_exits_one(tmp_path, empty_baseline):
    target = tmp_path / "bad.py"
    target.write_text("import random\n", encoding="utf-8")
    code, output = lint([str(target), "--baseline", str(empty_baseline)])
    assert code == 1
    assert "[det-rng]" in output


def test_stale_baseline_exits_one(tmp_path, empty_baseline):
    stale = {
        "version": 1,
        "entries": [
            {
                "rule": "det-rng",
                "path": "repro/ghost.py",
                "snippet": "import random",
                "message": "gone",
                "count": 1,
            }
        ],
    }
    empty_baseline.write_text(json.dumps(stale), encoding="utf-8")
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n", encoding="utf-8")
    code, output = lint([str(target), "--baseline", str(empty_baseline)])
    assert code == 1
    assert "stale baseline entry" in output


def test_update_baseline_round_trips(tmp_path):
    target = tmp_path / "bad.py"
    target.write_text("import random\n", encoding="utf-8")
    baseline = tmp_path / "lint-baseline.json"

    code, output = lint(
        [str(target), "--update-baseline", "--baseline", str(baseline)]
    )
    assert code == 0
    assert "baseline updated: 1 finding(s)" in output

    code, output = lint([str(target), "--baseline", str(baseline)])
    assert code == 0, output
    assert "1 baselined" in output

    # Fixing the violation leaves a stale entry, which fails the run
    # until the baseline is refreshed.
    target.write_text("x = 1\n", encoding="utf-8")
    code, _ = lint([str(target), "--baseline", str(baseline)])
    assert code == 1
    code, _ = lint(
        [str(target), "--update-baseline", "--baseline", str(baseline)]
    )
    assert code == 0
    code, output = lint([str(target), "--baseline", str(baseline)])
    assert code == 0, output


# ---------------------------------------------------- informational modes
def test_explain_prints_fixture_pair():
    code, output = lint(["--explain", "det-rng"])
    assert code == 0
    assert "det-rng" in output
    assert "fires on" in output and "clean" in output
    assert "default_rng" in output


def test_explain_unknown_rule_exits_one():
    code, output = lint(["--explain", "not-a-rule"])
    assert code == 1
    assert "unknown rule id" in output


def test_list_rules_names_the_rule_pack():
    code, output = lint(["--list-rules"])
    assert code == 0
    for rule_id in (
        "det-wallclock",
        "det-rng",
        "units-magic",
        "acct-mutation",
        "except-swallow",
        "mutable-default",
        "sim-clock",
    ):
        assert rule_id in output


def test_standalone_main_entry_point(tmp_path, empty_baseline):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n", encoding="utf-8")
    assert main([str(target), "--baseline", str(empty_baseline)]) == 0


# ------------------------------------------------------- the CI guarantee
@pytest.mark.parametrize(
    "payload, rule",
    [
        ("rng = np.random.default_rng()\n", "det-rng"),
        ("import time\n\n_T0 = time.time()\n", "det-wallclock"),
    ],
)
def test_injected_violation_fails_lint(tmp_path, empty_baseline, payload, rule):
    """Introducing a seedless RNG or wall-clock call into a copy of
    ``repro/framework`` makes ``repro lint`` exit nonzero — the check CI
    relies on."""
    framework = tmp_path / "repro" / "framework"
    framework.parent.mkdir()
    shutil.copytree(SRC_ROOT / "framework", framework)

    sampler = framework / "sampler.py"
    source = sampler.read_text(encoding="utf-8")
    assert "import numpy as np" in source
    sampler.write_text(source + "\n" + payload, encoding="utf-8")

    code, output = lint(
        [str(framework), "--baseline", str(empty_baseline)]
    )
    assert code == 1
    assert f"[{rule}]" in output
    assert "repro/framework/sampler.py" in output

    # The pristine copy minus the injection is clean.
    sampler.write_text(source, encoding="utf-8")
    code, output = lint([str(framework), "--baseline", str(empty_baseline)])
    assert code == 0, output
