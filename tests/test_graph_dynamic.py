"""Tests for repro.graph.dynamic."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, simulate_growth
from repro.graph.generators import power_law_graph


@pytest.fixture
def graph():
    base = CSRGraph.from_edges(4, [(0, 1), (0, 2), (1, 3)])
    return DynamicGraph(base)


class TestQueries:
    def test_initial_state(self, graph):
        assert graph.num_nodes == 4
        assert graph.num_edges == 3
        assert graph.delta_edges == 0

    def test_neighbors_base_only(self, graph):
        assert sorted(graph.neighbors(0).tolist()) == [1, 2]

    def test_degree_combines_base_and_delta(self, graph):
        graph.add_edge(0, 3)
        assert graph.degree(0) == 3
        assert graph.neighbors(0).tolist() == [1, 2, 3]

    def test_out_of_range(self, graph):
        with pytest.raises(GraphError):
            graph.neighbors(4)
        with pytest.raises(GraphError):
            graph.add_edge(0, 9)


class TestUpdates:
    def test_add_node(self, graph):
        new = graph.add_node()
        assert new == 4
        assert graph.num_nodes == 5
        assert graph.neighbors(new).size == 0

    def test_add_edge_to_new_node(self, graph):
        new = graph.add_node()
        graph.add_edge(2, new)
        assert graph.neighbors(2).tolist() == [new]

    def test_add_edges_bulk(self, graph):
        graph.add_edges([(0, 3), (3, 0), (3, 1)])
        assert graph.num_edges == 6
        assert graph.degree(3) == 2

    def test_delta_grows_and_compacts(self):
        base = CSRGraph.from_edges(3, [(0, 1)])
        graph = DynamicGraph(base, compact_threshold=5)
        for _ in range(5):
            graph.add_edge(1, 2)
        assert graph.compactions == 1
        assert graph.delta_edges == 0
        assert graph.degree(1) == 5

    def test_compaction_preserves_neighbors(self):
        base = power_law_graph(100, 4.0, seed=0)
        graph = DynamicGraph(base, compact_threshold=10_000)
        rng = np.random.default_rng(1)
        added = [(int(rng.integers(0, 100)), int(rng.integers(0, 100))) for _ in range(50)]
        graph.add_edges(added)
        before = {node: sorted(graph.neighbors(node).tolist()) for node in range(100)}
        graph.compact()
        after = {node: sorted(graph.neighbors(node).tolist()) for node in range(100)}
        assert before == after

    def test_snapshot_is_csr(self, graph):
        graph.add_edge(0, 3)
        snapshot = graph.snapshot()
        assert isinstance(snapshot, CSRGraph)
        assert snapshot.num_edges == 4
        assert graph.delta_edges == 0

    def test_snapshot_includes_new_nodes(self, graph):
        new = graph.add_node()
        graph.add_edge(new, 0)
        snapshot = graph.snapshot()
        assert snapshot.num_nodes == 5
        assert snapshot.neighbors(new).tolist() == [0]

    def test_version_increments(self, graph):
        assert graph.version == 0
        graph.add_edge(0, 3)
        graph.compact()
        assert graph.version == 1

    def test_compact_noop_when_clean(self, graph):
        graph.compact()
        assert graph.version == 0  # nothing to do

    def test_threshold_validation(self, graph):
        with pytest.raises(ConfigurationError):
            DynamicGraph(CSRGraph.from_edges(1, []), compact_threshold=0)


class TestGrowthSimulation:
    def test_growth_adds_edges_and_nodes(self):
        graph = DynamicGraph(CSRGraph.from_edges(10, [(0, 1)]))
        simulate_growth(graph, 500, new_node_probability=0.1, seed=0)
        assert graph.num_edges == 501
        assert graph.num_nodes > 10

    def test_growth_preferential(self):
        """Early nodes accumulate more in-edges (Zipf-biased trace)."""
        graph = DynamicGraph(CSRGraph.from_edges(50, []))
        simulate_growth(graph, 2000, new_node_probability=0.0, seed=1)
        snapshot = graph.snapshot()
        in_degrees = np.bincount(snapshot.indices, minlength=50)
        assert in_degrees[:5].sum() > in_degrees[-5:].sum()

    def test_sampling_over_snapshot(self):
        """The dynamic graph feeds the standard sampler via snapshot."""
        from repro.framework.requests import SampleRequest
        from repro.framework.sampler import MultiHopSampler
        from repro.graph.partition import HashPartitioner
        from repro.memstore.store import PartitionedStore

        graph = DynamicGraph(power_law_graph(200, 5.0, attr_len=0, seed=0))
        simulate_growth(graph, 300, new_node_probability=0.0, seed=2)
        snapshot = graph.snapshot()
        # Attach fresh attributes for the sampler's attribute path.
        snapshot = CSRGraph(
            snapshot.indptr,
            snapshot.indices,
            node_attr=np.zeros((snapshot.num_nodes, 4), dtype=np.float32),
        )
        store = PartitionedStore(snapshot, HashPartitioner(2))
        sampler = MultiHopSampler(store, seed=0)
        result = sampler.sample(
            SampleRequest(roots=np.arange(8), fanouts=(4,))
        )
        assert result.layers[1].shape == (8, 4)

    def test_growth_validation(self):
        graph = DynamicGraph(CSRGraph.from_edges(1, []))
        with pytest.raises(ConfigurationError):
            simulate_growth(graph, 10, new_node_probability=1.5)
