"""Tests for repro.graph.dynamic."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphError
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph, simulate_growth
from repro.graph.generators import power_law_graph


@pytest.fixture
def graph():
    base = CSRGraph.from_edges(4, [(0, 1), (0, 2), (1, 3)])
    return DynamicGraph(base)


class TestQueries:
    def test_initial_state(self, graph):
        assert graph.num_nodes == 4
        assert graph.num_edges == 3
        assert graph.delta_edges == 0

    def test_neighbors_base_only(self, graph):
        assert sorted(graph.neighbors(0).tolist()) == [1, 2]

    def test_degree_combines_base_and_delta(self, graph):
        graph.add_edge(0, 3)
        assert graph.degree(0) == 3
        assert graph.neighbors(0).tolist() == [1, 2, 3]

    def test_out_of_range(self, graph):
        with pytest.raises(GraphError):
            graph.neighbors(4)
        with pytest.raises(GraphError):
            graph.add_edge(0, 9)


class TestUpdates:
    def test_add_node(self, graph):
        new = graph.add_node()
        assert new == 4
        assert graph.num_nodes == 5
        assert graph.neighbors(new).size == 0

    def test_add_edge_to_new_node(self, graph):
        new = graph.add_node()
        graph.add_edge(2, new)
        assert graph.neighbors(2).tolist() == [new]

    def test_add_edges_bulk(self, graph):
        graph.add_edges([(0, 3), (3, 0), (3, 1)])
        assert graph.num_edges == 6
        assert graph.degree(3) == 2

    def test_delta_grows_and_compacts(self):
        base = CSRGraph.from_edges(3, [(0, 1)])
        graph = DynamicGraph(base, compact_threshold=5)
        for _ in range(5):
            graph.add_edge(1, 2)
        assert graph.compactions == 1
        assert graph.delta_edges == 0
        assert graph.degree(1) == 5

    def test_compaction_preserves_neighbors(self):
        base = power_law_graph(100, 4.0, seed=0)
        graph = DynamicGraph(base, compact_threshold=10_000)
        rng = np.random.default_rng(1)
        added = [(int(rng.integers(0, 100)), int(rng.integers(0, 100))) for _ in range(50)]
        graph.add_edges(added)
        before = {node: sorted(graph.neighbors(node).tolist()) for node in range(100)}
        graph.compact()
        after = {node: sorted(graph.neighbors(node).tolist()) for node in range(100)}
        assert before == after

    def test_snapshot_is_csr(self, graph):
        graph.add_edge(0, 3)
        snapshot = graph.snapshot()
        assert isinstance(snapshot, CSRGraph)
        assert snapshot.num_edges == 4
        assert graph.delta_edges == 0

    def test_snapshot_includes_new_nodes(self, graph):
        new = graph.add_node()
        graph.add_edge(new, 0)
        snapshot = graph.snapshot()
        assert snapshot.num_nodes == 5
        assert snapshot.neighbors(new).tolist() == [0]

    def test_version_increments(self, graph):
        assert graph.version == 0
        graph.add_edge(0, 3)
        graph.compact()
        assert graph.version == 1

    def test_compact_noop_when_clean(self, graph):
        graph.compact()
        assert graph.version == 0  # nothing to do

    def test_threshold_validation(self, graph):
        with pytest.raises(ConfigurationError):
            DynamicGraph(CSRGraph.from_edges(1, []), compact_threshold=0)


class TestEpochs:
    def test_epoch_bumps_on_every_mutation(self, graph):
        assert graph.epoch == 0
        graph.add_edge(0, 3)
        assert graph.epoch == 1
        graph.add_node()
        assert graph.epoch == 2
        graph.add_edges([(1, 2), (2, 0)])
        assert graph.epoch == 4

    def test_compact_bumps_version_not_epoch(self, graph):
        graph.add_edge(0, 3)
        epoch_before = graph.epoch
        graph.compact()
        assert graph.epoch == epoch_before  # same content, new layout
        assert graph.version == 1

    def test_auto_compaction_keeps_epoch_monotonic(self):
        graph = DynamicGraph(CSRGraph.from_edges(3, [(0, 1)]), compact_threshold=4)
        epochs = []
        for _ in range(10):
            graph.add_edge(1, 2)
            epochs.append(graph.epoch)
        assert epochs == sorted(epochs)
        assert epochs[-1] == 10
        assert graph.compactions == 2


class TestGraphView:
    def test_view_pins_epoch_across_mutation(self, graph):
        view = graph.view()
        graph.add_edge(0, 3)
        assert view.epoch == 0
        assert view.neighbors(0).tolist() == [1, 2]
        assert graph.neighbors(0).tolist() == [1, 2, 3]

    def test_view_pins_delta_prefix(self, graph):
        graph.add_edge(0, 3)
        view = graph.view()
        graph.add_edge(0, 0)
        assert view.neighbors(0).tolist() == [1, 2, 3]
        assert view.num_edges == 4

    def test_view_survives_compaction(self, graph):
        graph.add_edge(0, 3)
        view = graph.view()
        graph.compact()
        graph.add_edge(0, 0)
        assert view.neighbors(0).tolist() == [1, 2, 3]
        assert graph.neighbors(0).tolist() == [1, 2, 3, 0]

    def test_view_excludes_later_nodes(self, graph):
        view = graph.view()
        graph.add_node()
        assert view.num_nodes == 4
        with pytest.raises(GraphError):
            view.neighbors(4)

    def test_view_gather_matches_neighbors(self):
        base = power_law_graph(60, 4.0, seed=3)
        graph = DynamicGraph(base, compact_threshold=10_000)
        rng = np.random.default_rng(4)
        graph.add_edges(
            (int(rng.integers(0, 60)), int(rng.integers(0, 60)))
            for _ in range(40)
        )
        view = graph.view()
        nodes = list(range(60))
        values, offsets, base_deg, delta_deg = view.gather(nodes)
        for i, node in enumerate(nodes):
            block = values[offsets[i] : offsets[i + 1]]
            assert block.tolist() == view.neighbors(node).tolist()
            assert base_deg[i] + delta_deg[i] == block.size

    def test_view_attributes_cover_new_nodes(self):
        base = CSRGraph(
            np.array([0, 1, 1]),
            np.array([1]),
            node_attr=np.arange(4, dtype=np.float32).reshape(2, 2),
        )
        graph = DynamicGraph(base)
        graph.add_node(np.array([7.0, 8.0]))
        view = graph.view()
        rows = view.attributes([0, 2, 1])
        assert rows[1].tolist() == [7.0, 8.0]
        assert rows[0].tolist() == [0.0, 1.0]


class TestEdgeCases:
    def test_compaction_preserves_neighbor_order(self):
        """Base block first, then delta appends in insertion order."""
        base = CSRGraph.from_edges(5, [(0, 4), (0, 2)])
        graph = DynamicGraph(base, compact_threshold=10_000)
        base_block = graph.neighbors(0).tolist()
        graph.add_edges([(0, 3), (0, 1), (0, 3)])
        expected = base_block + [3, 1, 3]
        assert graph.neighbors(0).tolist() == expected
        graph.compact()
        assert graph.neighbors(0).tolist() == expected

    def test_node_only_growth_compacts(self, graph):
        graph.add_node()
        graph.add_node()
        graph.compact()  # no delta edges, but the base must grow
        assert graph.version == 1
        assert graph.base.num_nodes == 6
        assert graph.neighbors(5).size == 0

    def test_empty_base(self):
        graph = DynamicGraph(CSRGraph.from_edges(3, []))
        assert graph.num_edges == 0
        graph.add_edge(0, 2)
        assert graph.neighbors(0).tolist() == [2]
        snapshot = graph.snapshot()
        assert snapshot.num_edges == 1

    def test_auto_compaction_mid_add_edges(self):
        graph = DynamicGraph(CSRGraph.from_edges(4, []), compact_threshold=3)
        graph.add_edges([(0, 1), (0, 2), (0, 3), (1, 0), (1, 2)])
        assert graph.compactions == 1
        assert graph.delta_edges == 2
        assert graph.neighbors(0).tolist() == [1, 2, 3]
        assert graph.neighbors(1).tolist() == [0, 2]

    def test_compaction_preserves_node_attrs(self):
        base = CSRGraph(
            np.array([0, 1, 1]),
            np.array([1]),
            node_attr=np.ones((2, 3), dtype=np.float32),
        )
        graph = DynamicGraph(base)
        graph.add_node(np.full(3, 2.0))
        graph.add_edge(2, 0)
        merged = graph.snapshot()
        assert merged.node_attr.shape == (3, 3)
        assert merged.attributes([2])[0].tolist() == [2.0, 2.0, 2.0]

    def test_add_node_attr_validation(self):
        plain = DynamicGraph(CSRGraph.from_edges(2, []))
        with pytest.raises(ConfigurationError):
            plain.add_node(np.ones(3))
        attributed = DynamicGraph(
            CSRGraph(
                np.array([0, 0]),
                np.array([], dtype=np.int64),
                node_attr=np.ones((1, 2), dtype=np.float32),
            )
        )
        with pytest.raises(ConfigurationError):
            attributed.add_node(np.ones(5))


class TestGrowthSimulation:
    def test_growth_adds_edges_and_nodes(self):
        graph = DynamicGraph(CSRGraph.from_edges(10, [(0, 1)]))
        simulate_growth(graph, 500, new_node_probability=0.1, seed=0)
        assert graph.num_edges == 501
        assert graph.num_nodes > 10

    def test_growth_preferential(self):
        """Early nodes accumulate more in-edges (Zipf-biased trace)."""
        graph = DynamicGraph(CSRGraph.from_edges(50, []))
        simulate_growth(graph, 2000, new_node_probability=0.0, seed=1)
        snapshot = graph.snapshot()
        in_degrees = np.bincount(snapshot.indices, minlength=50)
        assert in_degrees[:5].sum() > in_degrees[-5:].sum()

    def test_sampling_over_snapshot(self):
        """The dynamic graph feeds the standard sampler via snapshot."""
        from repro.framework.requests import SampleRequest
        from repro.framework.sampler import MultiHopSampler
        from repro.graph.partition import HashPartitioner
        from repro.memstore.store import PartitionedStore

        graph = DynamicGraph(power_law_graph(200, 5.0, attr_len=0, seed=0))
        simulate_growth(graph, 300, new_node_probability=0.0, seed=2)
        snapshot = graph.snapshot()
        # Attach fresh attributes for the sampler's attribute path.
        snapshot = CSRGraph(
            snapshot.indptr,
            snapshot.indices,
            node_attr=np.zeros((snapshot.num_nodes, 4), dtype=np.float32),
        )
        store = PartitionedStore(snapshot, HashPartitioner(2))
        sampler = MultiHopSampler(store, seed=0)
        result = sampler.sample(
            SampleRequest(roots=np.arange(8), fanouts=(4,))
        )
        assert result.layers[1].shape == (8, 4)

    def test_growth_zipf_frequency(self):
        """Regression for the off-by-one: Zipf draws start at 1, so the
        most frequent draw must map to node 0 — not skip it entirely
        and pile onto node 1 (or worse, wrap num_nodes-1)."""
        num_nodes = 50
        graph = DynamicGraph(CSRGraph.from_edges(num_nodes, []))
        simulate_growth(graph, 5000, new_node_probability=0.0, seed=7)
        in_degrees = np.bincount(graph.snapshot().indices, minlength=num_nodes)
        # Node 0 receives the Zipf mass of draw==1 (~70% at a=1.8).
        assert in_degrees[0] == in_degrees.max()
        assert in_degrees[0] > 0.5 * in_degrees.sum()
        # Monotone-ish head: node 0 strictly dominates node 1, which
        # dominates the tail average.
        assert in_degrees[0] > in_degrees[1] > in_degrees[10:].mean()

    def test_growth_validation(self):
        graph = DynamicGraph(CSRGraph.from_edges(1, []))
        with pytest.raises(ConfigurationError):
            simulate_growth(graph, 10, new_node_probability=1.5)
