"""Tests for repro.axe.fifo (Tech-1 pipelining, Figure 7)."""

import pytest

from repro.axe.fifo import Fifo, Pipeline, PipelineStage, split_work
from repro.errors import CapacityError, ConfigurationError


class TestFifo:
    def test_push_pop_order(self):
        fifo = Fifo(3)
        fifo.push(1)
        fifo.push(2)
        assert fifo.pop() == 1
        assert fifo.pop() == 2

    def test_full_and_empty(self):
        fifo = Fifo(1)
        assert fifo.empty
        fifo.push(1)
        assert fifo.full
        with pytest.raises(CapacityError):
            fifo.push(2)

    def test_pop_empty(self):
        with pytest.raises(CapacityError):
            Fifo(1).pop()

    def test_len(self):
        fifo = Fifo(4)
        fifo.push(1)
        fifo.push(2)
        assert len(fifo) == 2

    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigurationError):
            Fifo(0)


class TestPipelineStage:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineStage("s", initiation_interval=0)
        with pytest.raises(ConfigurationError):
            PipelineStage("s", initiation_interval=4, latency=2)


class TestPipeline:
    def test_passes_items_through(self):
        pipeline = Pipeline([PipelineStage("a"), PipelineStage("b")])
        result = pipeline.run([1, 2, 3])
        assert result.outputs == [1, 2, 3]

    def test_work_function_applies(self):
        stage = PipelineStage("double", work=lambda x: 2 * x)
        result = Pipeline([stage]).run([1, 2])
        assert result.outputs == [2, 4]

    def test_fully_pipelined_throughput(self):
        """II=1 stages: N items drain in about N + depth cycles."""
        stages = [PipelineStage(f"s{i}") for i in range(5)]
        result = Pipeline(stages).run(list(range(100)))
        assert result.cycles <= 100 + 5 * 5

    def test_deep_beats_shallow(self):
        """Figure 7: deeper (finer-grained) pipelining of the same total
        work gives strictly better latency for a batch."""
        work = 8
        items = list(range(64))
        shallow = Pipeline(split_work(work, 1)).run(items).cycles
        medium = Pipeline(split_work(work, 4)).run(items).cycles
        deep = Pipeline(split_work(work, 8)).run(items).cycles
        assert shallow > medium > deep

    def test_depth_speedup_is_near_linear(self):
        work = 16
        items = list(range(128))
        shallow = Pipeline(split_work(work, 1)).run(items).cycles
        deep = Pipeline(split_work(work, 16)).run(items).cycles
        assert shallow / deep > 8

    def test_throughput_metric(self):
        result = Pipeline([PipelineStage("a")]).run([1, 2, 3, 4])
        assert result.throughput(1e6) == pytest.approx(
            4 / (result.cycles / 1e6)
        )

    def test_preserves_order(self):
        stages = split_work(6, 3)
        result = Pipeline(stages).run(list(range(50)))
        assert result.outputs == list(range(50))

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ConfigurationError):
            Pipeline([])

    def test_single_item(self):
        stages = split_work(10, 2)
        result = Pipeline(stages).run([42])
        assert result.outputs == [42]
        # Latency of one item = sum of stage latencies (+ FIFO hops).
        assert result.cycles >= 10


class TestSplitWork:
    def test_splits_evenly(self):
        stages = split_work(12, 3)
        assert len(stages) == 3
        assert all(s.initiation_interval == 4 for s in stages)

    def test_rounds_up(self):
        stages = split_work(10, 3)
        assert all(s.initiation_interval == 4 for s in stages)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            split_work(0, 1)
        with pytest.raises(ConfigurationError):
            split_work(4, 0)


class TestGetNeighborPipeline:
    """The Figure 6 GetNeighbor sub-module pipeline."""

    def test_five_substages(self):
        from repro.axe.fifo import get_neighbor_pipeline

        pipeline = get_neighbor_pipeline()
        assert pipeline.depth == 5
        names = [stage.name for stage in pipeline.stages]
        assert names == [
            "cmd_decode", "index_lookup", "offset_fetch",
            "id_stream", "sample_handoff",
        ]

    def test_fully_pipelined_at_low_degree(self):
        from repro.axe.fifo import get_neighbor_pipeline

        pipeline = get_neighbor_pipeline(avg_degree=4.0)
        result = pipeline.run(list(range(100)))
        # II=1 everywhere: ~1 item/cycle after fill.
        assert result.cycles < 100 + 40

    def test_high_degree_limits_initiation(self):
        from repro.axe.fifo import get_neighbor_pipeline

        light = get_neighbor_pipeline(avg_degree=4.0).run(list(range(64))).cycles
        heavy = get_neighbor_pipeline(avg_degree=64.0).run(list(range(64))).cycles
        assert heavy > 3 * light  # ID streaming dominates at degree 64

    def test_preserves_order(self):
        from repro.axe.fifo import get_neighbor_pipeline

        result = get_neighbor_pipeline().run(list(range(30)))
        assert result.outputs == list(range(30))

    def test_validation(self):
        from repro.axe.fifo import get_neighbor_pipeline

        with pytest.raises(ConfigurationError):
            get_neighbor_pipeline(avg_degree=0)
