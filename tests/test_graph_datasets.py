"""Tests for repro.graph.datasets (Table 2)."""

import pytest

from repro.errors import ConfigurationError
from repro.graph.datasets import (
    DATASET_ORDER,
    DATASETS,
    SAMPLING_CONFIG,
    get_dataset,
    instantiate_dataset,
)


class TestRegistry:
    def test_all_six_datasets_present(self):
        assert set(DATASETS) == {"ss", "ls", "sl", "ml", "ll", "syn"}

    def test_order_matches_paper(self):
        assert DATASET_ORDER == ("ss", "ls", "sl", "ml", "ll", "syn")

    def test_table2_node_counts(self):
        assert DATASETS["ss"].num_nodes == 65_200_000
        assert DATASETS["syn"].num_nodes == 5_900_000_000

    def test_table2_edge_counts(self):
        assert DATASETS["ll"].num_edges == 12_300_000_000
        assert DATASETS["syn"].num_edges == 105_000_000_000

    def test_table2_attr_lengths(self):
        assert [DATASETS[n].attr_len for n in DATASET_ORDER] == [
            72, 84, 128, 136, 152, 152,
        ]

    def test_only_syn_is_synthesized(self):
        assert DATASETS["syn"].synthesized
        assert not any(DATASETS[n].synthesized for n in DATASET_ORDER[:-1])

    def test_avg_degree(self):
        assert DATASETS["ml"].avg_degree == pytest.approx(27.5, rel=0.02)

    def test_sampling_config_matches_table2(self):
        assert SAMPLING_CONFIG["batch_size"] == 512
        assert SAMPLING_CONFIG["fanouts"] == (10, 10)
        assert SAMPLING_CONFIG["negative_rate"] == 10
        assert SAMPLING_CONFIG["hidden_size"] == 128

    def test_get_dataset_unknown(self):
        with pytest.raises(ConfigurationError):
            get_dataset("huge")


class TestInstantiation:
    @pytest.mark.parametrize("name", DATASET_ORDER)
    def test_instantiates_all(self, name):
        graph = instantiate_dataset(name, max_nodes=4000, seed=0)
        assert 0 < graph.num_nodes <= 4000
        assert graph.attr_len == DATASETS[name].attr_len

    def test_preserves_avg_degree(self):
        graph = instantiate_dataset("ml", max_nodes=10_000, seed=1)
        spec = DATASETS["ml"]
        assert graph.num_edges / graph.num_nodes == pytest.approx(
            spec.avg_degree, rel=0.15
        )

    def test_syn_built_by_scaling(self):
        graph = instantiate_dataset("syn", max_nodes=8000, seed=1)
        # scaled_synthesis with factor 4: node count divisible by 4.
        assert graph.num_nodes % 4 == 0

    def test_deterministic(self):
        a = instantiate_dataset("ss", max_nodes=2000, seed=5)
        b = instantiate_dataset("ss", max_nodes=2000, seed=5)
        assert (a.indices == b.indices).all()

    def test_rejects_bad_max_nodes(self):
        with pytest.raises(ConfigurationError):
            instantiate_dataset("ss", max_nodes=0)
