"""Tests for repro.riscv.isa (encode/decode)."""

import pytest

from repro.errors import DecodeError
from repro.riscv import isa
from repro.riscv.isa import Instruction, decode, encode


def roundtrip(instr):
    return decode(encode(instr))


class TestRoundtrip:
    def test_lui(self):
        instr = Instruction(isa.OPCODE_LUI, rd=5, imm=0x12345 << 12)
        assert roundtrip(instr) == instr

    def test_lui_negative(self):
        instr = Instruction(isa.OPCODE_LUI, rd=1, imm=-4096)
        assert roundtrip(instr).imm == -4096

    def test_jal(self):
        instr = Instruction(isa.OPCODE_JAL, rd=1, imm=2048)
        assert roundtrip(instr) == instr

    def test_jal_negative_offset(self):
        instr = Instruction(isa.OPCODE_JAL, rd=0, imm=-8)
        assert roundtrip(instr).imm == -8

    def test_jalr(self):
        instr = Instruction(isa.OPCODE_JALR, rd=1, rs1=2, imm=-4)
        assert roundtrip(instr) == instr

    def test_branch(self):
        instr = Instruction(isa.OPCODE_BRANCH, rs1=3, rs2=4, funct3=0b001, imm=-16)
        assert roundtrip(instr) == instr

    def test_branch_positive(self):
        instr = Instruction(isa.OPCODE_BRANCH, rs1=1, rs2=0, funct3=0b101, imm=256)
        assert roundtrip(instr) == instr

    def test_load(self):
        instr = Instruction(isa.OPCODE_LOAD, rd=7, rs1=8, funct3=0b010, imm=100)
        assert roundtrip(instr) == instr

    def test_store(self):
        instr = Instruction(isa.OPCODE_STORE, rs1=2, rs2=9, funct3=0b010, imm=-64)
        assert roundtrip(instr) == instr

    def test_op_imm(self):
        instr = Instruction(isa.OPCODE_OP_IMM, rd=1, rs1=2, funct3=0b000, imm=-1)
        assert roundtrip(instr) == instr

    def test_op(self):
        instr = Instruction(
            isa.OPCODE_OP, rd=1, rs1=2, rs2=3, funct3=0b000, funct7=0b0100000
        )
        assert roundtrip(instr) == instr

    def test_custom0_qpush(self):
        instr = Instruction(
            isa.OPCODE_CUSTOM0, rd=1, rs1=2, rs2=3,
            funct3=isa.FUNCT3_QPUSH, funct7=17,
        )
        assert roundtrip(instr) == instr

    def test_custom0_qpull(self):
        instr = Instruction(
            isa.OPCODE_CUSTOM0, rd=4, funct3=isa.FUNCT3_QPULL, funct7=99
        )
        assert roundtrip(instr) == instr


class TestDecodeErrors:
    def test_rejects_unknown_opcode(self):
        with pytest.raises(DecodeError):
            decode(0b0101010)

    def test_rejects_oversized_word(self):
        with pytest.raises(DecodeError):
            decode(1 << 32)

    def test_rejects_negative_word(self):
        with pytest.raises(DecodeError):
            decode(-1)

    def test_encode_rejects_unknown_opcode(self):
        with pytest.raises(DecodeError):
            encode(Instruction(0b0101010))


class TestKnownEncodings:
    def test_addi_golden(self):
        # addi x1, x0, 5  ->  0x00500093
        instr = Instruction(isa.OPCODE_OP_IMM, rd=1, rs1=0, funct3=0, imm=5)
        assert encode(instr) == 0x00500093

    def test_add_golden(self):
        # add x3, x1, x2 -> 0x002081B3
        instr = Instruction(isa.OPCODE_OP, rd=3, rs1=1, rs2=2, funct3=0, funct7=0)
        assert encode(instr) == 0x002081B3

    def test_lui_golden(self):
        # lui x5, 0x12345 -> 0x123452B7
        instr = Instruction(isa.OPCODE_LUI, rd=5, imm=0x12345 << 12)
        assert encode(instr) == 0x123452B7
