"""Tests for repro.gnn.train: losses and the supervised trainer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.framework.sampler import MultiHopSampler
from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law_graph
from repro.graph.partition import HashPartitioner
from repro.gnn.models import GraphSageEncoder
from repro.gnn.train import (
    Trainer,
    link_prediction_loss,
    link_prediction_loss64,
    multilabel_loss,
    multilabel_loss64,
    train_to_convergence,
)
from repro.memstore.store import PartitionedStore


class TestMultilabelLoss:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0]])
        labels = np.array([[1.0, 0.0]])
        loss, grad = multilabel_loss(logits, labels)
        assert loss < 0.01
        assert np.abs(grad).max() < 0.01

    def test_wrong_prediction_high_loss(self):
        logits = np.array([[-10.0, 10.0]])
        labels = np.array([[1.0, 0.0]])
        loss, _ = multilabel_loss(logits, labels)
        assert loss > 5

    def test_gradient_direction(self):
        logits = np.array([[0.0]])
        labels = np.array([[1.0]])
        _, grad = multilabel_loss(logits, labels)
        assert grad[0, 0] < 0  # push logit up

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(0)
        logits = rng.standard_normal((3, 4))
        labels = rng.integers(0, 2, (3, 4)).astype(float)
        _, grad = multilabel_loss(logits, labels)
        eps = 1e-5
        for i in (0, 1):
            for j in (0, 2):
                bumped = logits.copy()
                bumped[i, j] += eps
                plus, _ = multilabel_loss(bumped, labels)
                bumped[i, j] -= 2 * eps
                minus, _ = multilabel_loss(bumped, labels)
                assert grad[i, j] == pytest.approx(
                    (plus - minus) / (2 * eps), abs=1e-4
                )

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            multilabel_loss(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_extreme_logits_stable(self):
        loss, grad = multilabel_loss(
            np.array([[1000.0, -1000.0]]), np.array([[1.0, 0.0]])
        )
        assert np.isfinite(loss) and np.isfinite(grad).all()


class TestLinkPredictionLoss:
    def test_positive_best_low_loss(self):
        scores = np.array([[5.0, -1.0, -1.0]])
        loss, _ = link_prediction_loss(scores)
        assert loss < 0.01

    def test_grad_sums_to_zero_per_row(self):
        scores = np.array([[1.0, 2.0, 0.5], [0.0, 0.0, 0.0]])
        _, grad = link_prediction_loss(scores)
        assert np.allclose(grad.sum(axis=1), 0, atol=1e-6)

    def test_positive_grad_negative(self):
        scores = np.array([[0.0, 0.0, 0.0]])
        _, grad = link_prediction_loss(scores)
        assert grad[0, 0] < 0
        assert (grad[0, 1:] > 0).all()

    def test_rejects_single_column(self):
        with pytest.raises(ConfigurationError):
            link_prediction_loss(np.zeros((2, 1)))


class TestLossPrecisionBoundary:
    """The float64-internal refactor must not move the public float32
    values: these pins are the historical outputs."""

    def _inputs(self):
        rng = np.random.default_rng(42)
        logits = rng.standard_normal((4, 3)) * 3.0
        labels = rng.integers(0, 2, (4, 3)).astype(np.float64)
        scores = rng.standard_normal((3, 4)) * 2.0
        return logits, labels, scores

    def test_multilabel_pinned_values(self):
        logits, labels, _ = self._inputs()
        loss, grad = multilabel_loss(logits, labels)
        assert loss == 1.5677294507350439
        assert grad.dtype == np.float32
        assert grad[0, 0] == np.float32(-0.02384592592716217)
        assert grad[3, 2] == np.float32(0.075966976583004)

    def test_link_prediction_pinned_values(self):
        _, _, scores = self._inputs()
        loss, grad = link_prediction_loss(scores)
        assert loss == 0.5370804387792235
        assert grad.dtype == np.float32
        assert grad[0, 0] == np.float32(-0.08073727786540985)
        assert grad[2, 3] == np.float32(0.08196156471967697)

    def test_float64_internals_cast_once(self):
        """The public grads are exactly the float64 grads cast once."""
        logits, labels, scores = self._inputs()
        loss64, grad64 = multilabel_loss64(logits, labels)
        loss32, grad32 = multilabel_loss(logits, labels)
        assert grad64.dtype == np.float64
        assert loss64 == loss32
        assert np.array_equal(grad64.astype(np.float32), grad32)
        lloss64, lgrad64 = link_prediction_loss64(scores)
        lloss32, lgrad32 = link_prediction_loss(scores)
        assert lgrad64.dtype == np.float64
        assert lloss64 == lloss32
        assert np.array_equal(lgrad64.astype(np.float32), lgrad32)

    def test_large_batch_precision(self):
        """Float64 accumulation keeps the mean stable on large batches
        (the double-cast used to lose precision here)."""
        rng = np.random.default_rng(7)
        logits = rng.standard_normal((200_000, 2))
        labels = rng.integers(0, 2, (200_000, 2)).astype(np.float64)
        loss, grad = multilabel_loss(logits, labels)
        loss64, grad64 = multilabel_loss64(logits, labels)
        assert loss == loss64
        assert np.array_equal(grad, grad64.astype(np.float32))

    def test_float64_validation_matches_public(self):
        with pytest.raises(ConfigurationError):
            multilabel_loss64(np.zeros((2, 2)), np.zeros((2, 3)))
        with pytest.raises(ConfigurationError):
            link_prediction_loss64(np.zeros((2, 1)))


def _make_learnable_task(num_nodes=300, num_labels=4, seed=0):
    """A label-homophilous graph: labels derive from a community id,
    and edges stay mostly within communities, so 1-hop GraphSAGE can
    learn the mapping."""
    rng = np.random.default_rng(seed)
    communities = rng.integers(0, num_labels, num_nodes)
    # attributes carry a noisy one-hot of the community
    attrs = np.eye(num_labels, dtype=np.float32)[communities]
    attrs = attrs + 0.3 * rng.standard_normal(attrs.shape).astype(np.float32)
    edges = []
    for node in range(num_nodes):
        same = np.flatnonzero(communities == communities[node])
        for _ in range(5):
            edges.append((node, int(rng.choice(same))))
    graph = CSRGraph.from_edges(num_nodes, edges, node_attr=attrs)
    labels = np.eye(num_labels, dtype=np.int64)[communities]
    return graph, labels


class TestTrainer:
    def test_loss_decreases(self):
        graph, labels = _make_learnable_task()
        store = PartitionedStore(graph, HashPartitioner(2))
        sampler = MultiHopSampler(store, seed=0)
        encoder = GraphSageEncoder(graph.attr_len, 16, (5,), seed=0)
        trainer = Trainer(sampler, encoder, num_labels=labels.shape[1], lr=0.1)
        roots = np.arange(graph.num_nodes)
        first = trainer.train_step(roots[:64], labels[:64])
        for _ in range(20):
            last = trainer.train_step(roots[:64], labels[:64])
        assert last < first

    def test_learns_better_than_chance(self):
        graph, labels = _make_learnable_task(seed=1)
        store = PartitionedStore(graph, HashPartitioner(2))
        sampler = MultiHopSampler(store, seed=1)
        encoder = GraphSageEncoder(graph.attr_len, 16, (5,), seed=1)
        trainer = Trainer(sampler, encoder, num_labels=labels.shape[1], lr=3.0)
        roots = np.arange(graph.num_nodes)
        train_to_convergence(trainer, roots[:200], labels[:200], epochs=4)
        f1 = trainer.evaluate(roots[200:], labels[200:])
        assert f1 > 0.8

    def test_predict_shape(self):
        graph, labels = _make_learnable_task()
        store = PartitionedStore(graph, HashPartitioner(2))
        trainer = Trainer(
            MultiHopSampler(store, seed=0),
            GraphSageEncoder(graph.attr_len, 8, (3,), seed=0),
            num_labels=4,
        )
        predictions = trainer.predict(np.arange(10))
        assert predictions.shape == (10, 4)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_validation(self):
        graph, _ = _make_learnable_task()
        store = PartitionedStore(graph, HashPartitioner(2))
        sampler = MultiHopSampler(store)
        encoder = GraphSageEncoder(graph.attr_len, 8, (3,))
        with pytest.raises(ConfigurationError):
            Trainer(sampler, encoder, num_labels=0)
        with pytest.raises(ConfigurationError):
            Trainer(sampler, encoder, num_labels=2, lr=0)

    def test_epoch_callback(self):
        graph, labels = _make_learnable_task()
        store = PartitionedStore(graph, HashPartitioner(2))
        trainer = Trainer(
            MultiHopSampler(store, seed=0),
            GraphSageEncoder(graph.attr_len, 8, (3,), seed=0),
            num_labels=4,
        )
        seen = []
        train_to_convergence(
            trainer,
            np.arange(64),
            labels[:64],
            epochs=2,
            on_epoch=lambda epoch, loss: seen.append(epoch),
        )
        assert seen == [0, 1]
