"""Tests for repro.axe.resources (Table 11 and Tech-2 savings)."""

import pytest

from repro.axe.resources import (
    VU13P_TOTALS,
    ResourceEstimate,
    engine_resources,
    sampler_resources,
    sampler_savings,
    utilization,
)
from repro.errors import ConfigurationError


class TestResourceEstimate:
    def test_add(self):
        total = ResourceEstimate(luts=1.0) + ResourceEstimate(luts=2.0, dsp=4)
        assert total.luts == 3.0 and total.dsp == 4

    def test_scale(self):
        assert ResourceEstimate(luts=2.0).scale(3).luts == 6.0

    def test_scale_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ResourceEstimate().scale(-1)


class TestSamplerResources:
    def test_streaming_saves_luts(self):
        """Tech-2: ~91.9% LUT saving over the conventional sampler."""
        savings = sampler_savings()
        assert savings["lut_saving"] == pytest.approx(0.919, abs=0.005)

    def test_streaming_saves_registers(self):
        """Tech-2: ~23% register saving."""
        savings = sampler_savings()
        assert savings["reg_saving"] == pytest.approx(0.23, abs=0.005)

    def test_streaming_needs_no_bram(self):
        assert sampler_resources("streaming").bram_mb == 0.0
        assert sampler_savings()["bram_saving"] == 1.0

    def test_conventional_scales_with_candidates(self):
        small = sampler_resources("reservoir", 256)
        large = sampler_resources("reservoir", 8192)
        assert large.luts > small.luts

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            sampler_resources("sorting")

    def test_rejects_bad_candidates(self):
        with pytest.raises(ConfigurationError):
            sampler_resources("streaming", 0)


class TestEngineResources:
    def test_poc_matches_table11(self):
        """The 2-core, 3-QSFP PoC lands on the Table 11 utilization."""
        usage = engine_resources(num_cores=2, num_qsfp=3)
        util = utilization(usage)
        assert util["clbs"] == pytest.approx(0.6053, abs=0.01)
        assert util["luts"] == pytest.approx(0.3507, abs=0.01)
        assert util["regs"] == pytest.approx(0.2248, abs=0.01)
        assert util["bram"] == pytest.approx(0.3929, abs=0.015)
        assert util["uram"] == pytest.approx(0.40, abs=0.01)
        assert util["dsp"] == pytest.approx(0.125, abs=0.01)

    def test_poc_fits_device(self):
        util = utilization(engine_resources(2, 3))
        assert all(value < 1.0 for value in util.values())

    def test_scaling_up_cores(self):
        """Scaling-up headroom: 4 cores still fit the VU13P."""
        util = utilization(engine_resources(4, 3))
        assert all(value < 1.0 for value in util.values())

    def test_more_cores_more_resources(self):
        assert engine_resources(4, 3).luts > engine_resources(2, 3).luts

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            engine_resources(0, 3)
        with pytest.raises(ConfigurationError):
            engine_resources(2, -1)

    def test_device_totals_match_table11_header(self):
        assert VU13P_TOTALS.luts == 1728.0
        assert VU13P_TOTALS.dsp == 12288.0
