"""Tests for repro.axe.gemm and repro.axe.vpu (the optional engines)."""

import numpy as np
import pytest

from repro.axe.gemm import GemmConfig, GemmEngine
from repro.axe.resources import VU13P_TOTALS, engine_resources, utilization
from repro.axe.vpu import VectorUnit, VpuConfig, onfpga_aggregation_speedup
from repro.errors import ConfigurationError
from repro.units import GB


class TestGemmEngine:
    def test_exact_results(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((17, 23)).astype(np.float32)
        b = rng.standard_normal((23, 9)).astype(np.float32)
        result, cycles = GemmEngine().matmul(a, b)
        assert np.allclose(result, a @ b, atol=1e-4)
        assert cycles > 0

    def test_cycle_model_tiles(self):
        engine = GemmEngine(GemmConfig(array_rows=8, array_cols=8))
        _r, cycles = engine.matmul(np.zeros((16, 32)), np.zeros((32, 16)))
        # 2x2 tiles, each k + rows + cols = 48 cycles.
        assert cycles == 4 * 48

    def test_partial_tile_rounds_up(self):
        engine = GemmEngine(GemmConfig(array_rows=8, array_cols=8))
        _r, cycles = engine.matmul(np.zeros((9, 4)), np.zeros((4, 9)))
        assert cycles == 4 * (4 + 16)

    def test_peak_tflops(self):
        config = GemmConfig(array_rows=32, array_cols=32, frequency_hz=250e6)
        assert config.peak_tflops == pytest.approx(0.512)

    def test_achieved_below_peak(self):
        engine = GemmEngine()
        engine.matmul(np.zeros((64, 64)), np.zeros((64, 64)))
        assert 0 < engine.achieved_tflops() <= engine.config.peak_tflops

    def test_fpga_not_competitive_with_gpu(self):
        """§4.1: FPGA FP32 TFLOPs are not competitive with a GPU —
        the biggest array that fits the VU13P stays far below 14 TFLOPs."""
        config = GemmConfig(array_rows=64, array_cols=64)
        gemm_resources = GemmEngine(config).resources()
        total = engine_resources(2, 3) + gemm_resources
        util = utilization(total)
        assert all(value < 1.0 for value in util.values())  # it fits...
        assert config.peak_tflops < 3.0  # ...but is no GPU

    def test_time_for(self):
        engine = GemmEngine(GemmConfig(array_rows=8, array_cols=8, frequency_hz=1e6))
        assert engine.time_for(8, 10, 8) == pytest.approx(26e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GemmConfig(array_rows=0)
        engine = GemmEngine()
        with pytest.raises(ConfigurationError):
            engine.matmul(np.zeros((2, 3)), np.zeros((4, 2)))
        with pytest.raises(ConfigurationError):
            engine.matmul(np.zeros(3), np.zeros(3))
        with pytest.raises(ConfigurationError):
            engine.time_for(0, 1, 1)


class TestVectorUnit:
    def test_elementwise_exact(self):
        vpu = VectorUnit()
        a = np.arange(10, dtype=np.float32)
        b = np.ones(10, dtype=np.float32)
        result, cycles = vpu.elementwise("add", a, b)
        assert np.allclose(result, a + 1)
        assert cycles == 1  # 10 elements over 16 lanes

    def test_elementwise_cycles_scale(self):
        vpu = VectorUnit(VpuConfig(lanes=4))
        _r, cycles = vpu.elementwise("mul", np.zeros(40), np.zeros(40))
        assert cycles == 10

    def test_reduce_sum(self):
        vpu = VectorUnit()
        x = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        result, _cycles = vpu.reduce_neighborhood("sum", x)
        assert np.allclose(result, x.sum(axis=1))

    def test_reduce_max_and_mean(self):
        vpu = VectorUnit()
        x = np.random.default_rng(0).standard_normal((3, 5, 8)).astype(np.float32)
        max_result, _c = vpu.reduce_neighborhood("max", x)
        mean_result, _c = vpu.reduce_neighborhood("mean", x)
        assert np.allclose(max_result, x.max(axis=1))
        assert np.allclose(mean_result, x.mean(axis=1), atol=1e-6)

    def test_reduce_cycle_model(self):
        vpu = VectorUnit(VpuConfig(lanes=8))
        x = np.zeros((4, 10, 16), dtype=np.float32)
        _r, cycles = vpu.reduce_neighborhood("sum", x)
        assert cycles == 4 * 9 * 2  # groups * (fanout-1) * ceil(16/8)

    def test_validation(self):
        vpu = VectorUnit()
        with pytest.raises(ConfigurationError):
            vpu.elementwise("div", np.zeros(2), np.zeros(2))
        with pytest.raises(ConfigurationError):
            vpu.elementwise("add", np.zeros(2), np.zeros(3))
        with pytest.raises(ConfigurationError):
            vpu.reduce_neighborhood("sum", np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            vpu.reduce_neighborhood("median", np.zeros((1, 2, 3)))
        with pytest.raises(ConfigurationError):
            VpuConfig(lanes=0)


class TestOnFpgaAggregation:
    def test_reduction_shrinks_output_by_fanout(self):
        """The paper's GCN argument: reducing on-FPGA cuts output
        traffic (and hence PCIe time) by the fanout."""
        speedup = onfpga_aggregation_speedup(
            attr_len=128, fanout=10, output_bandwidth=16 * GB, batch_nodes=1000
        )
        assert speedup == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            onfpga_aggregation_speedup(0, 10, 1.0, 10)

    def test_vpu_fits_alongside_engine(self):
        total = engine_resources(2, 3) + VectorUnit().resources()
        assert all(v < 1.0 for v in utilization(total).values())
