"""Tests for repro.graph.partition."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graph.partition import (
    HashPartitioner,
    RangePartitioner,
    locality_fraction,
)


class TestHashPartitioner:
    def test_balanced(self):
        part = HashPartitioner(8)
        owners = part.partition_of(np.arange(80_000))
        counts = np.bincount(owners, minlength=8)
        assert counts.min() > 0.8 * counts.mean()
        assert counts.max() < 1.2 * counts.mean()

    def test_deterministic(self):
        part = HashPartitioner(4)
        nodes = np.arange(100)
        assert np.array_equal(part.partition_of(nodes), part.partition_of(nodes))

    def test_range_of_outputs(self):
        part = HashPartitioner(5)
        owners = part.partition_of(np.arange(1000))
        assert owners.min() >= 0 and owners.max() < 5

    def test_owned_mask(self):
        part = HashPartitioner(3)
        nodes = np.arange(30)
        masks = [part.owned_mask(nodes, p) for p in range(3)]
        assert np.array_equal(sum(m.astype(int) for m in masks), np.ones(30))

    def test_owned_mask_rejects_bad_partition(self):
        with pytest.raises(PartitionError):
            HashPartitioner(3).owned_mask([0], 3)

    def test_rejects_zero_partitions(self):
        with pytest.raises(PartitionError):
            HashPartitioner(0)

    def test_locality_approx_one_over_p(self):
        part = HashPartitioner(10)
        rng = np.random.default_rng(0)
        src = rng.integers(0, 1_000_000, 20_000)
        dst = rng.integers(0, 1_000_000, 20_000)
        frac = locality_fraction(part, src, dst)
        assert frac == pytest.approx(0.1, abs=0.02)


class TestRangePartitioner:
    def test_contiguous(self):
        part = RangePartitioner(4, num_nodes=100)
        owners = part.partition_of(np.arange(100))
        # Owners are sorted (contiguous ranges).
        assert (np.diff(owners) >= 0).all()
        assert owners.max() == 3

    def test_chunk_sizes(self):
        part = RangePartitioner(3, num_nodes=10)
        owners = part.partition_of(np.arange(10))
        assert np.bincount(owners).tolist() == [4, 4, 2]

    def test_rejects_out_of_range(self):
        part = RangePartitioner(2, num_nodes=10)
        with pytest.raises(PartitionError):
            part.partition_of([10])

    def test_rejects_bad_sizes(self):
        with pytest.raises(PartitionError):
            RangePartitioner(2, num_nodes=0)

    def test_block_locality_beats_hash(self):
        """Range partitioning keeps block-local edges local — the reason
        scaled_synthesis graphs prefer it."""
        num_nodes = 1000
        rng = np.random.default_rng(1)
        src = rng.integers(0, num_nodes, 5000)
        # Destinations near the source (community structure).
        dst = np.clip(src + rng.integers(-10, 10, 5000), 0, num_nodes - 1)
        range_part = RangePartitioner(10, num_nodes)
        hash_part = HashPartitioner(10)
        assert locality_fraction(range_part, src, dst) > locality_fraction(
            hash_part, src, dst
        )


class TestLocalityFraction:
    def test_empty_is_local(self):
        assert locality_fraction(HashPartitioner(2), [], []) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(PartitionError):
            locality_fraction(HashPartitioner(2), [1, 2], [1])

    def test_single_partition_always_local(self):
        part = HashPartitioner(1)
        assert locality_fraction(part, [1, 2, 3], [4, 5, 6]) == 1.0


class TestLdgPartitioner:
    @staticmethod
    def _community_graph(num_nodes=400, num_communities=4, seed=0):
        import numpy as np
        from repro.graph.csr import CSRGraph

        rng = np.random.default_rng(seed)
        communities = rng.integers(0, num_communities, num_nodes)
        edges = []
        for node in range(num_nodes):
            same = np.flatnonzero(communities == communities[node])
            for _ in range(6):
                edges.append((node, int(rng.choice(same))))
        return CSRGraph.from_edges(num_nodes, edges)

    def test_balanced_within_slack(self):
        from repro.graph.partition import LdgPartitioner

        graph = self._community_graph()
        part = LdgPartitioner(4, graph, slack=1.1)
        sizes = part.partition_sizes()
        assert sizes.sum() == graph.num_nodes
        assert sizes.max() <= 1.2 * graph.num_nodes / 4

    def test_beats_hash_on_clustered_graph(self):
        """LDG's whole point: lower edge cut than hashing on graphs
        with community structure — less remote sampling traffic."""
        from repro.graph.partition import (
            HashPartitioner,
            LdgPartitioner,
            edge_cut_fraction,
        )

        graph = self._community_graph(seed=1)
        ldg_cut = edge_cut_fraction(LdgPartitioner(4, graph), graph)
        hash_cut = edge_cut_fraction(HashPartitioner(4), graph)
        assert ldg_cut < 0.8 * hash_cut

    def test_partition_of_bounds(self):
        from repro.graph.partition import LdgPartitioner

        graph = self._community_graph()
        part = LdgPartitioner(3, graph)
        with pytest.raises(PartitionError):
            part.partition_of([graph.num_nodes])

    def test_slack_validation(self):
        from repro.graph.partition import LdgPartitioner

        graph = self._community_graph()
        with pytest.raises(PartitionError):
            LdgPartitioner(2, graph, slack=0.9)

    def test_edge_cut_empty_graph(self):
        from repro.graph.csr import CSRGraph
        from repro.graph.partition import HashPartitioner, edge_cut_fraction

        graph = CSRGraph.from_edges(5, [])
        assert edge_cut_fraction(HashPartitioner(2), graph) == 0.0
