"""Tests for repro.gnn.models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gnn.models import DSSM, GraphSageEncoder


def random_features(batch, fanouts, attr_len, seed=0):
    rng = np.random.default_rng(seed)
    features = [rng.standard_normal((batch, attr_len)).astype(np.float32)]
    width = 1
    for fanout in fanouts:
        width *= fanout
        features.append(
            rng.standard_normal((batch, width, attr_len)).astype(np.float32)
        )
    return features


class TestGraphSageEncoder:
    def test_forward_shape(self):
        encoder = GraphSageEncoder(8, 16, (4, 3), seed=0)
        features = random_features(5, (4, 3), 8)
        out = encoder.forward(features)
        assert out.shape == (5, 16)

    def test_one_hop(self):
        encoder = GraphSageEncoder(6, 4, (5,), seed=0)
        out = encoder.forward(random_features(3, (5,), 6))
        assert out.shape == (3, 4)

    def test_rejects_wrong_level_count(self):
        encoder = GraphSageEncoder(6, 4, (5,), seed=0)
        with pytest.raises(ConfigurationError):
            encoder.forward(random_features(3, (5, 2), 6))

    def test_rejects_wrong_width(self):
        encoder = GraphSageEncoder(6, 4, (5,), seed=0)
        features = random_features(3, (5,), 6)
        features[1] = features[1][:, :4, :]  # width 4 instead of 5
        with pytest.raises(ConfigurationError):
            encoder.forward(features)

    def test_forward_backward_returns_loss(self):
        encoder = GraphSageEncoder(6, 8, (3, 2), seed=0)
        features = random_features(4, (3, 2), 6)

        def grad_fn(embeddings):
            loss = float(0.5 * np.sum(embeddings**2))
            return loss, embeddings.astype(np.float32)

        embeddings, loss = encoder.forward_backward(features, grad_fn)
        assert embeddings.shape == (4, 8)
        assert loss > 0

    def test_forward_backward_matches_forward(self):
        encoder = GraphSageEncoder(6, 8, (3, 2), seed=0)
        features = random_features(4, (3, 2), 6)
        reference = encoder.forward(features)

        def grad_fn(embeddings):
            return 0.0, np.zeros_like(embeddings, dtype=np.float32)

        embeddings, _loss = encoder.forward_backward(features, grad_fn)
        assert np.allclose(reference, embeddings, atol=1e-5)

    def test_training_reduces_loss(self):
        """SGD on a fixed regression target must reduce the loss."""
        encoder = GraphSageEncoder(6, 8, (3,), seed=0)
        features = random_features(8, (3,), 6, seed=1)
        rng = np.random.default_rng(2)
        target = rng.standard_normal((8, 8)).astype(np.float32)
        # Encoder outputs are L2-normalized; only a normalized target
        # is reachable.
        target /= np.linalg.norm(target, axis=1, keepdims=True)

        def grad_fn(embeddings):
            diff = embeddings - target
            return float(0.5 * np.sum(diff**2)), diff

        losses = []
        for _ in range(60):
            _, loss = encoder.forward_backward(features, grad_fn)
            encoder.step(0.2)
            losses.append(loss)
        assert losses[-1] < 0.6 * losses[0]

    def test_input_gradients_available(self):
        encoder = GraphSageEncoder(6, 8, (3,), seed=0)
        features = random_features(2, (3,), 6)

        def grad_fn(embeddings):
            return 0.0, np.ones_like(embeddings, dtype=np.float32)

        encoder.forward_backward(features, grad_fn)
        grads = encoder.input_gradients
        assert len(grads) == 2
        assert grads[0].shape == (2, 1, 6)
        assert grads[1].shape == (2, 3, 6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GraphSageEncoder(0, 8, (3,))
        with pytest.raises(ConfigurationError):
            GraphSageEncoder(4, 8, ())

    def test_dense_layers_enumeration(self):
        encoder = GraphSageEncoder(6, 8, (3, 2), seed=0)
        assert len(encoder.dense_layers()) == 4  # pool+combine per hop


class TestDSSM:
    def test_forward_shape(self):
        model = DSSM(16, (8, 8), seed=0)
        rng = np.random.default_rng(0)
        query = rng.standard_normal((4, 16)).astype(np.float32)
        items = rng.standard_normal((4, 11, 16)).astype(np.float32)
        scores = model.forward(query, items)
        assert scores.shape == (4, 11)

    def test_backward_shapes(self):
        model = DSSM(16, (8,), seed=0)
        rng = np.random.default_rng(0)
        query = rng.standard_normal((3, 16)).astype(np.float32)
        items = rng.standard_normal((3, 5, 16)).astype(np.float32)
        model.forward(query, items)
        grad_q, grad_i = model.backward(np.ones((3, 5), dtype=np.float32))
        assert grad_q.shape == query.shape
        assert grad_i.shape == items.shape

    def test_training_separates_positive(self):
        """Softmax-CE training must rank the positive above negatives."""
        from repro.gnn.train import link_prediction_loss

        rng = np.random.default_rng(1)
        model = DSSM(8, (8, 8), seed=1)
        query = rng.standard_normal((16, 8)).astype(np.float32)
        positive = query + 0.1 * rng.standard_normal((16, 1, 8)).astype(np.float32)
        negatives = rng.standard_normal((16, 5, 8)).astype(np.float32)
        items = np.concatenate([positive, negatives], axis=1).astype(np.float32)
        first_loss = None
        for _ in range(60):
            scores = model.forward(query, items)
            loss, grad = link_prediction_loss(scores)
            if first_loss is None:
                first_loss = loss
            model.backward(grad)
            model.step(0.1)
        assert loss < first_loss
        scores = model.forward(query, items)
        hits = np.mean(scores.argmax(axis=1) == 0)
        assert hits > 0.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DSSM(0)
        with pytest.raises(ConfigurationError):
            DSSM(8, ())
