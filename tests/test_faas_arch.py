"""Tests for repro.faas.arch (Table 8)."""

import pytest

from repro.errors import ConfigurationError
from repro.faas.arch import (
    EIGHT_ARCHITECTURES,
    FaasArchitecture,
    OutputPath,
    RemotePath,
    get_architecture,
    output_bandwidth_per_chip,
)
from repro.units import GB


class TestTaxonomy:
    def test_eight_architectures(self):
        assert len(EIGHT_ARCHITECTURES) == 8
        names = {arch.name for arch in EIGHT_ARCHITECTURES}
        assert names == {
            f"{c}.{k}"
            for c in ("base", "cost-opt", "comm-opt", "mem-opt")
            for k in ("tc", "decp")
        }

    def test_base_uses_nic(self):
        assert get_architecture("base.tc").remote_path is RemotePath.NIC
        assert get_architecture("base.decp").remote_path is RemotePath.NIC

    def test_comm_opt_uses_mof(self):
        assert get_architecture("comm-opt.tc").remote_path is RemotePath.MOF

    def test_mem_opt_uses_fpga_dram(self):
        arch = get_architecture("mem-opt.tc")
        assert arch.graph_in_fpga_dram
        assert arch.local_bw_per_chip == pytest.approx(102.4 * GB)

    def test_others_use_pcie_host(self):
        for name in ("base.tc", "cost-opt.decp", "comm-opt.tc"):
            arch = get_architecture(name)
            assert not arch.graph_in_fpga_dram
            assert arch.local_bw_per_chip == 16 * GB

    def test_decoupled_outputs_over_nic(self):
        for arch in EIGHT_ARCHITECTURES:
            if arch.coupling == "decp":
                assert arch.output_path is OutputPath.NIC

    def test_mem_opt_tc_fast_link(self):
        assert get_architecture("mem-opt.tc").output_path is OutputPath.FAST_LINK

    def test_other_tc_pcie_p2p(self):
        for name in ("base.tc", "cost-opt.tc", "comm-opt.tc"):
            assert get_architecture(name).output_path is OutputPath.PCIE_P2P

    def test_core_counts_follow_section6(self):
        assert get_architecture("base.tc").axe_cores == 3
        assert get_architecture("cost-opt.tc").axe_cores == 2
        assert get_architecture("comm-opt.decp").axe_cores == 2
        assert get_architecture("mem-opt.tc").axe_cores == 10
        assert get_architecture("mem-opt.decp").axe_cores == 2

    def test_cost_opt_lower_latency_than_base(self):
        """On-FPGA NIC bypasses PCIe, shortening the remote path."""
        assert (
            get_architecture("cost-opt.tc").remote_latency_s
            < get_architecture("base.tc").remote_latency_s
        )

    def test_mof_lowest_latency(self):
        assert (
            get_architecture("comm-opt.tc").remote_latency_s
            < get_architecture("cost-opt.tc").remote_latency_s
        )

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            get_architecture("hyper-opt.tc")


class TestOutputBandwidth:
    def test_pcie_p2p(self):
        assert output_bandwidth_per_chip(get_architecture("base.tc")) == 16 * GB

    def test_fast_link(self):
        assert output_bandwidth_per_chip(get_architecture("mem-opt.tc")) == 300 * GB

    def test_nic_output_rejected(self):
        with pytest.raises(ConfigurationError):
            output_bandwidth_per_chip(get_architecture("base.decp"))


class TestValidation:
    def test_bad_coupling(self):
        with pytest.raises(ConfigurationError):
            FaasArchitecture(
                constraint="base",
                coupling="loose",
                remote_path=RemotePath.NIC,
                output_path=OutputPath.NIC,
                local_bw_per_chip=1.0,
                graph_in_fpga_dram=False,
                remote_latency_s=1e-6,
                axe_cores=1,
            )

    def test_bad_cores(self):
        with pytest.raises(ConfigurationError):
            FaasArchitecture(
                constraint="base",
                coupling="tc",
                remote_path=RemotePath.NIC,
                output_path=OutputPath.PCIE_P2P,
                local_bw_per_chip=1.0,
                graph_in_fpga_dram=False,
                remote_latency_s=1e-6,
                axe_cores=0,
            )
