"""Tests for repro.axe.cache (Tech-4 coalescing cache)."""

import pytest

from repro.axe.cache import CoalescingCache
from repro.errors import ConfigurationError


class TestCoalescingCache:
    def test_contiguous_read_coalesces(self):
        cache = CoalescingCache()
        # 27 neighbors x 8B = 216B starting at 0 -> 4 lines.
        requests = cache.access(0, 216, element_bytes=8)
        assert requests == 4
        assert cache.stats.element_accesses == 27

    def test_unaligned_read_spans_extra_line(self):
        cache = CoalescingCache()
        assert cache.requests_for(60, 8) == 2
        assert cache.requests_for(0, 64) == 1

    def test_repeat_access_hits(self):
        cache = CoalescingCache()
        assert cache.access(128, 64) == 1
        assert cache.access(128, 64) == 0
        assert cache.stats.line_hits == 1

    def test_direct_mapped_conflict(self):
        cache = CoalescingCache(capacity_bytes=128, line_bytes=64)  # 2 lines
        cache.access(0, 8)
        cache.access(128, 8)  # same set as 0
        assert cache.access(0, 8) == 1  # evicted

    def test_coalescing_factor(self):
        cache = CoalescingCache()
        cache.access(0, 512, element_bytes=8)  # 64 elements, 8 lines
        assert cache.stats.coalescing_factor == pytest.approx(8.0)

    def test_hit_rate(self):
        cache = CoalescingCache()
        cache.access(0, 64)
        cache.access(0, 64)
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_reset(self):
        cache = CoalescingCache()
        cache.access(0, 64)
        cache.reset()
        assert cache.stats.line_misses == 0
        assert cache.access(0, 64) == 1  # cold again

    def test_8kb_default_geometry(self):
        cache = CoalescingCache()
        assert cache.capacity_bytes == 8 * 1024
        assert cache.num_lines == 128

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoalescingCache(capacity_bytes=100, line_bytes=64)
        with pytest.raises(ConfigurationError):
            CoalescingCache(capacity_bytes=0)
        cache = CoalescingCache()
        with pytest.raises(ConfigurationError):
            cache.access(-1, 8)
        with pytest.raises(ConfigurationError):
            cache.access(0, 0)
        with pytest.raises(ConfigurationError):
            cache.access(0, 8, element_bytes=0)

    def test_no_temporal_reuse_on_random_nodes(self):
        """Tech-4's sizing argument: random node attribute rows from a
        large graph produce essentially no line hits in 8KB."""
        import numpy as np

        rng = np.random.default_rng(0)
        cache = CoalescingCache()
        row_bytes = 544
        hits_before = cache.stats.line_hits
        for node in rng.integers(0, 10_000_000, 2000):
            cache.access(int(node) * row_bytes, row_bytes)
        hit_rate = cache.stats.line_hits / (
            cache.stats.line_hits + cache.stats.line_misses
        )
        assert hit_rate < 0.02
        assert hits_before == 0
