"""Tests for repro.axe.loadunit (Tech-3: OoO massive MLP)."""

import pytest

from repro.axe.events import Simulator
from repro.axe.loadunit import LoadUnit, MemoryChannel
from repro.errors import CapacityError, ConfigurationError
from repro.memstore.links import LinkModel, get_link


def make_channel(sim, latency=1e-6, bandwidth=1e9, overhead=0):
    return MemoryChannel(sim, LinkModel("test", latency, bandwidth, overhead))


class TestMemoryChannel:
    def test_single_request_latency(self):
        sim = Simulator()
        channel = make_channel(sim, latency=1e-6, bandwidth=1e9)
        done = []
        channel.request(1000, lambda: done.append(sim.now))
        sim.run()
        # serialization 1us + base latency 1us
        assert done[0] == pytest.approx(2e-6)

    def test_serialization_enforces_bandwidth(self):
        sim = Simulator()
        channel = make_channel(sim, latency=0.5e-6, bandwidth=1e9)
        done = []
        for _ in range(10):
            channel.request(1000, lambda: done.append(sim.now))
        sim.run()
        # 10 x 1us serialization; last completes at 10us + 0.5us.
        assert done[-1] == pytest.approx(10.5e-6)

    def test_overhead_consumes_bandwidth(self):
        sim = Simulator()
        plain = make_channel(sim, overhead=0)
        heavy = make_channel(sim, overhead=1000)
        t_plain = plain.request(1000, lambda: None)
        t_heavy = heavy.request(1000, lambda: None)
        assert t_heavy > t_plain

    def test_stats(self):
        sim = Simulator()
        channel = make_channel(sim)
        channel.request(500, lambda: None)
        channel.request(300, lambda: None)
        sim.run()
        assert channel.stats.requests == 2
        assert channel.stats.payload_bytes == 800

    def test_utilization_bounds(self):
        sim = Simulator()
        channel = make_channel(sim)
        for _ in range(5):
            channel.request(1000, lambda: None)
        sim.run()
        assert 0 < channel.utilization() <= 1

    def test_rejects_zero_bytes(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            make_channel(sim).request(0, lambda: None)


class TestLoadUnit:
    def _pointer_chase(self, sim, unit, channel, count):
        """Dependent chain: each load issues the next (1 outstanding)."""
        done = []

        def next_load():
            done.append(sim.now)
            if len(done) < count:
                unit.load(channel, 64, next_load)

        unit.load(channel, 64, next_load)
        sim.run()
        return done

    def test_tag_limit_enforced(self):
        sim = Simulator()
        unit = LoadUnit(sim, max_tags=4)
        channel = make_channel(sim, latency=1e-6, bandwidth=1e12)
        for _ in range(16):
            unit.load(channel, 64, lambda: None)
        assert unit.outstanding == 4
        sim.run()
        assert unit.issued == 16

    def test_max_outstanding_tracked(self):
        sim = Simulator()
        unit = LoadUnit(sim, max_tags=8)
        channel = make_channel(sim, latency=1e-6, bandwidth=1e12)
        for _ in range(6):
            unit.load(channel, 64, lambda: None)
        sim.run()
        assert unit.max_outstanding == 6

    def test_ooo_throughput_advantage(self):
        """Tech-3: independent loads with many tags finish ~30x faster
        than a 1-outstanding blocking unit on a long-latency channel."""
        def run(max_tags):
            sim = Simulator()
            unit = LoadUnit(sim, max_tags=max_tags)
            channel = make_channel(sim, latency=3e-6, bandwidth=100e9)
            for _ in range(256):
                unit.load(channel, 64, lambda: None)
            return sim.run()

        blocking = run(1)
        ooo = run(256)
        assert blocking / ooo > 20

    def test_in_order_delivery_order(self):
        """In-order mode delivers responses in issue order even when the
        channel completes them out of order (two channels, one slow)."""
        sim = Simulator()
        unit = LoadUnit(sim, max_tags=8, in_order=True)
        slow = make_channel(sim, latency=10e-6)
        fast = make_channel(sim, latency=1e-6)
        order = []
        unit.load(slow, 64, lambda: order.append("slow"))
        unit.load(fast, 64, lambda: order.append("fast"))
        sim.run()
        assert order == ["slow", "fast"]

    def test_ooo_delivery_order(self):
        sim = Simulator()
        unit = LoadUnit(sim, max_tags=8, in_order=False)
        slow = make_channel(sim, latency=10e-6)
        fast = make_channel(sim, latency=1e-6)
        order = []
        unit.load(slow, 64, lambda: order.append("slow"))
        unit.load(fast, 64, lambda: order.append("fast"))
        sim.run()
        assert order == ["fast", "slow"]

    def test_dependent_chain_is_latency_bound(self):
        sim = Simulator()
        unit = LoadUnit(sim, max_tags=64)
        channel = make_channel(sim, latency=1e-6, bandwidth=1e12)
        done = self._pointer_chase(sim, unit, channel, 10)
        assert done[-1] >= 10e-6  # 10 serialized round trips

    def test_queued_requests_drain(self):
        sim = Simulator()
        unit = LoadUnit(sim, max_tags=2)
        channel = make_channel(sim, latency=1e-6)
        done = [0]

        def tick():
            done[0] += 1

        for _ in range(10):
            unit.load(channel, 64, tick)
        sim.run()
        assert done[0] == 10
        assert unit.outstanding == 0

    def test_rejects_bad_tags(self):
        with pytest.raises(CapacityError):
            LoadUnit(Simulator(), max_tags=0)

    def test_real_link_presets_work(self):
        sim = Simulator()
        unit = LoadUnit(sim, max_tags=16)
        channel = MemoryChannel(sim, get_link("mof_fabric"))
        seen = []
        unit.load(channel, 64, lambda: seen.append(sim.now))
        sim.run()
        assert seen and seen[0] > 0
