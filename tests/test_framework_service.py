"""Tests for repro.framework.service (queueing/latency simulation)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.framework.service import ServiceConfig, ServiceReport, run_service


class TestServiceSimulation:
    def test_all_batches_complete(self):
        config = ServiceConfig(num_workers=4, batches_per_worker=3)
        report = run_service(config, seed=0)
        assert report.total_batches == 12
        assert all(lat > 0 for lat in report.batch_latencies_s)

    def test_deterministic(self):
        config = ServiceConfig(num_workers=2, batches_per_worker=2)
        a = run_service(config, seed=3)
        b = run_service(config, seed=3)
        assert a.batch_latencies_s == b.batch_latencies_s

    def test_p99_at_least_p50(self):
        report = run_service(ServiceConfig(num_workers=8, batches_per_worker=4))
        assert report.p99 >= report.p50 > 0

    def test_contention_raises_latency(self):
        """More workers on the same servers -> higher tail latency."""
        quiet = run_service(
            ServiceConfig(num_workers=1, batches_per_worker=4), seed=0
        )
        busy = run_service(
            ServiceConfig(num_workers=24, batches_per_worker=4), seed=0
        )
        assert busy.p99 > quiet.p99

    def test_more_servers_cut_latency(self):
        few = run_service(
            ServiceConfig(num_servers=2, num_workers=12), seed=0
        )
        many = run_service(
            ServiceConfig(num_servers=8, num_workers=12), seed=0
        )
        assert many.p50 < few.p50

    def test_throughput_grows_with_workers_then_saturates(self):
        rates = []
        for workers in (1, 4, 16, 64):
            report = run_service(
                ServiceConfig(num_workers=workers, batches_per_worker=2), seed=1
            )
            rates.append(report.throughput_batches_per_s)
        assert rates[1] > rates[0]
        # Saturation: the last doubling gains less than the first.
        assert rates[3] / rates[2] < rates[1] / rates[0]

    def test_deadline_miss_rate_monotone(self):
        report = run_service(ServiceConfig(num_workers=16), seed=0)
        tight = report.deadline_miss_rate(report.p50 * 0.5)
        loose = report.deadline_miss_rate(report.p99 * 2)
        assert tight > loose
        assert loose == 0.0

    def test_inference_deadline_story(self):
        """Challenge-1: under load, a deadline placed at the quiet-system
        p99 is missed by a loaded system."""
        quiet = run_service(
            ServiceConfig(num_workers=1, batches_per_worker=6), seed=0
        )
        deadline = quiet.p99 * 1.2
        loaded = run_service(
            ServiceConfig(num_workers=32, batches_per_worker=3), seed=0
        )
        assert loaded.deadline_miss_rate(deadline) > 0.3

    def test_queue_depth_tracked(self):
        report = run_service(ServiceConfig(num_workers=16), seed=0)
        assert report.server_max_queue >= 1

    def test_faster_service_cuts_latency(self):
        slow = run_service(ServiceConfig(per_key_service_s=6e-6), seed=0)
        fast = run_service(ServiceConfig(per_key_service_s=1e-6), seed=0)
        assert fast.p50 < slow.p50


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(num_servers=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(per_key_service_s=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(fanouts=())
        with pytest.raises(ConfigurationError):
            ServiceConfig(batches_per_worker=0)

    def test_report_validation(self):
        report = ServiceReport([], 0.0, 0, 0)
        assert math.isnan(report.percentile(50))
        with pytest.raises(ConfigurationError):
            ServiceReport([1.0], 1.0, 1, 1).deadline_miss_rate(0)

    def test_empty_report_miss_rate(self):
        assert math.isnan(ServiceReport([], 0.0, 0, 0).deadline_miss_rate(1.0))


class TestReportEdgeCases:
    def test_percentile_empty_is_nan(self):
        """Zero completed requests: percentiles are undefined, not an
        exception and not zero."""
        empty = ServiceReport([], 0.0, 0, 0)
        for q in (0, 50, 99, 100):
            assert math.isnan(empty.percentile(q))
        assert math.isnan(empty.p50)
        assert math.isnan(empty.p99)

    def test_percentile_out_of_range_still_raises_when_empty(self):
        empty = ServiceReport([], 0.0, 0, 0)
        for q in (-1, 101):
            with pytest.raises(ConfigurationError):
                empty.percentile(q)

    def test_deadline_rejects_non_positive(self):
        report = ServiceReport([1.0], 1.0, 1, 1)
        for deadline in (0, -1e-6, -5.0):
            with pytest.raises(ConfigurationError):
                report.deadline_miss_rate(deadline)

    def test_empty_latencies_miss_rate_nan(self):
        assert math.isnan(ServiceReport([], 0.0, 0, 0).deadline_miss_rate(1e-9))

    def test_zero_time_throughput(self):
        assert ServiceReport([], 0.0, 0, 0).throughput_batches_per_s == 0.0

    def test_run_service_deterministic_default_config(self):
        a = run_service(seed=11)
        b = run_service(seed=11)
        assert a.batch_latencies_s == b.batch_latencies_s
        assert a.total_time_s == b.total_time_s
        assert a.server_max_queue == b.server_max_queue

    def test_run_service_seed_changes_jitter(self):
        a = run_service(ServiceConfig(num_workers=4), seed=0)
        b = run_service(ServiceConfig(num_workers=4), seed=1)
        assert a.total_batches == b.total_batches
        assert a.batch_latencies_s != b.batch_latencies_s


class TestBatchedSampling:
    def test_batched_speeds_up_service(self):
        slow = run_service(ServiceConfig(batches_per_worker=2), seed=0)
        fast = run_service(
            ServiceConfig(batches_per_worker=2, batched_sampling=True), seed=0
        )
        assert fast.p50 < slow.p50
        assert fast.total_time_s < slow.total_time_s

    def test_effective_per_key_service(self):
        config = ServiceConfig(batched_sampling=True, batched_speedup=4.0)
        assert config.effective_per_key_service_s == config.per_key_service_s / 4.0
        off = ServiceConfig()
        assert off.effective_per_key_service_s == off.per_key_service_s

    def test_speedup_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(batched_speedup=0.5)


class TestMutationTraffic:
    def test_rps_zero_is_bit_identical(self):
        """Regression: adding the mutation path must not perturb the
        historical rps=0 simulation (no RNG draws, no extra events)."""
        config = ServiceConfig(num_workers=4, batches_per_worker=3)
        baseline = run_service(config, seed=0)
        with_field = run_service(
            ServiceConfig(
                num_workers=4, batches_per_worker=3, mutation_rps=0.0
            ),
            seed=0,
        )
        assert baseline.batch_latencies_s == with_field.batch_latencies_s
        assert baseline.total_time_s == with_field.total_time_s
        assert with_field.mutations_applied == 0

    def test_mutations_served(self):
        config = ServiceConfig(
            num_workers=4, batches_per_worker=4, mutation_rps=50_000.0
        )
        report = run_service(config, seed=0)
        assert report.mutations_applied > 0

    def test_mutations_contend_with_reads(self):
        """Expensive mutations steal server time from reads."""
        from repro.units import US

        quiet = run_service(
            ServiceConfig(num_workers=8, batches_per_worker=4), seed=0
        )
        busy = run_service(
            ServiceConfig(
                num_workers=8,
                batches_per_worker=4,
                mutation_rps=200_000.0,
                per_mutation_service_s=100 * US,
            ),
            seed=0,
        )
        assert busy.mutations_applied > 0
        assert busy.p50 > quiet.p50

    def test_mutation_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(mutation_rps=-1.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(per_mutation_service_s=0.0)

    def test_mutation_runs_deterministic(self):
        config = ServiceConfig(
            num_workers=2, batches_per_worker=2, mutation_rps=100_000.0
        )
        a = run_service(config, seed=5)
        b = run_service(config, seed=5)
        assert a.batch_latencies_s == b.batch_latencies_s
        assert a.mutations_applied == b.mutations_applied
