"""Tests for repro.framework.cache."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.framework.cache import HotNodeCache


class TestHotNodeCache:
    def test_miss_then_hit(self):
        cache = HotNodeCache(4)
        assert cache.get_neighbors(1) is None
        cache.put_neighbors(1, np.array([2, 3]))
        assert cache.get_neighbors(1).tolist() == [2, 3]
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = HotNodeCache(2)
        cache.put_neighbors(1, np.array([0]))
        cache.put_neighbors(2, np.array([0]))
        cache.get_neighbors(1)  # touch 1 so 2 is LRU
        cache.put_neighbors(3, np.array([0]))
        assert cache.get_neighbors(2) is None
        assert cache.get_neighbors(1) is not None

    def test_attribute_cache_independent(self):
        cache = HotNodeCache(2)
        cache.put_neighbors(1, np.array([5]))
        assert cache.get_attributes(1) is None
        cache.put_attributes(1, np.array([1.0, 2.0]))
        assert cache.get_attributes(1).tolist() == [1.0, 2.0]

    def test_attribute_eviction(self):
        cache = HotNodeCache(1)
        cache.put_attributes(1, np.zeros(2))
        cache.put_attributes(2, np.zeros(2))
        assert cache.get_attributes(1) is None
        assert cache.get_attributes(2) is not None

    def test_put_updates_existing(self):
        cache = HotNodeCache(2)
        cache.put_neighbors(1, np.array([9]))
        cache.put_neighbors(1, np.array([7]))
        assert cache.get_neighbors(1).tolist() == [7]

    def test_hit_rate(self):
        cache = HotNodeCache(4)
        cache.put_neighbors(1, np.array([0]))
        cache.get_neighbors(1)
        cache.get_neighbors(2)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert HotNodeCache(1).hit_rate == 0.0

    def test_reset_stats_keeps_contents(self):
        cache = HotNodeCache(4)
        cache.put_neighbors(1, np.array([0]))
        cache.get_neighbors(1)
        cache.reset_stats()
        assert cache.hits == 0 and cache.misses == 0
        assert cache.get_neighbors(1) is not None

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            HotNodeCache(0)

    def test_combined_capacity_budget(self):
        """Regression: neighbor and attribute entries share one node
        budget — the old per-facet budgets cached up to 2x capacity."""
        cache = HotNodeCache(4)
        for node in range(4):
            cache.put_neighbors(node, np.array([0]))
        for node in range(4, 8):
            cache.put_attributes(node, np.zeros(2))
        assert len(cache) == 4
        # The neighbor entries were LRU across the combined order.
        for node in range(4):
            assert cache.get_neighbors(node) is None
        for node in range(4, 8):
            assert cache.get_attributes(node) is not None

    def test_node_with_both_facets_counts_once(self):
        cache = HotNodeCache(2)
        cache.put_neighbors(1, np.array([0]))
        cache.put_attributes(1, np.array([0.5]))
        cache.put_neighbors(2, np.array([0]))
        assert len(cache) == 2
        assert cache.get_neighbors(1) is not None
        assert cache.get_attributes(1) is not None
        assert cache.get_neighbors(2) is not None

    def test_eviction_drops_both_facets(self):
        cache = HotNodeCache(1)
        cache.put_neighbors(1, np.array([0]))
        cache.put_attributes(1, np.array([0.5]))
        cache.put_neighbors(2, np.array([0]))
        assert cache.get_neighbors(1) is None
        assert cache.get_attributes(1) is None

    def test_cross_facet_lru_order(self):
        """Touching a node's attribute row protects its neighbor list."""
        cache = HotNodeCache(2)
        cache.put_neighbors(1, np.array([0]))
        cache.put_neighbors(2, np.array([0]))
        cache.put_attributes(1, np.array([0.5]))  # refreshes node 1
        cache.put_neighbors(3, np.array([0]))  # evicts node 2
        assert cache.get_neighbors(2) is None
        assert cache.get_neighbors(1) is not None

    def test_split_hit_miss_counters(self):
        cache = HotNodeCache(4)
        cache.put_neighbors(1, np.array([0]))
        cache.put_attributes(1, np.array([0.5]))
        cache.get_neighbors(1)
        cache.get_neighbors(2)
        cache.get_attributes(1)
        cache.get_attributes(1)
        cache.get_attributes(3)
        assert cache.neighbor_hits == 1 and cache.neighbor_misses == 1
        assert cache.attribute_hits == 2 and cache.attribute_misses == 1
        assert cache.hits == 3 and cache.misses == 2

    def test_reset_stats_zeroes_split_counters(self):
        cache = HotNodeCache(4)
        cache.put_neighbors(1, np.array([0]))
        cache.get_neighbors(1)
        cache.get_attributes(1)
        cache.reset_stats()
        assert cache.neighbor_hits == 0 and cache.neighbor_misses == 0
        assert cache.attribute_hits == 0 and cache.attribute_misses == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_invalidate_drops_both_facets(self):
        cache = HotNodeCache(4)
        cache.put_neighbors(1, np.array([0]))
        cache.put_attributes(1, np.array([0.5]))
        assert cache.invalidate(1) is True
        assert cache.get_neighbors(1) is None
        assert cache.get_attributes(1) is None
        assert cache.invalidations == 1

    def test_invalidate_absent_node_is_noop(self):
        cache = HotNodeCache(4)
        assert cache.invalidate(7) is False
        assert cache.invalidations == 0

    def test_invalidate_frees_capacity(self):
        cache = HotNodeCache(2)
        cache.put_neighbors(1, np.array([0]))
        cache.put_neighbors(2, np.array([0]))
        cache.invalidate(1)
        cache.put_neighbors(3, np.array([0]))  # must not evict node 2
        assert cache.get_neighbors(2) is not None
        assert cache.get_neighbors(3) is not None

    def test_reset_stats_zeroes_invalidations(self):
        cache = HotNodeCache(4)
        cache.put_neighbors(1, np.array([0]))
        cache.invalidate(1)
        cache.reset_stats()
        assert cache.invalidations == 0

    def test_lsd_gnn_reuse_is_low(self):
        """Tech-4's premise: random 512-batches over a large graph have
        almost no temporal reuse for a small cache."""
        rng = np.random.default_rng(0)
        cache = HotNodeCache(capacity_nodes=1024)  # "hardware-sized"
        num_nodes = 1_000_000
        for _ in range(20):
            batch = rng.integers(0, num_nodes, 512)
            for node in batch:
                if cache.get_neighbors(int(node)) is None:
                    cache.put_neighbors(int(node), np.empty(0, dtype=np.int64))
        assert cache.hit_rate < 0.01


class TestAliasingRegression:
    def test_put_copies_callers_array(self):
        cache = HotNodeCache(capacity_nodes=4)
        neighbors = np.array([1, 2, 3], dtype=np.int64)
        cache.put_neighbors(0, neighbors)
        neighbors[0] = 99  # caller mutates after insert
        assert cache.get_neighbors(0).tolist() == [1, 2, 3]
        row = np.array([1.0, 2.0], dtype=np.float32)
        cache.put_attributes(1, row)
        row[:] = 0.0
        assert cache.get_attributes(1).tolist() == [1.0, 2.0]

    def test_returned_arrays_are_read_only(self):
        cache = HotNodeCache(capacity_nodes=4)
        cache.put_neighbors(0, np.array([1, 2]))
        cache.put_attributes(0, np.array([3.0], dtype=np.float32))
        hit = cache.get_neighbors(0)
        with pytest.raises(ValueError):
            hit[0] = 7
        with pytest.raises(ValueError):
            cache.get_attributes(0)[0] = 7.0
        # The cache itself is uncorrupted.
        assert cache.get_neighbors(0).tolist() == [1, 2]

    def test_bump_stats(self):
        cache = HotNodeCache(capacity_nodes=4)
        cache.bump_neighbor_stats(hits=3, misses=1)
        cache.bump_attribute_stats(hits=2, misses=4)
        assert cache.neighbor_hits == 3 and cache.neighbor_misses == 1
        assert cache.attribute_hits == 2 and cache.attribute_misses == 4
        assert cache.hits == 5 and cache.misses == 5
