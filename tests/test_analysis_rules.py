"""Per-rule tests: every rule fires on its bad fixture, stays quiet on
its good fixture, and handles the edge cases the fixtures don't show."""

from pathlib import Path

import pytest

from repro.analysis import analyze_source, all_rules, get_rule
from repro.analysis.lintcli import fixture_path

#: The enforced rule pack (meta rules are engine-emitted and excluded).
RULE_IDS = [
    "acct-mutation",
    "det-rng",
    "det-wallclock",
    "except-swallow",
    "mutable-default",
    "sim-clock",
    "units-magic",
]


def rules_fired(source, **kwargs):
    result = analyze_source(source, **kwargs)
    return {finding.rule for finding in result.findings}


# ----------------------------------------------------------- fixture pack
@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bad_fixture_fires(rule_id):
    path = fixture_path(rule_id, "bad")
    assert path.exists(), f"missing bad fixture for {rule_id}"
    fired = rules_fired(path.read_text(encoding="utf-8"), path=str(path))
    assert rule_id in fired


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_good_fixture_is_clean(rule_id):
    path = fixture_path(rule_id, "good")
    assert path.exists(), f"missing good fixture for {rule_id}"
    fired = rules_fired(path.read_text(encoding="utf-8"), path=str(path))
    assert rule_id not in fired


def test_every_registered_rule_documented():
    for rule in all_rules():
        assert rule.title and rule.rationale, rule.rule_id


# ----------------------------------------------------------- det-wallclock
def test_wallclock_flags_from_import_and_alias():
    fired = rules_fired(
        "from time import perf_counter\n",
        module_path="repro/framework/sampler.py",
    )
    assert "det-wallclock" in fired
    fired = rules_fired(
        "import time as clock\n\n\ndef f():\n    return clock.monotonic()\n",
        module_path="repro/framework/sampler.py",
    )
    assert "det-wallclock" in fired


def test_wallclock_allows_bench_module():
    source = "import time\n\n\ndef f():\n    return time.perf_counter()\n"
    assert rules_fired(source, module_path="repro/bench.py") == set()


def test_wallclock_allows_timedelta_import():
    fired = rules_fired(
        "from datetime import timedelta\n",
        module_path="repro/framework/sampler.py",
    )
    assert "det-wallclock" not in fired


# ----------------------------------------------------------------- det-rng
def test_rng_flags_seed_none_kwarg():
    fired = rules_fired(
        "import numpy as np\nrng = np.random.default_rng(seed=None)\n",
        module_path="repro/framework/sampler.py",
    )
    assert "det-rng" in fired


def test_rng_allows_seeded_variable():
    fired = rules_fired(
        "import numpy as np\n\n\ndef f(seed):\n"
        "    return np.random.default_rng(seed)\n",
        module_path="repro/framework/sampler.py",
    )
    assert "det-rng" not in fired


def test_rng_flags_legacy_module_functions():
    fired = rules_fired(
        "import numpy as np\nx = np.random.rand(3)\n",
        module_path="repro/gnn/train.py",
    )
    assert "det-rng" in fired


# ------------------------------------------------------------- units-magic
def test_units_allowed_inside_units_module():
    source = "GIGA = 1_000_000_000\nrate = 16 * 1e9 / 8.0\n"
    assert rules_fired(source, module_path="repro/units.py") == set()


def test_units_flags_pow_1024():
    fired = rules_fired(
        "size = 4 * 1024 ** 3\n", module_path="repro/memstore/layout.py"
    )
    assert "units-magic" in fired


def test_units_ignores_non_conversion_ints():
    fired = rules_fired(
        "batch = max(4 * rate, 1024)\nmask = word << 20\n",
        module_path="repro/riscv/isa.py",
    )
    assert "units-magic" not in fired


# ----------------------------------------------------------- acct-mutation
def test_accounting_allows_owner_module():
    source = "def record(s):\n    s.structure_count += 1\n"
    assert (
        "acct-mutation"
        not in rules_fired(source, module_path="repro/memstore/store.py")
    )


def test_accounting_flags_reset_outside_owner():
    source = "def reset(stats):\n    stats.failed_reads = 0\n"
    fired = rules_fired(source, module_path="repro/serving/gateway.py")
    assert "acct-mutation" in fired


def test_accounting_ignores_unrelated_attributes():
    source = "def f(obj):\n    obj.total = 3\n    obj.total += 1\n"
    fired = rules_fired(source, module_path="repro/serving/gateway.py")
    assert "acct-mutation" not in fired


# ---------------------------------------------------------- except-swallow
def test_bare_except_flagged_everywhere():
    source = "try:\n    f()\nexcept:\n    handle()\n"
    fired = rules_fired(source, module_path="repro/gnn/train.py")
    assert "except-swallow" in fired


def test_silent_handler_ok_outside_fault_paths():
    source = "try:\n    f()\nexcept ValueError:\n    pass\n"
    fired = rules_fired(source, module_path="repro/gnn/train.py")
    assert "except-swallow" not in fired


def test_recording_handler_ok_on_fault_path():
    source = (
        "try:\n    f()\nexcept ValueError:\n    stats.record_failure()\n"
    )
    fired = rules_fired(source, module_path="repro/memstore/faults.py")
    assert "except-swallow" not in fired


# ---------------------------------------------------------- mutable-default
def test_mutable_default_in_lambda_and_kwonly():
    fired = rules_fired(
        "f = lambda xs=[]: xs\n", module_path="repro/gnn/train.py"
    )
    assert "mutable-default" in fired
    fired = rules_fired(
        "def f(*, table={}):\n    return table\n",
        module_path="repro/gnn/train.py",
    )
    assert "mutable-default" in fired


def test_none_default_is_clean():
    fired = rules_fired(
        "def f(xs=None):\n    return xs or []\n",
        module_path="repro/gnn/train.py",
    )
    assert "mutable-default" not in fired


# ---------------------------------------------------------------- sim-clock
def test_sim_clock_scoped_to_event_modules():
    source = "import time\n"
    assert "sim-clock" in rules_fired(
        source, module_path="repro/serving/scheduler.py"
    )
    assert "sim-clock" in rules_fired(
        source, module_path="repro/framework/service.py"
    )
    assert "sim-clock" not in rules_fired(
        source, module_path="repro/gnn/train.py"
    )


# --------------------------------------------------------------- meta rules
def test_parse_error_is_a_finding():
    result = analyze_source("def broken(:\n", path="x.py")
    assert [f.rule for f in result.findings] == ["parse-error"]


def test_explain_fixture_pairs_exist_for_rule_pack():
    for rule_id in RULE_IDS:
        assert get_rule(rule_id) is not None
        for kind in ("bad", "good"):
            assert fixture_path(rule_id, kind).exists()


def test_fixture_module_marker_respected():
    path = fixture_path("sim-clock", "bad")
    result = analyze_source(path.read_text(encoding="utf-8"), path=str(path))
    assert result.findings, "marker should scope fixture into serving/"
    assert all(
        f.path == "repro/serving/stamp_fixture.py" for f in result.findings
    )
