"""Tests for repro.cluster.autoscaler (policies, min-cost planning, hysteresis)."""

import pytest

from repro.cluster.autoscaler import (
    Autoscaler,
    ClusterSnapshot,
    CostModelPolicy,
    DemandForecast,
    ReactivePolicy,
    StaticPolicy,
    get_policy,
    plan_min_cost_fleet,
)
from repro.cluster.replica import ReplicaFlavor
from repro.errors import ConfigurationError


def flavor(arch, cap, price):
    return ReplicaFlavor(
        arch=arch, size="medium", roots_per_second=cap, price_per_hour=price
    )


#: price-per-capacity: huge 1.5e-3 < big 2.4e-3 < small 5e-3.
CATALOG = {
    "small": flavor("small", 1_000, 5.0),
    "big": flavor("big", 5_000, 12.0),
    "huge": flavor("huge", 20_000, 30.0),
}


def snapshot(time_s=0.0, observed=0.0, active=()):
    return ClusterSnapshot(
        time_s=time_s,
        observed_roots_per_s=observed,
        active=tuple(active),
        loads={},
    )


class TestMinCostPlan:
    def test_small_demand_uses_cheapest_covering_flavor(self):
        assert plan_min_cost_fleet(500, CATALOG) == {"small": 1}

    def test_medium_demand_skips_undersized_flavors(self):
        # small (1k) cannot cover 1.5k; big is cheaper than huge.
        assert plan_min_cost_fleet(1_500, CATALOG) == {"big": 1}

    def test_large_demand_mixes_primary_and_topper(self):
        # 45k = 2x huge (40k) + a 5k remainder covered by one big.
        assert plan_min_cost_fleet(45_000, CATALOG) == {"huge": 2, "big": 1}

    def test_zero_demand_keeps_a_minimum_fleet(self):
        assert sum(plan_min_cost_fleet(0.0, CATALOG).values()) == 1

    def test_empty_catalog_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_min_cost_fleet(100, {})

    def test_deterministic_tie_break_by_arch_name(self):
        twins = {
            "b-arch": flavor("b-arch", 1_000, 5.0),
            "a-arch": flavor("a-arch", 1_000, 5.0),
        }
        assert plan_min_cost_fleet(500, twins) == {"a-arch": 1}


class TestPolicies:
    def test_static_sizes_for_the_peak(self):
        policy = StaticPolicy(arch="small")
        forecast = DemandForecast(
            mean_roots_per_s=900, peak_roots_per_s=2_500
        )
        assert policy.initial_target(forecast, CATALOG) == {"small": 3}

    def test_static_never_changes(self):
        policy = StaticPolicy(arch="small", replicas=2)
        active = (("r1", "small"), ("r2", "small"))
        assert policy.decide(
            snapshot(observed=99_999, active=active), CATALOG
        ) == {"small": 2}

    def test_reactive_tracks_observed_demand(self):
        policy = ReactivePolicy(arch="small", headroom=1.25)
        forecast = DemandForecast(
            mean_roots_per_s=2_000, peak_roots_per_s=4_000
        )
        assert policy.initial_target(forecast, CATALOG) == {"small": 3}
        assert policy.decide(snapshot(observed=3_000), CATALOG) == {
            "small": 4
        }
        assert policy.decide(snapshot(observed=100), CATALOG) == {"small": 1}

    def test_reactive_queue_kick_adds_one(self):
        policy = ReactivePolicy(arch="small", headroom=1.0, kick_score=10)
        from repro.serving.gateway import GatewayLoad

        snap = ClusterSnapshot(
            time_s=0.0,
            observed_roots_per_s=900,
            active=(("r1", "small"),),
            loads={
                "r1": GatewayLoad(
                    queue_depth=50, in_flight_batches=0, in_flight_roots=0
                )
            },
        )
        assert policy.decide(snap, CATALOG) == {"small": 2}

    def test_cost_policy_switches_flavor_with_demand(self):
        policy = CostModelPolicy(headroom=1.0)
        assert policy.decide(snapshot(observed=800), CATALOG) == {"small": 1}
        assert policy.decide(snapshot(observed=4_000), CATALOG) == {"big": 1}

    def test_get_policy(self):
        assert isinstance(get_policy("static"), StaticPolicy)
        assert isinstance(get_policy("least-loaded"), ReactivePolicy)
        assert isinstance(get_policy("cost"), CostModelPolicy)
        with pytest.raises(ConfigurationError):
            get_policy("vibes")


class TestAutoscaler:
    def test_scale_up_is_immediate(self):
        scaler = Autoscaler(
            ReactivePolicy(arch="small", headroom=1.0), CATALOG
        )
        plan = scaler.plan(
            snapshot(time_s=1.0, observed=2_500, active=(("r1", "small"),))
        )
        assert plan.spawn == ["small", "small"]
        assert plan.drain == []

    def test_scale_down_waits_for_cooldown(self):
        scaler = Autoscaler(
            ReactivePolicy(arch="small", headroom=1.0),
            CATALOG,
            scale_down_cooldown_s=0.5,
        )
        active = (("r1", "small"), ("r2", "small"), ("r3", "small"))
        first = scaler.plan(snapshot(time_s=1.0, observed=100, active=active))
        assert first.drain == []
        early = scaler.plan(snapshot(time_s=1.4, observed=100, active=active))
        assert early.drain == []
        late = scaler.plan(snapshot(time_s=1.6, observed=100, active=active))
        # Newest members drain first.
        assert late.drain == ["r3", "r2"]

    def test_rebound_cancels_pending_scale_down(self):
        scaler = Autoscaler(
            ReactivePolicy(arch="small", headroom=1.0),
            CATALOG,
            scale_down_cooldown_s=0.5,
        )
        active = (("r1", "small"), ("r2", "small"))
        scaler.plan(snapshot(time_s=1.0, observed=100, active=active))
        # Demand rebounds: surplus clock resets.
        scaler.plan(snapshot(time_s=1.3, observed=1_900, active=active))
        again = scaler.plan(snapshot(time_s=1.7, observed=100, active=active))
        assert again.drain == []

    def test_flavor_swap_spawns_then_drains(self):
        scaler = Autoscaler(
            CostModelPolicy(headroom=1.0), CATALOG, scale_down_cooldown_s=0.0
        )
        active = (("r1", "small"),)
        plan = scaler.plan(snapshot(time_s=1.0, observed=4_000, active=active))
        assert plan.spawn == ["big"]
        assert plan.drain == ["r1"]

    def test_initial_fleet_orders_by_arch(self):
        scaler = Autoscaler(StaticPolicy(arch="small"), CATALOG)
        forecast = DemandForecast(
            mean_roots_per_s=1_000, peak_roots_per_s=2_500
        )
        assert scaler.initial_fleet(forecast) == ["small"] * 3
