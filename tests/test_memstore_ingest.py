"""Tests for repro.memstore.ingest (online-mutation store)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.framework.cache import HotNodeCache
from repro.framework.replay import replay_reference
from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.graph.csr import CSRGraph
from repro.graph.dynamic import DynamicGraph
from repro.graph.generators import power_law_graph
from repro.graph.partition import HashPartitioner
from repro.memstore.ingest import (
    EDGE,
    NODE,
    DynamicPartitionedStore,
    Mutation,
    growth_trace,
)
from repro.memstore.store import PartitionedStore


def make_graph(num_nodes=64, attr_len=4, seed=0):
    return power_law_graph(num_nodes, 4.0, attr_len=attr_len, seed=seed)


def make_store(graph=None, compact_threshold=10_000, partitions=2):
    graph = graph if graph is not None else make_graph()
    dynamic = DynamicGraph(graph, compact_threshold=compact_threshold)
    return DynamicPartitionedStore(dynamic, HashPartitioner(partitions))


class TestMutation:
    def test_kind_validation(self):
        with pytest.raises(ConfigurationError):
            Mutation("swap", src=0, dst=1)

    def test_growth_trace_deterministic(self):
        a = growth_trace(32, 50, seed=3)
        b = growth_trace(32, 50, seed=3)
        assert a == b
        assert len(a) == 50

    def test_growth_trace_timeline(self):
        trace = growth_trace(32, 10, duration_s=1.0, seed=0)
        times = [m.time_s for m in trace]
        assert times == sorted(times)
        assert times[0] == 0.0
        assert times[-1] < 1.0

    def test_growth_trace_validation(self):
        with pytest.raises(ConfigurationError):
            growth_trace(0, 10)
        with pytest.raises(ConfigurationError):
            growth_trace(10, -1)
        with pytest.raises(ConfigurationError):
            growth_trace(10, 10, new_node_probability=2.0)


class TestConstruction:
    def test_rejects_reliability(self):
        dynamic = DynamicGraph(make_graph())
        with pytest.raises(ConfigurationError):
            # Rejected before the path is ever exercised, so any
            # non-None stand-in triggers the gate.
            DynamicPartitionedStore(
                dynamic, HashPartitioner(2), reliability=object()
            )

    def test_view_tracks_live_epoch(self):
        store = make_store()
        assert store.epoch == 0
        store.apply([Mutation(EDGE, src=0, dst=1)])
        assert store.epoch == 1


class TestRateZeroParity:
    """With zero mutations the dynamic store must be byte-identical to
    a static PartitionedStore over the same CSR."""

    def test_walk_parity(self):
        graph = make_graph()
        static = PartitionedStore(graph, HashPartitioner(2))
        dynamic = make_store(graph)
        request = SampleRequest(roots=np.arange(8), fanouts=(4, 3))
        res_s = MultiHopSampler(static, seed=0).sample(request)
        res_d = MultiHopSampler(dynamic, seed=0).sample(request)
        for a, b in zip(res_s.layers, res_d.layers):
            assert np.array_equal(a, b)
        for a, b in zip(res_s.attributes, res_d.attributes):
            assert np.array_equal(a, b)
        assert static.summary == dynamic.summary

    def test_batched_parity(self):
        graph = make_graph()
        static = PartitionedStore(graph, HashPartitioner(2))
        dynamic = make_store(graph)
        request = SampleRequest(roots=np.arange(16), fanouts=(5, 2))
        res_s = MultiHopSampler(static, seed=1, batched=True).sample(request)
        res_d = MultiHopSampler(dynamic, seed=1, batched=True).sample(request)
        for a, b in zip(res_s.layers, res_d.layers):
            assert np.array_equal(a, b)
        assert static.summary == dynamic.summary

    def test_replay_parity_rate_zero(self):
        graph = make_graph()
        dynamic = make_store(graph)
        request = SampleRequest(roots=np.arange(8), fanouts=(4,))
        result = MultiHopSampler(dynamic, seed=0, batched=True).sample(request)
        fresh = make_store(graph)
        replay_reference(result, request, fresh)
        assert fresh.summary == dynamic.summary


class TestDeltaAccounting:
    def test_delta_hit_counters(self):
        store = make_store(CSRGraph.from_edges(4, [(0, 1)]))
        store.apply([Mutation(EDGE, src=0, dst=2), Mutation(EDGE, src=0, dst=3)])
        store.get_neighbors(0)
        assert store.ingest_stats.delta_hits == 1
        assert store.ingest_stats.delta_edges_read == 2

    def test_delta_adds_one_structure_access(self):
        base = CSRGraph.from_edges(4, [(0, 1)])
        static = PartitionedStore(base, HashPartitioner(2))
        static.get_neighbors(0)
        store = make_store(base)
        store.apply([Mutation(EDGE, src=0, dst=2)])
        store.get_neighbors(0)
        # index + offsets + base block + one extra delta block
        assert store.summary.structure_count == static.summary.structure_count + 1
        assert (
            store.summary.structure_bytes
            == static.summary.structure_bytes + 1 * store.id_bytes
        )

    def test_batched_matches_walk_accounting(self):
        graph = make_graph(32)
        store_a = make_store(graph)
        store_b = make_store(graph)
        trace = growth_trace(32, 40, seed=5)
        store_a.apply(trace)
        store_b.apply(trace)
        nodes = list(range(store_a.view.num_nodes))
        batch = store_a.get_neighbors_batch(nodes)
        for i, node in enumerate(nodes):
            walked = store_b.get_neighbors(node)
            assert batch[i].tolist() == walked.tolist()
        assert store_a.summary == store_b.summary
        assert store_a.ingest_stats.delta_hits == store_b.ingest_stats.delta_hits
        assert (
            store_a.ingest_stats.delta_edges_read
            == store_b.ingest_stats.delta_edges_read
        )

    def test_replay_parity_with_live_delta(self):
        graph = make_graph()
        store = make_store(graph)
        trace = growth_trace(64, 60, new_node_probability=0.0, seed=2)
        store.apply(trace)
        request = SampleRequest(roots=np.arange(8), fanouts=(4, 3))
        result = MultiHopSampler(store, seed=0, batched=True).sample(request)
        fresh = make_store(graph)
        fresh.apply(trace)
        replay_reference(result, request, fresh)
        assert fresh.summary == store.summary


class TestPinning:
    def test_pinned_read_ignores_mutations(self):
        store = make_store(CSRGraph.from_edges(4, [(0, 1)]))
        with store.read_view():
            before = store.get_neighbors(0).tolist()
            store.apply([Mutation(EDGE, src=0, dst=3)])
            assert store.get_neighbors(0).tolist() == before
        assert store.get_neighbors(0).tolist() == [1, 3]

    def test_pinned_read_one_epoch(self):
        store = make_store()
        sampler = MultiHopSampler(store, seed=0)
        sampler.sample(SampleRequest(roots=np.arange(4), fanouts=(3, 2)))
        assert len(store.last_sample_epochs) == 1

    def test_mid_sample_mutation_not_torn(self):
        """A mutation landing between selector calls must not tear the
        multi-hop sample: every read still resolves at one epoch."""
        store = make_store()
        fired = []

        def selector(neighbors, fanout, rng):
            if not fired:
                fired.append(True)
                store.apply(growth_trace(64, 8, new_node_probability=1.0, seed=9))
            return rng.choice(neighbors, size=fanout, replace=True)

        sampler = MultiHopSampler(store, seed=0, selector=selector)
        result = sampler.sample(SampleRequest(roots=np.arange(4), fanouts=(3, 2)))
        assert len(store.last_sample_epochs) == 1
        new_ids = set(range(64, store.view.num_nodes))
        for layer in result.layers:
            assert not (set(layer.reshape(-1).tolist()) & new_ids)

    def test_pin_survives_compaction(self):
        store = make_store(CSRGraph.from_edges(4, [(0, 1)]), compact_threshold=2)
        with store.read_view():
            store.apply(
                [Mutation(EDGE, src=0, dst=2), Mutation(EDGE, src=0, dst=3)]
            )
            assert store.ingest_stats.compactions == 1
            assert store.get_neighbors(0).tolist() == [1]
        assert store.get_neighbors(0).tolist() == [1, 2, 3]

    def test_reentrant_pin(self):
        store = make_store()
        with store.read_view():
            with store.read_view():
                assert store.pinned
            assert store.pinned
        assert not store.pinned


class TestCacheInvalidation:
    def test_mutation_invalidates_cache(self):
        store = make_store(CSRGraph.from_edges(4, [(0, 1)]))
        cache = HotNodeCache(capacity_nodes=4)
        store.register_cache(cache)
        cache.put_neighbors(0, store.get_neighbors(0))
        assert cache.get_neighbors(0) is not None
        store.apply([Mutation(EDGE, src=0, dst=2)])
        assert cache.get_neighbors(0) is None
        assert store.ingest_stats.cache_invalidations == 1

    def test_unpin_reinvalidates_touched_nodes(self):
        """Regression: a pinned sampler can re-cache pinned-epoch data
        *after* the mutation-time invalidation; unpin must sweep it."""
        store = make_store(CSRGraph.from_edges(4, [(0, 1)]))
        cache = HotNodeCache(capacity_nodes=4)
        store.register_cache(cache)
        with store.read_view():
            store.apply([Mutation(EDGE, src=0, dst=2)])
            # The pinned reader re-caches the old adjacency.
            cache.put_neighbors(0, store.get_neighbors(0))
            assert cache.get_neighbors(0).tolist() == [1]
        assert cache.get_neighbors(0) is None  # swept on unpin

    def test_node_mutation_with_attach_invalidates_new_node(self):
        store = make_store(CSRGraph.from_edges(4, [(0, 1)]))
        store.apply([Mutation(NODE, attach_to=1)])
        assert store.view.num_nodes == 5
        assert store.get_neighbors(4).tolist() == [1]
        assert store.ingest_stats.nodes_added == 1
        assert store.ingest_stats.edges_added == 1
