"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.axe.cache import CoalescingCache
from repro.axe.sampling import ReservoirSampler, StreamingSampler
from repro.axe.scoreboard import OrderingScoreboard
from repro.framework.selectors import select_streaming, select_uniform
from repro.graph.csr import CSRGraph
from repro.graph.partition import HashPartitioner, RangePartitioner
from repro.memstore.links import LinkModel
from repro.mof.bdi import bdi_compress, bdi_decompress, compress_block, decompress_block
from repro.mof.frames import GENZ, MOF, batch_breakdown
from repro.mof.protocol import run_transfer
from repro.riscv import isa


# --------------------------------------------------------------------- graph
@st.composite
def edge_lists(draw):
    num_nodes = draw(st.integers(1, 50))
    num_edges = draw(st.integers(0, 200))
    edges = [
        (draw(st.integers(0, num_nodes - 1)), draw(st.integers(0, num_nodes - 1)))
        for _ in range(num_edges)
    ]
    return num_nodes, edges


class TestCsrProperties:
    @given(edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_csr_preserves_edge_multiset(self, data):
        num_nodes, edges = data
        graph = CSRGraph.from_edges(num_nodes, edges)
        rebuilt = sorted(
            (int(src), int(dst))
            for src in range(num_nodes)
            for dst in graph.neighbors(src)
        )
        assert rebuilt == sorted(edges)

    @given(edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_degrees_sum_to_edges(self, data):
        num_nodes, edges = data
        graph = CSRGraph.from_edges(num_nodes, edges)
        assert int(graph.degrees().sum()) == len(edges)


# ----------------------------------------------------------------- partition
class TestPartitionProperties:
    @given(
        st.integers(1, 16),
        st.lists(st.integers(0, 10_000), min_size=1, max_size=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_hash_partition_total(self, parts, nodes):
        partitioner = HashPartitioner(parts)
        owners = partitioner.partition_of(np.array(nodes))
        assert ((owners >= 0) & (owners < parts)).all()

    @given(st.integers(1, 8), st.integers(1, 500))
    @settings(max_examples=50, deadline=None)
    def test_range_partition_covers_everything_once(self, parts, num_nodes):
        partitioner = RangePartitioner(parts, num_nodes)
        owners = partitioner.partition_of(np.arange(num_nodes))
        # Partition IDs are non-decreasing and within range.
        assert (np.diff(owners) >= 0).all()
        assert owners.max() < parts


# ------------------------------------------------------------------ sampling
class TestSamplingProperties:
    @given(
        st.lists(st.integers(0, 10**6), min_size=1, max_size=200),
        st.integers(1, 32),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_selectors_return_members(self, neighbors, fanout, seed):
        neighbors = np.array(neighbors)
        rng = np.random.default_rng(seed)
        for selector in (select_uniform, select_streaming):
            picks = selector(neighbors, fanout, rng)
            assert len(picks) == fanout
            assert set(np.asarray(picks).tolist()) <= set(neighbors.tolist())

    @given(st.integers(1, 1000), st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_streaming_never_slower_cycles(self, candidates, fanout):
        streaming = StreamingSampler().cycles(candidates, fanout)
        reservoir = ReservoirSampler().cycles(candidates, fanout)
        assert streaming <= reservoir
        assert streaming == max(candidates, fanout)


# ---------------------------------------------------------------- scoreboard
class TestScoreboardProperties:
    @given(st.permutations(list(range(12))))
    @settings(max_examples=40, deadline=None)
    def test_any_completion_order_releases_in_order(self, completion_order):
        board = OrderingScoreboard(12)
        ids = [board.allocate() for _ in range(12)]
        released = []
        for index in completion_order:
            board.complete(ids[index], index)
            released.extend(board.release_ready())
        assert released == list(range(12))


# ----------------------------------------------------------------------- BDI
class TestBdiProperties:
    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_block_roundtrip(self, block):
        decoded = decompress_block(compress_block(block))
        assert decoded[: len(block)] == block

    @given(st.binary(min_size=1, max_size=512))
    @settings(max_examples=60, deadline=None)
    def test_stream_roundtrip(self, data):
        blocks = bdi_compress(data)
        assert bdi_decompress(blocks, len(data)) == data

    @given(
        st.integers(0, 2**60),
        st.integers(1, 255),
        st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_clustered_values_compress(self, base, spread, count):
        values = (base + np.arange(count) % spread).astype(np.uint64)
        data = values.tobytes()
        blocks = bdi_compress(data)
        assert bdi_decompress(blocks, len(data)) == data

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_encoded_never_much_larger(self, block):
        assert len(compress_block(block)) <= 65  # raw + 1 header byte


# -------------------------------------------------------------------- frames
class TestFrameProperties:
    @given(st.integers(1, 4096), st.integers(1, 1024))
    @settings(max_examples=60, deadline=None)
    def test_fractions_sum_to_one(self, requests, size):
        for fmt in (GENZ, MOF):
            row = batch_breakdown(fmt, requests, size)
            total = row.header_fraction + row.addr_fraction + row.data_utilization
            assert total == pytest.approx(1.0)

    @given(st.integers(1, 4096), st.integers(1, 256))
    @settings(max_examples=60, deadline=None)
    def test_mof_packs_fewer_frames(self, requests, size):
        assert (
            batch_breakdown(MOF, requests, size).frames
            <= batch_breakdown(GENZ, requests, size).frames
        )


# ------------------------------------------------------------------ protocol
class TestProtocolProperties:
    @given(
        st.lists(st.binary(min_size=0, max_size=16), min_size=1, max_size=30),
        st.floats(0.0, 0.5),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_exactly_once_in_order(self, payloads, loss, seed):
        result = run_transfer(payloads, loss_rate=loss, seed=seed)
        assert result.received == payloads


# ----------------------------------------------------------------------- ISA
class TestIsaProperties:
    @given(
        st.integers(0, 31),
        st.integers(0, 31),
        st.integers(0, 31),
        st.sampled_from([0b000, 0b001, 0b010, 0b011, 0b100, 0b101, 0b110, 0b111]),
        st.sampled_from([0b0000000, 0b0100000]),
    )
    @settings(max_examples=60, deadline=None)
    def test_rtype_roundtrip(self, rd, rs1, rs2, funct3, funct7):
        instr = isa.Instruction(
            isa.OPCODE_OP, rd=rd, rs1=rs1, rs2=rs2, funct3=funct3, funct7=funct7
        )
        assert isa.decode(isa.encode(instr)) == instr

    @given(st.integers(0, 31), st.integers(0, 31), st.integers(-2048, 2047))
    @settings(max_examples=60, deadline=None)
    def test_itype_imm_roundtrip(self, rd, rs1, imm):
        instr = isa.Instruction(
            isa.OPCODE_OP_IMM, rd=rd, rs1=rs1, funct3=0b000, imm=imm
        )
        assert isa.decode(isa.encode(instr)).imm == imm

    @given(st.integers(-4096, 4094).filter(lambda x: x % 2 == 0))
    @settings(max_examples=60, deadline=None)
    def test_branch_offset_roundtrip(self, imm):
        instr = isa.Instruction(isa.OPCODE_BRANCH, rs1=1, rs2=2, funct3=0, imm=imm)
        assert isa.decode(isa.encode(instr)).imm == imm


# ------------------------------------------------------------------- link
class TestLinkProperties:
    @given(
        st.floats(1e-9, 1e-3),
        st.floats(1e6, 1e12),
        st.integers(0, 256),
        st.integers(1, 1 << 20),
        st.integers(1, 10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_effective_bandwidth_bounded_by_peak(
        self, latency, peak, overhead, request, outstanding
    ):
        link = LinkModel("x", latency, peak, overhead)
        # Allow float rounding exactly at the wire bound.
        assert link.effective_bandwidth(request, outstanding) <= peak * (1 + 1e-9)


# ------------------------------------------------------------------- cache
class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1 << 20), st.integers(1, 512)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_requests_never_exceed_lines_spanned(self, accesses):
        cache = CoalescingCache()
        for addr, nbytes in accesses:
            issued = cache.access(addr, nbytes)
            assert 0 <= issued <= cache.requests_for(addr, nbytes)


# ---------------------------------------------------------------- topology
class TestTopologyProperties:
    @given(st.integers(2, 10))
    @settings(max_examples=30, deadline=None)
    def test_mesh_always_single_hop(self, num_nodes):
        from repro.mof.topology import full_mesh

        mesh = full_mesh(num_nodes)
        for src in range(num_nodes):
            for dst in range(num_nodes):
                assert mesh.hops(src, dst) == (0 if src == dst else 1)

    @given(st.integers(3, 12))
    @settings(max_examples=30, deadline=None)
    def test_ring_hops_bounded_by_half(self, num_nodes):
        from repro.mof.topology import ring

        topology = ring(num_nodes)
        for dst in range(num_nodes):
            assert topology.hops(0, dst) <= num_nodes // 2


# ------------------------------------------------------------------- index
class TestIndexProperties:
    @given(
        st.lists(
            st.integers(0, 2**62), min_size=1, max_size=200, unique=True
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_index_roundtrip(self, externals):
        from repro.memstore.index import ExternalIdIndex

        index = ExternalIdIndex.build(np.array(externals, dtype=np.uint64))
        for internal, external in enumerate(externals):
            assert index.lookup(external) == internal

    @given(
        st.lists(st.integers(0, 2**62), min_size=1, max_size=100, unique=True),
        st.integers(0, 2**62),
    )
    @settings(max_examples=40, deadline=None)
    def test_absent_keys_return_none(self, externals, probe):
        from repro.memstore.index import ExternalIdIndex

        index = ExternalIdIndex.build(np.array(externals, dtype=np.uint64))
        if probe not in externals:
            assert index.lookup(probe) is None


# ----------------------------------------------------------- dynamic graph
class TestDynamicGraphProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 19), st.integers(0, 19)),
            min_size=0,
            max_size=100,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_compaction_is_transparent(self, edges):
        from repro.graph.csr import CSRGraph
        from repro.graph.dynamic import DynamicGraph

        graph = DynamicGraph(CSRGraph.from_edges(20, []), compact_threshold=10**9)
        graph.add_edges(edges)
        before = {n: sorted(graph.neighbors(n).tolist()) for n in range(20)}
        graph.compact()
        after = {n: sorted(graph.neighbors(n).tolist()) for n in range(20)}
        assert before == after
        assert graph.num_edges == len(edges)
