"""Project-layer (``--deep``) analyzer tests: the crossmodule fixture
pairs, the per-file engine's provable blindness to them, dependency-
closure cache invalidation, and rule-signature cache keying."""

import time
from pathlib import Path

import repro
from repro.analysis import AnalysisEngine, analyze_source
from repro.analysis.project import build_project_from_sources
from repro.analysis.rules import MODULE_MARKER_RE, all_project_rules
from repro.analysis.rules import determinism
from repro.analysis.rules.crossmodule import registry
from repro.analysis.rules.crossmodule.counters import CounterOwnershipRule
from repro.analysis.rules.crossmodule.pins import PinDisciplineRule
from repro.analysis.rules.crossmodule.rng import RngProvenanceRule
from repro.analysis.rules.crossmodule.shm import ShmViewWriteRule

SRC_ROOT = Path(repro.__file__).parent
FIXTURES = SRC_ROOT / "analysis" / "fixtures" / "crossmodule"

RULE_DIRS = {
    "shm_view_write": ShmViewWriteRule,
    "pin_discipline": PinDisciplineRule,
    "rng_provenance": RngProvenanceRule,
    "counter_ownership": CounterOwnershipRule,
}


def load_sources(directory):
    """Fixture dir -> {module_path: source}, keyed by the marker line."""
    sources = {}
    for path in sorted(directory.glob("*.py")):
        text = path.read_text(encoding="utf-8")
        module_path = str(path)
        for line in text.splitlines()[:3]:
            match = MODULE_MARKER_RE.search(line)
            if match:
                module_path = match.group(1)
                break
        sources[module_path] = text
    return sources


def run_fixture(rule_dir, kind):
    rule_cls = RULE_DIRS[rule_dir]
    sources = load_sources(FIXTURES / rule_dir / kind)
    assert len(sources) >= 2, "crossmodule fixtures must span files"
    project = build_project_from_sources(sources)
    return rule_cls().check_project(project)


# ----------------------------------------------------- fixture pairs
def test_shm_view_write_fixture_pair():
    findings = run_fixture("shm_view_write", "bad")
    assert [f.rule for f in findings] == ["shm-view-write"] * 2
    assert {f.path for f in findings} == {"repro/gnn/plane_writer.py"}
    assert run_fixture("shm_view_write", "good") == []


def test_pin_discipline_fixture_pair():
    findings = run_fixture("pin_discipline", "bad")
    assert [f.rule for f in findings] == ["pin-discipline"]
    # The unpinned read is flagged where it happens — in the helper
    # module — but attributed to the sampler entry point.
    assert findings[0].path == "repro/framework/hop_walker.py"
    assert "HopSampler.sample" in findings[0].message
    assert run_fixture("pin_discipline", "good") == []


def test_rng_provenance_fixture_pair():
    findings = run_fixture("rng_provenance", "bad")
    assert [f.rule for f in findings] == ["rng-provenance"]
    assert findings[0].path == "repro/gnn/rng_trainer.py"
    assert "hash" in findings[0].message
    assert run_fixture("rng_provenance", "good") == []


def test_counter_ownership_fixture_pair():
    findings = run_fixture("counter_ownership", "bad")
    assert [f.rule for f in findings] == ["counter-ownership"]
    assert findings[0].path == "repro/gnn/stats_worker.py"
    assert ".widget_count" in findings[0].message
    assert run_fixture("counter_ownership", "good") == []


def test_per_file_engine_cannot_flag_bad_fixtures():
    """Each bad fixture file is clean in isolation: the violation only
    exists in the cross-module view, which is the point of the tier."""
    checked = 0
    for rule_dir in RULE_DIRS:
        for path in sorted((FIXTURES / rule_dir / "bad").glob("*.py")):
            result = analyze_source(
                path.read_text(encoding="utf-8"), path=str(path)
            )
            assert result.findings == [], (
                f"{path} should be per-file clean but got "
                f"{[f.to_dict() for f in result.findings]}"
            )
            checked += 1
    assert checked >= 8


# ------------------------------------------------ deep cache behavior
STATS_SRC = """\
# repro-module: repro/framework/tstats.py
class TStats:
    __counter_class__ = True

    def __init__(self):
        self.zorp_count = 0

    def record_zorp(self):
        self.zorp_count += 1


def make_tstats():
    return TStats()
"""

WORKER_SRC = """\
# repro-module: repro/gnn/tworker.py
from repro.framework.tstats import make_tstats


def run_once():
    s = make_tstats()
    s.zorp_count += 1
    return s
"""

OTHER_SRC = """\
# repro-module: repro/gnn/tother.py
def noop():
    return 0
"""


def write_project(root):
    (root / "stats.py").write_text(STATS_SRC, encoding="utf-8")
    (root / "worker.py").write_text(WORKER_SRC, encoding="utf-8")
    (root / "other.py").write_text(OTHER_SRC, encoding="utf-8")


def test_deep_cache_full_reuse_and_closure_invalidation(tmp_path):
    proj = tmp_path / "proj"
    proj.mkdir()
    write_project(proj)
    cache = tmp_path / "cache.json"

    cold = AnalysisEngine(cache_path=cache).run_deep([proj])
    assert not cold.project_reused
    assert cold.project_cache_hits == 0
    assert [f.rule for f in cold.project_findings] == ["counter-ownership"]
    assert cold.project_findings[0].path == "repro/gnn/tworker.py"

    # Nothing changed: the whole pass is served from cache without
    # rebuilding the graph.
    warm = AnalysisEngine(cache_path=cache).run_deep([proj])
    assert warm.project_reused
    assert warm.project_cache_hits == warm.project_modules == 3
    assert [f.to_dict() for f in warm.project_findings] == [
        f.to_dict() for f in cold.project_findings
    ]

    # Editing the *imported* module invalidates the importer's closure
    # even though the importer's own bytes are untouched: dropping the
    # counter marker makes worker's finding disappear.
    (proj / "stats.py").write_text(
        STATS_SRC.replace("    __counter_class__ = True\n\n", ""),
        encoding="utf-8",
    )
    third = AnalysisEngine(cache_path=cache).run_deep([proj])
    assert not third.project_reused
    # Only the unrelated module's dependency closure still matches.
    assert third.project_cache_hits == 1
    assert third.project_findings == []


def test_deep_warm_run_is_5x_faster_than_cold(tmp_path):
    cache = tmp_path / "cache.json"

    start = time.perf_counter()
    cold = AnalysisEngine(cache_path=cache).run_deep([SRC_ROOT])
    cold_s = time.perf_counter() - start
    assert not cold.project_reused
    assert cold.project_modules > 50

    start = time.perf_counter()
    warm = AnalysisEngine(cache_path=cache).run_deep([SRC_ROOT])
    warm_s = time.perf_counter() - start
    assert warm.project_reused
    assert warm.project_cache_hits == warm.project_modules
    assert [f.to_dict() for f in warm.project_findings] == [
        f.to_dict() for f in cold.project_findings
    ]
    assert warm_s * 5 <= cold_s, (
        f"warm deep run not >=5x faster: cold={cold_s:.3f}s "
        f"warm={warm_s:.3f}s"
    )


# ------------------------------------------------- signature keying
def test_rule_scope_config_changes_rules_signature(monkeypatch):
    engine = AnalysisEngine()
    before = engine._rules_signature()
    monkeypatch.setattr(
        determinism,
        "WALLCLOCK_ALLOWLIST",
        set(determinism.WALLCLOCK_ALLOWLIST) | {"repro/extra.py"},
    )
    assert engine._rules_signature() != before


def test_registry_change_alters_both_signatures(monkeypatch):
    engine = AnalysisEngine()
    rules_before = engine._rules_signature()
    project_before = engine._project_signature()
    patched = dict(registry.COUNTER_OWNERS)
    patched["zorp_count"] = ("repro/framework/tstats.py",)
    monkeypatch.setattr(registry, "COUNTER_OWNERS", patched)
    # acct-mutation (file tier) and counter-ownership (project tier)
    # both fold the registry into their signatures.
    assert engine._rules_signature() != rules_before
    assert engine._project_signature() != project_before


def test_signature_change_invalidates_file_cache(tmp_path, monkeypatch):
    target = tmp_path / "mod.py"
    target.write_text("x = 1\n", encoding="utf-8")
    cache = tmp_path / "cache.json"

    AnalysisEngine(cache_path=cache).run([target])
    warm = AnalysisEngine(cache_path=cache).run([target])
    assert warm.cache_hits == 1

    monkeypatch.setattr(
        determinism,
        "WALLCLOCK_ALLOWLIST",
        set(determinism.WALLCLOCK_ALLOWLIST) | {"repro/extra.py"},
    )
    rescanned = AnalysisEngine(cache_path=cache).run([target])
    assert rescanned.cache_hits == 0


def test_all_project_rules_registered():
    ids = {rule.rule_id for rule in all_project_rules()}
    assert ids == {
        "shm-view-write",
        "pin-discipline",
        "rng-provenance",
        "counter-ownership",
    }
