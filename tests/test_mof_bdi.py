"""Tests for repro.mof.bdi (Table 6 compression)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.mof.bdi import (
    bdi_compress,
    bdi_decompress,
    compress_addresses,
    compress_block,
    compressed_size,
    decompress_block,
)


class TestBlockRoundtrip:
    def test_zeros_block(self):
        block = b"\x00" * 64
        encoded = compress_block(block)
        assert len(encoded) == 1
        assert decompress_block(encoded) == block

    def test_repeat_block(self):
        block = b"\x12\x34\x56\x78\x9a\xbc\xde\xf0" * 8
        encoded = compress_block(block)
        assert len(encoded) == 9
        assert decompress_block(encoded) == block

    def test_base8_delta1(self):
        values = np.arange(1000, 1008, dtype=np.uint64)
        block = values.tobytes()
        encoded = compress_block(block)
        assert len(encoded) == 1 + 8 + 8  # header + base + 8x1B deltas
        assert decompress_block(encoded) == block

    def test_base8_delta2(self):
        values = (np.arange(8, dtype=np.uint64) * 300) + 7
        block = values.tobytes()
        encoded = compress_block(block)
        assert len(encoded) == 1 + 8 + 16
        assert decompress_block(encoded) == block

    def test_incompressible_falls_back_to_raw(self):
        rng = np.random.default_rng(0)
        block = rng.integers(0, 2**63, 8, dtype=np.int64).tobytes()
        encoded = compress_block(block)
        assert len(encoded) == 65
        assert decompress_block(encoded) == block

    def test_short_block_padded(self):
        encoded = compress_block(b"\x01" * 10)
        decoded = decompress_block(encoded)
        assert decoded[:10] == b"\x01" * 10
        assert len(decoded) == 64

    def test_negative_deltas(self):
        values = np.array([1000, 999, 998, 997, 1001, 1002, 1000, 1000], dtype=np.uint64)
        block = values.tobytes()
        encoded = compress_block(block)
        assert len(encoded) < 64
        assert decompress_block(encoded) == block

    def test_rejects_oversize(self):
        with pytest.raises(ConfigurationError):
            compress_block(b"\x00" * 65)


class TestStreamRoundtrip:
    def test_multi_block(self):
        data = np.arange(500, 564, dtype=np.uint64).tobytes()  # 512B
        blocks = bdi_compress(data)
        assert len(blocks) == 8
        assert bdi_decompress(blocks, len(data)) == data

    def test_unaligned_length(self):
        data = b"\x07" * 100
        blocks = bdi_compress(data)
        assert bdi_decompress(blocks, 100) == data

    def test_compressed_size_beats_raw_for_clustered(self):
        addresses = (np.arange(128, dtype=np.uint64) * 8) + 0x7F000000
        raw = addresses.tobytes()
        assert compressed_size(raw) < len(raw) / 3

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            bdi_compress(b"")

    def test_decompress_length_check(self):
        blocks = bdi_compress(b"\x00" * 64)
        with pytest.raises(ProtocolError):
            bdi_decompress(blocks, 1000)

    def test_corrupt_block_rejected(self):
        with pytest.raises(ProtocolError):
            decompress_block(b"")
        with pytest.raises(ProtocolError):
            decompress_block(bytes([2]) + b"\x00" * 3)  # truncated payload
        with pytest.raises(ProtocolError):
            decompress_block(bytes([42]) + b"\x00" * 10)  # unknown encoding


class TestTable6Shape:
    def test_address_compression_effective(self):
        """Tech-2: request addresses cluster around region bases and
        compress well (the Table 6 addr-compression win)."""
        rng = np.random.default_rng(0)
        base = np.uint64(0x4000_0000)
        addresses = base + rng.integers(0, 4096, 128).astype(np.uint64)
        compressed = compress_addresses(addresses)
        assert compressed < 128 * 8 / 2

    def test_attribute_data_compression(self):
        """Quantized embedding-like data compresses well under BDI."""
        rng = np.random.default_rng(1)
        data = (rng.integers(-100, 100, 128) + 2**16).astype(np.uint64).tobytes()
        assert compressed_size(data) < len(data) / 2

    def test_table6_progression(self):
        """GENZ > MoF > MoF+data-comp > MoF+addr-comp total bytes for
        128x8B reads (Table 6's left-to-right saving progression)."""
        from repro.mof.frames import GENZ, MOF, batch_breakdown

        rng = np.random.default_rng(2)
        data = (rng.integers(0, 50, 128) + 10_000).astype(np.uint64).tobytes()
        addresses = (np.uint64(0x1000_0000) + rng.integers(0, 8192, 128).astype(np.uint64))
        genz = batch_breakdown(GENZ, 128, 8).total_bytes
        mof = batch_breakdown(MOF, 128, 8).total_bytes
        data_comp = batch_breakdown(
            MOF, 128, 8, compressed_data_bytes=compressed_size(data)
        ).total_bytes
        addr_comp = batch_breakdown(
            MOF, 128, 8,
            compressed_data_bytes=compressed_size(data),
            compressed_addr_bytes=compress_addresses(addresses),
        ).total_bytes
        assert genz > mof > data_comp > addr_comp
        assert mof / genz < 0.4  # ~75% saving in the paper
