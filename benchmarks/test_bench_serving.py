"""Online serving gateway: throughput/latency under rising load.

Not a numbered paper figure, but the ROADMAP north star ("serve heavy
traffic from millions of users"): the gateway's admitted-p99 and shed
rate as offered load sweeps from provisioned to 4x, plus the batch
coalescing that sustains throughput (HP-GNN's observation that
sustained rate comes from batching, not per-request latency).
"""

from repro.api import GnnSession
from repro.graph.datasets import instantiate_dataset
from repro.serving import default_tenants


def run_load(session, tenants, factor, duration_s=0.4):
    scaled = [spec.overloaded(factor) for spec in tenants]
    return session.serve(
        tenants=scaled,
        duration_s=duration_s,
        functional=False,
        seed=7,
    )


def test_serving_load_sweep(benchmark, report):
    graph = instantiate_dataset("ls", max_nodes=3000, seed=0)
    session = GnnSession(graph, num_partitions=4, seed=0)
    tenants = default_tenants(0.4)
    baseline = benchmark.pedantic(
        run_load, args=(session, tenants, 1.0), rounds=1, iterations=1
    )
    results = [(1.0, baseline)]
    for factor in (2.0, 4.0):
        results.append((factor, run_load(session, tenants, factor)))
    lines = ["load  offered  completed  qps     p50(ms)  p99(ms)  shed%  occupancy"]
    for factor, r in results:
        lines.append(
            f"{factor:>4.1f}  {r.offered:>7}  {r.completed:>9}"
            f"  {r.completed_qps:>6.0f}  {1e3 * r.p50:>7.3f}"
            f"  {1e3 * r.p99:>7.3f}  {100 * r.shed_rate:>5.1f}"
            f"  {r.mean_batch_occupancy:>9.2f}"
        )
    report("Online serving — load sweep (admitted p99 + shed rate)",
           "\n".join(lines))
    # Shape: baseline admits ~everything under SLO with coalescing;
    # overload sheds instead of letting the admitted tail blow up.
    assert baseline.shed_rate < 0.05
    assert baseline.mean_batch_occupancy > 1.0
    assert all(
        baseline.tenants[t.name].p99 < t.slo_s for t in tenants
    )
    overload_4x = results[-1][1]
    assert overload_4x.shed_rate > 0.2
    assert overload_4x.completed == overload_4x.admitted
    assert overload_4x.p99 < 10 * baseline.p99 + 20e-3
    # Heavier load coalesces more, not less.
    assert overload_4x.mean_batch_occupancy >= baseline.mean_batch_occupancy
