"""Supplemental benchmarks beyond the paper's numbered figures.

1. Challenge-1's latency claim: deadline misses under load.
2. Fabric topology: the PoC's full mesh vs ring/chain alternatives.
3. §4.1's on-FPGA aggregation (VPU) output-traffic reduction.
4. GEMM engine: FPGA FP32 is not GPU-competitive (the §9 ASIC/GPU
   discussion's premise).
"""

import numpy as np

from repro.axe.gemm import GemmConfig, GemmEngine
from repro.axe.vpu import VectorUnit, onfpga_aggregation_speedup
from repro.framework.service import ServiceConfig, run_service
from repro.mof.topology import chain, full_mesh, ring
from repro.units import GB


def test_challenge1_latency(benchmark, report):
    quiet = run_service(ServiceConfig(num_workers=1, batches_per_worker=6))
    loaded = benchmark.pedantic(
        run_service,
        args=(ServiceConfig(num_workers=32, batches_per_worker=3),),
        rounds=1,
        iterations=1,
    )
    deadline = quiet.p99 * 1.2
    miss = loaded.deadline_miss_rate(deadline)
    lines = [
        "load    p50(ms)  p99(ms)",
        f"quiet   {1e3 * quiet.p50:>7.2f}  {1e3 * quiet.p99:>7.2f}",
        f"loaded  {1e3 * loaded.p50:>7.2f}  {1e3 * loaded.p99:>7.2f}",
        f"deadline at 1.2x quiet p99: {100 * miss:.0f}% missed under load",
    ]
    report("Challenge-1 — latency cannot be bought with throughput", "\n".join(lines))
    assert loaded.p99 > 2 * quiet.p99
    assert miss > 0.3


def test_fabric_topologies(benchmark, report):
    def build():
        return {
            "mesh": full_mesh(4),
            "ring": ring(4),
            "chain": chain(4),
        }

    topologies = benchmark(build)
    lines = ["topology  links  pair_BW(GB/s)  bisection(GB/s)  max_hops"]
    for name, topology in topologies.items():
        max_hops = max(
            topology.hops(s, d) for s in range(4) for d in range(4) if s != d
        )
        lines.append(
            f"{name:<9} {len(topology.links):>5}"
            f"  {topology.effective_pair_bandwidth() / GB:>12.2f}"
            f"  {topology.bisection_bandwidth() / GB:>14.2f}"
            f"  {max_hops:>8}"
        )
    report("Fabric topology — why the PoC uses a full mesh", "\n".join(lines))
    mesh, ring4, chain4 = (
        topologies["mesh"], topologies["ring"], topologies["chain"],
    )
    assert mesh.effective_pair_bandwidth() > ring4.effective_pair_bandwidth()
    assert mesh.bisection_bandwidth() > ring4.bisection_bandwidth() > (
        chain4.bisection_bandwidth()
    )


def test_vpu_aggregation(benchmark, report):
    vpu = VectorUnit()
    rng = np.random.default_rng(0)
    neighborhoods = rng.standard_normal((64, 10, 128)).astype(np.float32)

    def reduce_all():
        return vpu.reduce_neighborhood("max", neighborhoods)

    reduced, _cycles = benchmark(reduce_all)
    speedup = onfpga_aggregation_speedup(
        attr_len=128, fanout=10, output_bandwidth=16 * GB, batch_nodes=640
    )
    lines = [
        f"raw output rows: 640 x 512B; reduced: 64 x 512B",
        f"output-traffic reduction: {speedup:.1f}x (== fanout)",
        f"functional check: reduced shape {reduced.shape}",
        "paper (§4.1): FPGA compute units are preferable for reductions",
        "in the sampling stage to reduce communication, e.g. GCN.",
    ]
    report("VPU — on-FPGA aggregation", "\n".join(lines))
    assert reduced.shape == (64, 128)
    assert np.allclose(reduced, neighborhoods.max(axis=1))
    assert speedup == 10.0


def test_gemm_not_gpu_class(benchmark, report):
    engine = GemmEngine(GemmConfig(array_rows=32, array_cols=32))
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 128)).astype(np.float32)
    b = rng.standard_normal((128, 128)).astype(np.float32)

    def run():
        return engine.matmul(a, b)

    result, _cycles = benchmark(run)
    lines = [
        f"32x32 systolic array @ 250MHz: peak "
        f"{engine.config.peak_tflops:.3f} TFLOPs FP32",
        f"achieved on 256x128x128: {engine.achieved_tflops():.3f} TFLOPs",
        "a V100-class GPU delivers ~14 TFLOPs FP32 — the paper keeps the",
        "dense NN stage on GPUs and uses the FPGA only for sampling.",
    ]
    report("GEMM — FPGA FP32 is not GPU-competitive", "\n".join(lines))
    assert np.allclose(result, a @ b, atol=1e-3)
    assert engine.config.peak_tflops < 1.0
