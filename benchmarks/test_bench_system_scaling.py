"""Multi-card system scaling: the 4-card PoC as one simulation.

Not a numbered paper figure, but the PoC's reason to exist: four cards
with MoF P2P links sample faster than one despite ~75% of accesses
crossing the fabric ("For scaling out, the MoF is designed for
supporting multi-node communication").
"""

import numpy as np

from repro.axe.system import MultiCardSystem, SystemConfig
from repro.graph.datasets import instantiate_dataset
from repro.mof.topology import full_mesh, ring


def run_cards(num_cards, graph, roots, topology=None):
    system = MultiCardSystem(
        graph,
        SystemConfig(num_cards=num_cards, output_link=None),
        topology=topology,
    )
    return system.run_batch(roots)


def test_system_scaling(benchmark, report):
    graph = instantiate_dataset("ls", max_nodes=6000, seed=0)
    roots = np.arange(96)
    four = benchmark.pedantic(
        run_cards, args=(4, graph, roots), rounds=1, iterations=1
    )
    one = run_cards(1, graph, roots)
    two = run_cards(2, graph, roots)
    ring4 = run_cards(4, graph, roots, topology=ring(4))
    lines = [
        "cards  topology  roots/s      speedup  remote%",
        f"1      -         {one.roots_per_second:>10.0f}  {1.0:>7.2f}  {100 * one.remote_fraction:>6.1f}",
        f"2      mesh      {two.roots_per_second:>10.0f}  {two.roots_per_second / one.roots_per_second:>7.2f}  {100 * two.remote_fraction:>6.1f}",
        f"4      mesh      {four.roots_per_second:>10.0f}  {four.roots_per_second / one.roots_per_second:>7.2f}  {100 * four.remote_fraction:>6.1f}",
        f"4      ring      {ring4.roots_per_second:>10.0f}  {ring4.roots_per_second / one.roots_per_second:>7.2f}  {100 * ring4.remote_fraction:>6.1f}",
    ]
    report("System scaling — multi-card PoC over the MoF fabric", "\n".join(lines))
    # Shape: scaling out helps despite the remote fraction; the PoC's
    # mesh is at least as good as a ring.
    assert four.roots_per_second > 1.5 * one.roots_per_second
    assert two.roots_per_second > one.roots_per_second
    assert four.roots_per_second >= 0.98 * ring4.roots_per_second
    assert 0.6 < four.remote_fraction < 0.9
