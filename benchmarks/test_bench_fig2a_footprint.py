"""Figure 2(a): memory footprint of the six graphs and minimal servers."""

from repro.graph.datasets import DATASET_ORDER, get_dataset
from repro.memstore.layout import FootprintModel
from repro.units import TB, format_bytes


def compute_reports():
    model = FootprintModel()
    return [model.report(get_dataset(name)) for name in DATASET_ORDER]


def test_fig2a_footprint(benchmark, report):
    reports = benchmark(compute_reports)
    lines = ["dataset   footprint      min_servers"]
    for row in reports:
        lines.append(
            f"{row.name:<9} {format_bytes(row.total_bytes):<14} {row.min_servers}"
        )
    report("Figure 2(a) — memory footprint & minimal servers", "\n".join(lines))
    # Shape assertions: biggest graph is multi-TB and needs many servers.
    by_name = {row.name: row for row in reports}
    assert by_name["syn"].total_bytes > 5 * TB
    assert by_name["syn"].min_servers >= 10
    assert by_name["ss"].min_servers == 1
