"""Figure 14: PoC GNN sampling rate vs the CPU software baseline."""

from repro.perfmodel.poc import geomean_equivalence, poc_vcpu_equivalence


def compute_rows():
    return poc_vcpu_equivalence(max_nodes=8000, batch_size=96)


def test_fig14_poc_measurement(benchmark, report):
    rows = benchmark.pedantic(compute_rows, rounds=1, iterations=1)
    geomean = geomean_equivalence(rows)
    lines = ["dataset  FPGA(roots/s)  vCPU(roots/s)  vCPU-equivalence"]
    for row in rows:
        lines.append(
            f"{row.dataset:<8} {row.fpga_roots_per_s:>12.0f}"
            f"  {row.vcpu_roots_per_s:>12.1f}  {row.vcpu_equivalence:>15.0f}"
        )
    lines.append(f"geomean equivalence: {geomean:.0f} (paper: 894)")
    report("Figure 14 — PoC sampling measurement", "\n".join(lines))
    # Shape: every dataset beats the vCPU by orders of magnitude; the
    # geomean lands near the paper's 894x.
    assert all(row.vcpu_equivalence > 100 for row in rows)
    assert 600 < geomean < 1300
