"""Table 7: QRCH vs MMIO vs tightly coupled ISA extension."""

from repro.riscv.asm import assemble
from repro.riscv.cpu import RiscvCpu
from repro.riscv.mmio import MmioBus, MmioDevice
from repro.riscv.qrch import INTERACTION_COSTS, TABLE7, Qrch, QrchQueue


def measure_qrch(interactions=32):
    hub = Qrch()
    hub.attach(1, QrchQueue("echo", lambda a, b: a))
    source = ["addi x2, x0, 7"]
    for _ in range(interactions):
        source.append("qpush x0, x2, x0, 1")
        source.append("qpull x4, 1")
    source.append("ecall")
    cpu = RiscvCpu(qrch=hub)
    cpu.load_program(assemble("\n".join(source)))
    cpu.run()
    return hub.interaction_cycles / interactions


def measure_mmio(interactions=32):
    bus = MmioBus(access_cycles=100)
    bus.attach(0x4000_0000, 0x100, MmioDevice("echo"))
    source = ["lui x1, 0x40000", "addi x2, x0, 7"]
    for _ in range(interactions):
        source.append("sw x2, 0(x1)")
        source.append("lw x4, 0(x1)")
    source.append("ecall")
    cpu = RiscvCpu(mmio=bus)
    cpu.load_program(assemble("\n".join(source)))
    cpu.run()
    return bus.interaction_cycles / interactions


def test_table7_qrch(benchmark, report):
    qrch_cycles = benchmark(measure_qrch)
    mmio_cycles = measure_mmio()
    lines = [
        "interface  cycles/interaction (measured)  paper",
        f"mmio       {mmio_cycles:>28.1f}  ~100",
        f"qrch       {qrch_cycles:>28.1f}  ~10",
        f"isa-ext    {INTERACTION_COSTS['isa_ext']:>28}  ~1 (reference cost)",
        "",
        "qualitative (Table 7):",
    ]
    for row in TABLE7:
        lines.append(
            f"  {row.name:<8} programmability={row.programmability:<22}"
            f" toolchain={row.toolchain_effort:<5} extensibility={row.extensibility}"
        )
    report("Table 7 — QRCH vs design alternatives", "\n".join(lines))
    # Shape: one order of magnitude between each tier.
    assert 5 <= qrch_cycles <= 20
    assert mmio_cycles >= 10 * qrch_cycles
    assert qrch_cycles >= 5 * INTERACTION_COSTS["isa_ext"]
