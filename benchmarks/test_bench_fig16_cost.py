"""Figure 16: validating the linear cost model against listed prices."""

from repro.cost.regression import fit_cost_model, validate_cost_model


def fit_and_validate():
    model = fit_cost_model()
    return model, validate_cost_model(model)


def test_fig16_cost_model(benchmark, report):
    model, rows = benchmark(fit_and_validate)
    lines = ["instance    listed($/h)  predicted($/h)  error%"]
    for row in rows:
        lines.append(
            f"{row.product_id:<11} {row.listed:>10.3f}  {row.predicted:>13.3f}"
            f"  {100 * row.error:>6.2f}"
        )
    lines.append(
        f"fitted rates: vCPU={model.per_vcpu:.4f} mem/GB={model.per_mem_gb:.5f}"
        f" FPGA={model.per_fpga:.3f} GPU={model.per_gpu:.3f}"
    )
    lines.append(
        "paper: generally accurate, with the 906GB instance under-estimated"
    )
    report("Figure 16 — cost model validation", "\n".join(lines))
    by_id = {row.product_id: row for row in rows}
    outlier = by_id.pop("ecs-re-x")
    # Shape: small errors everywhere except the large-memory premium,
    # which the linear model under-estimates.
    assert all(row.error < 0.15 for row in by_id.values())
    assert outlier.predicted < outlier.listed
