"""Figure 2(d): round-trip latency and bandwidth vs request size."""

from repro.memstore.links import get_link
from repro.units import US


SIZES = (8, 16, 32, 64, 128, 256, 1024)
LINKS = ("local_dram", "pcie_host_dram", "rdma_remote_dram")


def compute_table():
    table = {}
    for link_name in LINKS:
        link = get_link(link_name)
        table[link_name] = {
            size: (link.latency(size), link.effective_bandwidth(size, 16))
            for size in SIZES
        }
    return table


def test_fig2d_links(benchmark, report):
    table = benchmark(compute_table)
    lines = ["size(B)  " + "".join(f"{n:>22}" for n in LINKS) + "   rdma BW@16 (MB/s)"]
    for size in SIZES:
        row = [f"{size:>7}  "]
        for link_name in LINKS:
            latency, _bw = table[link_name][size]
            row.append(f"{latency / US:>20.2f}us")
        row.append(f"{table['rdma_remote_dram'][size][1] / 1e6:>16.1f}")
        lines.append("".join(row))
    report("Figure 2(d) — latency/bandwidth vs request size", "\n".join(lines))
    # Shape: latency ordering holds at every size; small requests kill
    # remote bandwidth (~100x between 8B and 1024B).
    for size in SIZES:
        assert (
            table["local_dram"][size][0]
            < table["pcie_host_dram"][size][0]
            < table["rdma_remote_dram"][size][0]
        )
    ratio = (
        table["rdma_remote_dram"][1024][1] / table["rdma_remote_dram"][8][1]
    )
    assert ratio > 50
