"""Ablations on the design choices DESIGN.md calls out.

1. MoF packing factor (requests per frame).
2. Load-unit tag budget (outstanding request capacity).
3. GPU-per-throughput rule (Limitation-2's 12.58x -> 1.48x check).
4. Coalescing on/off in the full engine.
"""

import numpy as np

from repro.axe.commands import sample_command
from repro.axe.core import CoreConfig
from repro.axe.engine import AxeEngine, EngineConfig
from repro.faas.dse import FaasDse
from repro.faas.report import arch_geomeans
from repro.graph.datasets import instantiate_dataset
from repro.mof.frames import FrameFormat, batch_breakdown


def sweep_packing():
    utilizations = {}
    for packing in (1, 4, 16, 64, 256):
        fmt = FrameFormat(
            f"pack{packing}", header_bytes=31, addr_bytes=4,
            requests_per_frame=packing,
        )
        utilizations[packing] = batch_breakdown(fmt, 256, 16).data_utilization
    return utilizations


def test_ablation_mof_packing(benchmark, report):
    utilizations = benchmark(sweep_packing)
    lines = ["requests/frame  data_utilization%"]
    for packing, util in utilizations.items():
        lines.append(f"{packing:>14}  {100 * util:>16.2f}")
    report("Ablation — MoF packing factor (16B requests)", "\n".join(lines))
    values = list(utilizations.values())
    assert values == sorted(values)  # more packing, better utilization
    assert utilizations[64] / utilizations[1] > 1.8


def sweep_tags():
    graph = instantiate_dataset("ls", max_nodes=5000, seed=0)
    rates = {}
    for tags in (4, 16, 64, 256):
        config = EngineConfig(
            num_cores=1,
            core=CoreConfig(max_tags=tags, window=16),
            num_fpga_nodes=4,
            output_link=None,
        )
        engine = AxeEngine(graph, config)
        roots = np.arange(64)
        _r, stats = engine.run(sample_command(roots, (10, 10)))
        rates[tags] = stats.roots_per_second
    return rates


def test_ablation_tag_budget(benchmark, report):
    rates = benchmark.pedantic(sweep_tags, rounds=1, iterations=1)
    lines = ["tags  roots/s"]
    for tags, rate in rates.items():
        lines.append(f"{tags:>4}  {rate:>10.0f}")
    report("Ablation — load-unit tag budget (Tech-3 sizing)", "\n".join(lines))
    assert rates[256] > rates[4]  # MLP pays off
    # Diminishing returns: the last doubling gains less than the first.
    first_gain = rates[16] / rates[4]
    last_gain = rates[256] / rates[64]
    assert last_gain < first_gain


def test_ablation_gpu_rule(benchmark, report):
    def evaluate(gpus):
        dse = FaasDse(gpus_per_12gbps=gpus)
        return arch_geomeans(dse.evaluate_all(), dse.cpu_baseline_all())

    rich = benchmark.pedantic(evaluate, args=(1.0,), rounds=1, iterations=1)
    poor = evaluate(10.0)
    lines = [
        "GPU rule            mem-opt.tc perf/$",
        f"1 V100 / 12GB/s     {rich['mem-opt.tc']:>17.2f}",
        f"10 V100 / 12GB/s    {poor['mem-opt.tc']:>17.2f}",
        "paper (Limitation-2): 12.58x collapses to 1.48x",
    ]
    report("Ablation — GPU provisioning rule", "\n".join(lines))
    assert poor["mem-opt.tc"] < 0.4 * rich["mem-opt.tc"]
    assert poor["mem-opt.tc"] > 0.8  # still competitive with CPU


def test_ablation_coalescing(benchmark, report):
    graph = instantiate_dataset("ml", max_nodes=4000, seed=0)
    roots = np.arange(48)

    def run(coalescing):
        config = EngineConfig(
            num_cores=1,
            core=CoreConfig(coalescing=coalescing, max_tags=64, window=8),
            output_link=None,
        )
        _r, stats = AxeEngine(graph, config).run(sample_command(roots, (10, 10)))
        return stats

    with_cache = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    without = run(False)
    lines = [
        "coalescing  roots/s      elapsed(us)",
        f"on          {with_cache.roots_per_second:>10.0f}  {1e6 * with_cache.elapsed_s:>12.1f}",
        f"off         {without.roots_per_second:>10.0f}  {1e6 * without.elapsed_s:>12.1f}",
    ]
    report("Ablation — Tech-4 coalescing cache in the engine", "\n".join(lines))
    assert with_cache.roots_per_second >= without.roots_per_second


def test_ablation_partitioner(benchmark, report):
    """Partitioning strategy ablation: LDG cuts remote traffic vs hash
    on clustered graphs (AliGraph's partition algorithms are orthogonal
    to — and compose with — the hardware)."""
    import numpy as np
    from repro.graph.csr import CSRGraph
    from repro.graph.partition import (
        HashPartitioner,
        LdgPartitioner,
        RangePartitioner,
        edge_cut_fraction,
    )

    rng = np.random.default_rng(0)
    num_nodes, num_communities = 800, 8
    communities = rng.integers(0, num_communities, num_nodes)
    edges = []
    for node in range(num_nodes):
        same = np.flatnonzero(communities == communities[node])
        for _ in range(6):
            edges.append((node, int(rng.choice(same))))
    graph = CSRGraph.from_edges(num_nodes, edges)

    def build_and_cut():
        return {
            "hash": edge_cut_fraction(HashPartitioner(8), graph),
            "range": edge_cut_fraction(RangePartitioner(8, num_nodes), graph),
            "ldg": edge_cut_fraction(LdgPartitioner(8, graph), graph),
        }

    cuts = benchmark.pedantic(build_and_cut, rounds=1, iterations=1)
    lines = ["partitioner  edge-cut%  (remote traffic proxy)"]
    for name, cut in cuts.items():
        lines.append(f"{name:<12} {100 * cut:>8.1f}")
    report("Ablation — graph partitioning strategy", "\n".join(lines))
    assert cuts["ldg"] < cuts["hash"]
