"""Figures 17 and 19: FaaS sampling performance per instance."""

from repro.faas.dse import FaasDse
from repro.faas.report import (
    arch_perf_geomeans,
    format_perf_table,
    geomean,
)


def run_sweep():
    dse = FaasDse()
    return dse.evaluate_all()


def test_fig17_19_performance(benchmark, report):
    results = benchmark(run_sweep)
    report(
        "Figure 17 — sampling performance per instance (batches/s, batch=512)",
        format_perf_table(results),
    )
    geomeans = arch_perf_geomeans(results)
    order = (
        "base.decp", "cost-opt.decp", "comm-opt.decp", "mem-opt.decp",
        "base.tc", "cost-opt.tc", "comm-opt.tc", "mem-opt.tc",
    )
    lines = ["arch            geomean roots/s   vs base.decp"]
    for name in order:
        lines.append(
            f"{name:<15} {geomeans[name]:>14.0f}  {geomeans[name] / geomeans['base.decp']:>12.2f}x"
        )
    report("Figure 19 — geomean performance per architecture", "\n".join(lines))
    # Shape assertions: the paper's ordering and equivalences.
    assert geomeans["cost-opt.tc"] == geomeans["base.tc"]
    assert geomeans["mem-opt.decp"] == geomeans["comm-opt.decp"]
    assert 2.0 < geomeans["comm-opt.tc"] / geomeans["base.tc"] < 4.5
    assert 2.0 < geomeans["mem-opt.tc"] / geomeans["comm-opt.tc"] < 6.0
    equivalents = [r.vcpu_equivalent for r in results if r.arch == "base.decp"]
    assert 45 < geomean(equivalents) < 100  # paper: ~67 vCPU per FPGA
