"""Table 5: MoF multi-request packing vs Gen-Z bandwidth utilization."""

from repro.mof.frames import GENZ, MOF, batch_breakdown


def compute_rows():
    rows = []
    for size in (16, 64):
        for fmt in (GENZ, MOF):
            rows.append(batch_breakdown(fmt, 128, size))
    return rows


def test_table5_packing(benchmark, report):
    rows = benchmark(compute_rows)
    lines = [
        "format    request      frames  header%  addr%   data%",
    ]
    for row in rows:
        lines.append(
            f"{row.format_name:<9} 128x{row.request_bytes:<4}B  {row.frames:>6}"
            f"  {100 * row.header_fraction:>6.2f}"
            f"  {100 * row.addr_fraction:>5.2f}"
            f"  {100 * row.data_utilization:>6.2f}"
        )
    lines.append(
        "paper: genz 16B=32.65%/64B=65.98% data; mof 16B=78.11%/64B=94.03%"
    )
    report("Table 5 — packing vs Gen-Z", "\n".join(lines))
    by_key = {(r.format_name, r.request_bytes): r for r in rows}
    # Shape: MoF packs 128 requests into far fewer frames and reaches
    # the paper's utilization levels.
    assert by_key[("mof", 16)].frames < by_key[("genz", 16)].frames / 8
    assert abs(by_key[("genz", 64)].data_utilization - 0.6598) < 0.01
    assert abs(by_key[("mof", 64)].data_utilization - 0.9403) < 0.03
    assert abs(by_key[("genz", 16)].data_utilization - 0.3265) < 0.01
    assert abs(by_key[("mof", 16)].data_utilization - 0.7811) < 0.03
