"""Tech-4: the 8KB coalescing cache — and why bigger caches don't pay."""

import numpy as np

from repro.axe.cache import CoalescingCache
from repro.graph.datasets import instantiate_dataset


def run_access_pattern(capacity_bytes):
    """Replay a sampling batch's edge-list reads through a cache of the
    given size; returns (memory requests issued, element accesses)."""
    graph = instantiate_dataset("ml", max_nodes=60_000, seed=0)
    rng = np.random.default_rng(1)
    cache = CoalescingCache(capacity_bytes=capacity_bytes)
    nodes = rng.integers(0, graph.num_nodes, 2000)
    issued = 0
    for node in nodes:
        degree = graph.degree(int(node))
        if degree == 0:
            continue
        addr = int(graph.indptr[int(node)]) * 8
        issued += cache.access(addr, degree * 8, element_bytes=8)
    return issued, cache.stats.element_accesses, cache.stats.hit_rate


def test_tech4_coalescing_cache(benchmark, report):
    issued_8k, elements, hit_8k = benchmark(run_access_pattern, 8 * 1024)
    issued_64k, _elements, hit_64k = run_access_pattern(64 * 1024)
    issued_1m, _e, hit_1m = run_access_pattern(1024 * 1024)
    lines = [
        "cache   mem_requests  coalescing_factor  line_hit_rate",
        f"none    {elements:>12}  {1.0:>17.2f}  {'-':>13}",
        f"8KB     {issued_8k:>12}  {elements / issued_8k:>17.2f}  {hit_8k:>13.3f}",
        f"64KB    {issued_64k:>12}  {elements / issued_64k:>17.2f}  {hit_64k:>13.3f}",
        f"1MB     {issued_1m:>12}  {elements / issued_1m:>17.2f}  {hit_1m:>13.3f}",
        "paper: 8KB suffices — coalescing captures spatial reuse, while",
        "temporal reuse is absent (512-batch over billions of nodes).",
    ]
    report("Tech-4 — coalescing cache ablation", "\n".join(lines))
    # Shape: 8KB coalesces several elements per request; growing the
    # cache 128x barely helps (<10% fewer requests) — no temporal reuse.
    assert elements / issued_8k > 2.0
    assert issued_1m > 0.9 * issued_8k
