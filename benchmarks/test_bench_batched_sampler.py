"""Batched sampler fast path: speedup over the per-node reference walk.

The acceptance bar for the fast path: on the ``ll``-shaped synthetic
instance (batch 512, fanouts 10x10) the batched sampler must be at
least 5x faster than the reference walk while producing byte-identical
``AccessSummary`` totals — verified by replaying the batched result's
picks back through the reference walk (the two live runs consume the
RNG differently, so only same-layers accounting is comparable).
"""

import time

import numpy as np

from repro.framework.replay import replay_reference
from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.graph.datasets import instantiate_dataset
from repro.graph.partition import HashPartitioner
from repro.memstore.store import PartitionedStore

MAX_NODES = 20000
BATCH_SIZE = 512
FANOUTS = (10, 10)
PARTITIONS = 4
REPEATS = 3


def best_of(graph, partitioner, request, batched):
    best = float("inf")
    store = result = None
    for _ in range(REPEATS):
        store = PartitionedStore(graph, partitioner)
        sampler = MultiHopSampler(store, seed=0, worker_partition=0, batched=batched)
        start = time.perf_counter()
        result = sampler.sample(request)
        best = min(best, time.perf_counter() - start)
    return best, result, store


def test_batched_sampler_speedup(benchmark, report):
    graph = instantiate_dataset("ll", max_nodes=MAX_NODES, seed=0)
    partitioner = HashPartitioner(PARTITIONS)
    roots = np.random.default_rng(0).integers(0, graph.num_nodes, size=BATCH_SIZE)
    request = SampleRequest(roots=roots, fanouts=FANOUTS, with_attributes=True)

    reference_s, _, _ = best_of(graph, partitioner, request, batched=False)
    batched_s, result, batched_store = best_of(
        graph, partitioner, request, batched=True
    )

    def run_batched():
        store = PartitionedStore(graph, partitioner)
        sampler = MultiHopSampler(store, seed=0, worker_partition=0, batched=True)
        return sampler.sample(request)

    benchmark.pedantic(run_batched, rounds=1, iterations=1)

    # Byte-identical accounting for the batched run's layers.
    replay_store = PartitionedStore(graph, partitioner)
    replay_reference(result, request, replay_store, worker_partition=0)
    assert batched_store.summary == replay_store.summary

    speedup = reference_s / batched_s
    report(
        "Batched sampler fast path (ll instance, batch 512, fanouts 10x10)",
        "\n".join(
            [
                "path       ms/batch",
                f"reference  {reference_s * 1e3:8.2f}",
                f"batched    {batched_s * 1e3:8.2f}",
                f"speedup    {speedup:7.2f}x",
                "accounting: byte-identical (replayed reference)",
            ]
        ),
    )
    assert speedup >= 5.0
