"""Tech-3: OoO load unit with massive outstanding requests (~30x)."""

from repro.axe.events import Simulator
from repro.axe.loadunit import LoadUnit, MemoryChannel
from repro.memstore.links import get_link


REQUESTS = 512


def run_load_unit(max_tags):
    sim = Simulator()
    unit = LoadUnit(sim, max_tags=max_tags)
    channel = MemoryChannel(sim, get_link("mof_fabric"))
    for _ in range(REQUESTS):
        unit.load(channel, 64, lambda: None)
    return sim.run()


def test_tech3_ooo_throughput(benchmark, report):
    ooo_time = benchmark(run_load_unit, 512)
    blocking_time = run_load_unit(1)
    ratios = {}
    for tags in (1, 4, 16, 64, 256, 512):
        ratios[tags] = blocking_time / run_load_unit(tags)
    lines = ["tags  speedup_vs_blocking"]
    for tags, ratio in ratios.items():
        lines.append(f"{tags:>4}  {ratio:>19.1f}")
    lines.append(
        f"OoO (512 tags) vs blocking: {blocking_time / ooo_time:.1f}x "
        "(paper: ~30x)"
    )
    report("Tech-3 — OoO massive outstanding requests", "\n".join(lines))
    # Shape: monotone in tags; >=20x at full tag budget.
    values = list(ratios.values())
    assert all(b >= a * 0.99 for a, b in zip(values, values[1:]))
    assert blocking_time / ooo_time > 20
