"""Figure 20: minimal service cost to carry each graph, CPU vs FaaS.base."""

from repro.faas.dse import FaasDse
from repro.faas.report import format_min_cost_table
from repro.graph.datasets import DATASET_ORDER


def compute_costs():
    dse = FaasDse()
    table = {}
    for size in ("small", "medium", "large"):
        for dataset in DATASET_ORDER:
            table[(size, dataset, "cpu")] = dse.min_service_cost(
                dataset, size, faas=False
            )
            table[(size, dataset, "faas")] = dse.min_service_cost(
                dataset, size, faas=True
            )
    return dse, table


def test_fig20_min_cost(benchmark, report):
    dse, table = benchmark(compute_costs)
    report(
        "Figure 20 — minimal service cost (normalized to ss CPU cost)",
        format_min_cost_table(dse),
    )
    # Shape: FaaS hosting always costs more than CPU hosting; costs grow
    # with graph footprint; small instances need many shards.
    for size in ("small", "medium", "large"):
        for dataset in DATASET_ORDER:
            assert table[(size, dataset, "faas")] > table[(size, dataset, "cpu")]
        assert table[(size, "syn", "cpu")] > table[(size, "ss", "cpu")]
    # If users do not care about performance, CPU is the cheapest host
    # (the paper's guidance).
    assert table[("small", "ml", "cpu")] < table[("small", "ml", "faas")]
