"""Figure 2(b): sampling throughput scaling with server count."""

from repro.framework.cluster import ClusterModel
from repro.framework.cpu_model import CpuSamplingModel, WorkloadShape
from repro.graph.datasets import DATASET_ORDER, get_dataset


def compute_curve():
    shapes = [WorkloadShape.from_spec(get_dataset(n)) for n in DATASET_ORDER]
    model = ClusterModel(CpuSamplingModel(), vcpus_per_server=32)
    return model.average_scaling_curve(shapes, (1, 5, 15))


def test_fig2b_scaling(benchmark, report):
    curve = benchmark(compute_curve)
    lines = ["servers  speedup  efficiency"]
    for point in curve:
        lines.append(
            f"{point.num_servers:>7}  {point.speedup_vs_one:>7.2f}  "
            f"{point.efficiency:>10.2f}"
        )
    report("Figure 2(b) — throughput scaling (geomean over datasets)", "\n".join(lines))
    # Shape: sublinear scaling (Observation-2).
    assert curve[1].speedup_vs_one < 5
    assert curve[2].speedup_vs_one < 15
    assert curve[2].efficiency < curve[0].efficiency
