"""Locality layout: contiguity and partition crossings, before/after.

Not a numbered paper figure, but the ROADMAP locality item (the
paper's Figure 2 blames the sampling wall on scattered DRAM access):
renumber the CSR with the BFS-within-partition locality order, serve
the same batched multi-hop workload from the hash baseline and the
relabeled store, and compare ``AccessSummary`` contiguity accounting
(``gather_runs`` / ``mean_run_length``) plus remote crossings. When
numba is installed the compiled kernel tier is also timed and checked
bit-identical against the NumPy reference tier.
"""

import numpy as np

from repro.framework.kernels import compiled_available
from repro.framework.replay import replay_reference
from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.graph.datasets import instantiate_dataset
from repro.graph.partition import HashPartitioner
from repro.memstore.locality import build_locality_layout
from repro.memstore.store import PartitionedStore

BATCHES = 4
BATCH_SIZE = 128
FANOUTS = (10, 10)
PARTITIONS = 4


def hop_crossings(results, requests, partitioner, relabeling=None):
    """Parent->pick pairs whose owners differ: the sampled edge cut."""
    crossings = 0
    for result, request in zip(results, requests):
        for hop, fanout in enumerate(request.fanouts):
            parents = np.repeat(result.layers[hop].reshape(-1), fanout)
            picks = result.layers[hop + 1].reshape(-1)
            if relabeling is not None:
                parents = relabeling.to_internal(parents)
                picks = relabeling.to_internal(picks)
            crossings += int(np.count_nonzero(
                partitioner.partition_of(parents)
                != partitioner.partition_of(picks)
            ))
    return crossings


def run_workload(graph, partitioner, requests, relabeling=None, kernels=None):
    store = PartitionedStore(graph, partitioner, track_locality=True)
    sampler = MultiHopSampler(
        store,
        seed=0,
        worker_partition=0,
        batched=True,
        relabeling=relabeling,
        kernels=kernels,
    )
    results = [sampler.sample(request) for request in requests]
    return store, results


def test_layout_locality_win(benchmark, report):
    base = instantiate_dataset("ll", max_nodes=8000, seed=0)
    rng = np.random.default_rng(0)
    requests = [
        SampleRequest(
            roots=rng.integers(0, base.num_nodes, size=BATCH_SIZE),
            fanouts=FANOUTS,
            with_attributes=True,
        )
        for _ in range(BATCHES)
    ]
    layout = build_locality_layout(base, PARTITIONS)
    hash_partitioner = HashPartitioner(PARTITIONS)

    baseline_store, baseline_results = run_workload(
        base, hash_partitioner, requests
    )
    layout_store, layout_results = benchmark.pedantic(
        run_workload,
        args=(layout.graph, layout.partitioner, requests),
        kwargs={"relabeling": layout.relabeling},
        rounds=1,
        iterations=1,
    )

    # Identical work, different physical layout.
    assert (
        layout_store.summary.gather_nodes
        == baseline_store.summary.gather_nodes
    )
    base_crossings = hop_crossings(baseline_results, requests, hash_partitioner)
    lay_crossings = hop_crossings(
        layout_results, requests, layout.partitioner,
        relabeling=layout.relabeling,
    )
    crossing_reduction = 1 - lay_crossings / base_crossings
    run_length_gain = (
        layout_store.summary.mean_run_length
        / baseline_store.summary.mean_run_length
    )
    assert crossing_reduction > 0, "LDG blocks must cut partition crossings"
    assert run_length_gain > 1.0, "BFS renumbering must lengthen runs"

    # Layers come back in original ID space: hop-1 picks are true
    # neighbors of their roots in the ORIGINAL graph.
    picks = layout_results[0].layers[1].reshape(BATCH_SIZE, FANOUTS[0])
    for root, row in zip(requests[0].roots, picks):
        assert set(row.tolist()) <= set(base.neighbors(int(root)).tolist())

    # The replay harness re-walks the recorded layers through the
    # relabeled store and must charge the same accounting.
    fresh = PartitionedStore(layout.graph, layout.partitioner)
    replayed = replay_reference(
        layout_results[0],
        requests[0],
        fresh,
        worker_partition=0,
        relabeling=layout.relabeling,
    )
    for a, b in zip(layout_results[0].layers, replayed.layers):
        assert np.array_equal(a, b)

    kernel_line = "compiled tier: unavailable (numba not installed)"
    if compiled_available():
        _, compiled_results = run_workload(
            layout.graph,
            layout.partitioner,
            requests,
            relabeling=layout.relabeling,
            kernels="compiled",
        )
        for lhs, rhs in zip(layout_results, compiled_results):
            for a, b in zip(lhs.layers, rhs.layers):
                assert np.array_equal(a, b), "tiers must be bit-identical"
        kernel_line = "compiled tier: bit-identical to NumPy reference"

    report(
        "Locality layout (ll, 8000 nodes, 4 partitions, fanouts 10x10)",
        "\n".join(
            [
                f"baseline: crossings={base_crossings} "
                f"runs={baseline_store.summary.gather_runs} "
                f"run_len={baseline_store.summary.mean_run_length:.2f}",
                f"layout:   crossings={lay_crossings} "
                f"runs={layout_store.summary.gather_runs} "
                f"run_len={layout_store.summary.mean_run_length:.2f}",
                f"crossings {100 * crossing_reduction:.1f}% fewer, "
                f"runs {run_length_gain:.2f}x longer",
                kernel_line,
            ]
        ),
    )
