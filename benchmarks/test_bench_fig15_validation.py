"""Figure 15: validating the analytical model against PoC measurement."""

from repro.graph.datasets import instantiate_dataset
from repro.perfmodel.poc import POC_SWEEP, validate_model


def run_validation():
    graph = instantiate_dataset("ls", max_nodes=8000, seed=0)
    return validate_model(graph, POC_SWEEP, batch_size=48)


def test_fig15_model_validation(benchmark, report):
    rows = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    lines = [
        "config           measured(r/s)  modeled(r/s)  no-PCIe-limit  err%  bottleneck"
    ]
    for row in rows:
        lines.append(
            f"{row.point.label:<16} {row.measured_roots_per_s:>12.0f}"
            f"  {row.modeled_roots_per_s:>12.0f}"
            f"  {row.modeled_unbounded_roots_per_s:>13.0f}"
            f"  {100 * row.error:>4.1f}  {row.bottleneck}"
        )
    mean_error = sum(row.error for row in rows) / len(rows)
    lines.append(
        f"mean model error: {100 * mean_error:.1f}% "
        "(paper reports 0.974% against physical hardware)"
    )
    report("Figure 15 — performance model validation", "\n".join(lines))
    # Shape: the model tracks the simulation across all 24 configs and
    # the unbounded projection always dominates.
    assert mean_error < 0.20
    assert all(
        row.modeled_unbounded_roots_per_s >= row.modeled_roots_per_s
        for row in rows
    )
