"""Figure 2(c): structure vs attribute memory-access distribution."""

import numpy as np

from repro.framework.tracing import characterize_access_mix
from repro.graph.datasets import DATASET_ORDER, instantiate_dataset


def characterize_all():
    reports = []
    for name in DATASET_ORDER:
        graph = instantiate_dataset(name, max_nodes=4000, seed=0)
        reports.append(
            characterize_access_mix(
                graph, name, batch_size=32, num_batches=2, num_partitions=4
            )
        )
    return reports


def test_fig2c_access_mix(benchmark, report):
    reports = benchmark.pedantic(characterize_all, rounds=1, iterations=1)
    lines = ["dataset  structure%(count)  structure%(bytes)  mean_struct_B"]
    for row in reports:
        lines.append(
            f"{row.name:<8} {100 * row.structure_count_fraction:>16.1f}"
            f" {100 * row.structure_bytes_fraction:>18.1f}"
            f" {row.mean_structure_bytes:>13.1f}"
        )
    average = float(np.mean([r.structure_count_fraction for r in reports]))
    lines.append(f"average structure fraction: {100 * average:.1f}% (paper: ~48%)")
    report("Figure 2(c) — memory access request distribution", "\n".join(lines))
    # Shape: about half the accesses are fine-grained structure reads.
    assert 0.40 < average < 0.65
    for row in reports:
        assert row.mean_structure_bytes < 128  # 8-64B indirect accesses
