"""Figure 2(e): outstanding requests required to fill link bandwidth."""

from repro.framework.cpu_model import WorkloadShape
from repro.graph.datasets import get_dataset
from repro.memstore.links import get_link
from repro.memstore.outstanding import outstanding_table
from repro.units import GB


TARGETS = tuple(x * GB for x in (16, 32, 64, 100, 200))
LINKS = ("local_dram", "pcie_host_dram", "mof_fabric", "rdma_remote_dram")


def compute_table():
    mix = WorkloadShape.from_spec(get_dataset("ls")).access_mix
    links = [get_link(name) for name in LINKS]
    return outstanding_table(links, TARGETS, mix)


def test_fig2e_outstanding(benchmark, report):
    table = benchmark(compute_table)
    header = "link              " + "".join(
        f"{int(t / GB):>8}GB/s" for t in TARGETS
    )
    lines = [header]
    for link_name in LINKS:
        row = [f"{link_name:<18}"]
        for target in TARGETS:
            row.append(f"{table[link_name][target]:>12.0f}")
        lines.append("".join(row))
    report("Figure 2(e) — outstanding requests to fill bandwidth", "\n".join(lines))
    # Shape: longer-latency links need far more outstanding requests,
    # and demand grows with the bandwidth target.
    for target in TARGETS:
        assert (
            table["rdma_remote_dram"][target]
            > table["mof_fabric"][target]
            > table["local_dram"][target]
        )
    assert table["rdma_remote_dram"][TARGETS[0]] > 100
