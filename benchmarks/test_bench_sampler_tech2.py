"""Tech-2: streaming step-based sampling — cycles, resources, accuracy."""

import numpy as np

from repro.axe.resources import sampler_resources, sampler_savings
from repro.axe.sampling import ReservoirSampler, StreamingSampler


def sample_many(sampler_cls, n=200, k=10, trials=300, seed=0):
    rng = np.random.default_rng(seed)
    sampler = sampler_cls()
    total_cycles = 0
    max_storage = 0
    for _ in range(trials):
        _s, cycles, storage = sampler.sample(np.arange(n), k, rng)
        total_cycles += cycles
        max_storage = max(max_storage, storage)
    return total_cycles, max_storage


def test_tech2_streaming_sampler(benchmark, report):
    streaming_cycles, streaming_storage = benchmark(
        sample_many, StreamingSampler
    )
    reservoir_cycles, reservoir_storage = sample_many(ReservoirSampler)
    savings = sampler_savings()
    conventional = sampler_resources("reservoir")
    streaming_res = sampler_resources("streaming")
    lines = [
        "design        cycles(300x N=200,K=10)  storage  LUTs(K)  regs(K)",
        (
            f"conventional  {reservoir_cycles:>23}  {reservoir_storage:>7}"
            f"  {conventional.luts:>7.2f}  {conventional.regs:>7.2f}"
        ),
        (
            f"streaming     {streaming_cycles:>23}  {streaming_storage:>7}"
            f"  {streaming_res.luts:>7.2f}  {streaming_res.regs:>7.2f}"
        ),
        (
            f"savings: {100 * savings['lut_saving']:.1f}% LUTs, "
            f"{100 * savings['reg_saving']:.1f}% registers "
            "(paper: 91.9% / 23%)"
        ),
        "latency: N cycles vs N+K cycles (paper claim) ",
    ]
    report("Tech-2 — streaming sampling", "\n".join(lines))
    # Shape: N vs N+K cycles, no candidate storage, big LUT saving.
    assert reservoir_cycles == streaming_cycles + 300 * 10
    assert streaming_storage <= 10
    assert savings["lut_saving"] > 0.9
    assert 0.2 < savings["reg_saving"] < 0.3
