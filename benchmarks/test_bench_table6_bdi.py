"""Table 6: BDI compression on data and addresses for 128x8B reads."""

import numpy as np

from repro.mof.bdi import compress_addresses, compressed_size
from repro.mof.frames import GENZ, MOF, batch_breakdown


def compute_progression():
    rng = np.random.default_rng(0)
    # Embedding-style data: small integers around a common scale.
    data = (rng.integers(0, 60, 128) + 20_000).astype(np.uint64).tobytes()
    # Request addresses: clustered around a region base.
    addresses = np.uint64(0x2000_0000) + rng.integers(0, 8192, 128).astype(
        np.uint64
    )
    genz = batch_breakdown(GENZ, 128, 8).total_bytes
    mof = batch_breakdown(MOF, 128, 8).total_bytes
    data_comp = batch_breakdown(
        MOF, 128, 8, compressed_data_bytes=compressed_size(data)
    ).total_bytes
    addr_comp = batch_breakdown(
        MOF,
        128,
        8,
        compressed_data_bytes=compressed_size(data),
        compressed_addr_bytes=compress_addresses(addresses),
    ).total_bytes
    return genz, mof, data_comp, addr_comp


def test_table6_bdi_progression(benchmark, report):
    genz, mof, data_comp, addr_comp = benchmark(compute_progression)
    lines = [
        "config              bytes_to_send   saving_vs_previous",
        f"GENZ                {genz:>13}   -",
        f"MoF                 {mof:>13}   {100 * (1 - mof / genz):>17.1f}%",
        f"MoF + data comp.    {data_comp:>13}   {100 * (1 - data_comp / mof):>17.1f}%",
        f"MoF + addr comp.    {addr_comp:>13}   {100 * (1 - addr_comp / data_comp):>17.1f}%",
        "paper: 6336 -> 1600 (75%) -> 864 (46%) -> 779 (9.8%)",
    ]
    report("Table 6 — BDI compression on 8Bx128 read package", "\n".join(lines))
    # Shape: each step saves; MoF packing alone saves >=65% vs Gen-Z.
    assert genz > mof > data_comp > addr_comp
    assert 1 - mof / genz > 0.6
    assert 1 - data_comp / mof > 0.2
    assert 1 - addr_comp / data_comp > 0.03
