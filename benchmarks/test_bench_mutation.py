"""Online mutations: sampling throughput vs mutation rate.

Not a numbered paper figure, but the ROADMAP dynamic-graph item
(AliGraph "supports dynamic graphs"; §3.1 "the data size keeps
expanding"): interleave preferential-attachment mutations with batched
multi-hop sampling over the DynamicPartitionedStore and sweep the
mutation rate. Reports the sampling throughput, the append-log (delta)
hit traffic, and the snapshot-consistency invariant — no multi-hop
sample may observe two epochs.
"""

import numpy as np

from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.graph.datasets import instantiate_dataset
from repro.graph.dynamic import DynamicGraph
from repro.graph.partition import HashPartitioner
from repro.memstore.ingest import DynamicPartitionedStore, growth_trace
from repro.memstore.store import PartitionedStore

RATES = (0, 64, 256, 1024)
BATCHES = 6
BATCH_SIZE = 128
FANOUTS = (10, 10)


def run_rate(base, requests, rate, compact_threshold=4096):
    store = DynamicPartitionedStore(
        DynamicGraph(base, compact_threshold=compact_threshold),
        HashPartitioner(4),
    )
    sampler = MultiHopSampler(store, seed=0, worker_partition=0, batched=True)
    trace = growth_trace(base.num_nodes, rate * len(requests), seed=1)
    max_epochs = 0
    results = []
    for i, request in enumerate(requests):
        if rate:
            store.apply(trace[i * rate : (i + 1) * rate])
        results.append(sampler.sample(request))
        max_epochs = max(max_epochs, len(store.last_sample_epochs))
    return store, results, max_epochs


def test_mutation_rate_sweep(benchmark, report):
    base = instantiate_dataset("ll", max_nodes=4000, seed=0)
    rng = np.random.default_rng(0)
    requests = [
        SampleRequest(
            roots=rng.integers(0, base.num_nodes, size=BATCH_SIZE),
            fanouts=FANOUTS,
            with_attributes=True,
        )
        for _ in range(BATCHES)
    ]

    baseline_store, baseline_results, _ = benchmark.pedantic(
        run_rate, args=(base, requests, 0), rounds=1, iterations=1
    )
    rows = [(0, baseline_store, 0)]
    for rate in RATES[1:]:
        store, _, max_epochs = run_rate(base, requests, rate)
        rows.append((rate, store, max_epochs))

    lines = ["mut/batch  delta hits  delta edges  compactions  edges added"]
    for rate, store, _ in rows:
        s = store.ingest_stats
        lines.append(
            f"{rate:>9}  {s.delta_hits:>10}  {s.delta_edges_read:>11}"
            f"  {s.compactions:>11}  {s.edges_added:>11}"
        )
    report("Online mutations — rate sweep (delta traffic)", "\n".join(lines))

    # Consistency: every sample at every rate pinned exactly one epoch.
    assert all(max_epochs <= 1 for _, _, max_epochs in rows)
    # Rising mutation rate drives rising append-log traffic.
    hits = [store.ingest_stats.delta_hits for _, store, _ in rows]
    assert hits[0] == 0
    assert all(a <= b for a, b in zip(hits[1:], hits[2:]))
    # The highest rate crossed the compaction threshold at least once.
    assert rows[-1][1].ingest_stats.compactions >= 1


def test_rate_zero_matches_static_store(report):
    """The dynamic store at rate 0 is byte-identical to the static
    store: same layers, same attributes, same AccessSummary."""
    base = instantiate_dataset("ll", max_nodes=4000, seed=0)
    rng = np.random.default_rng(0)
    requests = [
        SampleRequest(
            roots=rng.integers(0, base.num_nodes, size=BATCH_SIZE),
            fanouts=FANOUTS,
            with_attributes=True,
        )
        for _ in range(BATCHES)
    ]
    dyn_store, dyn_results, _ = run_rate(base, requests, 0)
    static_store = PartitionedStore(base, HashPartitioner(4))
    static_sampler = MultiHopSampler(
        static_store, seed=0, worker_partition=0, batched=True
    )
    for request, dyn_result in zip(requests, dyn_results):
        static_result = static_sampler.sample(request)
        for a, b in zip(dyn_result.layers, static_result.layers):
            assert np.array_equal(a, b)
        for a, b in zip(dyn_result.attributes, static_result.attributes):
            assert np.array_equal(a, b)
    assert dyn_store.summary == static_store.summary
    report(
        "Online mutations — rate-0 parity",
        f"dynamic summary == static summary: "
        f"{dyn_store.summary == static_store.summary}",
    )
