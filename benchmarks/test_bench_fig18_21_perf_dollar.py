"""Figures 18 and 21: normalized performance per dollar."""

from repro.faas.dse import FaasDse
from repro.faas.report import (
    arch_geomeans,
    format_perf_per_dollar_table,
)


def run_sweep():
    dse = FaasDse()
    return dse.evaluate_all(), dse.cpu_baseline_all()


def test_fig18_21_perf_per_dollar(benchmark, report):
    results, cpu_results = benchmark(run_sweep)
    report(
        "Figure 18 — perf/$ normalized to CPU geomean",
        format_perf_per_dollar_table(results, cpu_results),
    )
    geomeans = arch_geomeans(results, cpu_results)
    paper = {
        "base.decp": 2.47,
        "base.tc": 4.11,
        "cost-opt.decp": 2.47,
        "cost-opt.tc": 4.11,
        "comm-opt.decp": 3.70,
        "comm-opt.tc": 7.78,
        "mem-opt.decp": 3.70,
        "mem-opt.tc": 12.58,
    }
    lines = ["arch            measured  paper"]
    for name, target in paper.items():
        lines.append(f"{name:<15} {geomeans[name]:>8.2f}  {target:>5.2f}")
    report("Figure 21 — geomean normalized perf/$", "\n".join(lines))
    # Shape: every architecture beats the CPU baseline; the paper's
    # headline numbers hold within a modest band.
    assert all(value > 1.0 for value in geomeans.values())
    assert 1.4 < geomeans["base.decp"] < 3.5
    assert 2.8 < geomeans["base.tc"] < 5.5
    assert 5.5 < geomeans["comm-opt.tc"] < 10.5
    assert 9.0 < geomeans["mem-opt.tc"] < 17.0
    assert max(geomeans, key=geomeans.get) == "mem-opt.tc"
