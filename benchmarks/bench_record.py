"""Append ``repro bench-sampler --json`` reports to ``BENCH_sampler.json``.

Seeds the perf trajectory the bench-smoke CI job can diff against: each
run appends one record (the CLI's JSON report plus an optional label,
e.g. a git revision) to a JSON array file kept at the repo root.

Usage::

    PYTHONPATH=src python -m repro bench-sampler --json \
        | python benchmarks/bench_record.py --label "$(git rev-parse --short HEAD)"

    # or record an already-saved report
    python benchmarks/bench_record.py --label pr5 report.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

DEFAULT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_sampler.json")


def load_records(path: str) -> List[dict]:
    """Existing records, or an empty list for a fresh file."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as fh:
        records = json.load(fh)
    if not isinstance(records, list):
        raise ValueError(f"{path} must hold a JSON array of records")
    return records


def append_record(
    record: dict, path: str = DEFAULT_PATH, label: Optional[str] = None
) -> List[dict]:
    """Append one bench report to the trajectory file; returns all records."""
    if not isinstance(record, dict):
        raise ValueError(f"record must be a JSON object, got {type(record).__name__}")
    if label is not None:
        record = dict(record, label=label)
    records = load_records(path)
    records.append(record)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=2)
        fh.write("\n")
    return records


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="append a bench-sampler JSON report to BENCH_sampler.json"
    )
    parser.add_argument(
        "report",
        nargs="?",
        help="path to a saved --json report (default: read stdin)",
    )
    parser.add_argument("--path", default=DEFAULT_PATH, help="trajectory file")
    parser.add_argument("--label", default=None, help="tag for this record")
    args = parser.parse_args(argv)
    if args.report:
        with open(args.report, "r", encoding="utf-8") as fh:
            record = json.load(fh)
    else:
        record = json.load(sys.stdin)
    records = append_record(record, path=args.path, label=args.label)
    print(f"{args.path}: {len(records)} record(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
