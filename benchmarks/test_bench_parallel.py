"""Sharded parallel engine: wall-clock scaling and accounting parity.

On the ``ml``-shaped synthetic instance the pipelined shard engine is
run at 1, 2, and 4 workers against the serial batched sampler. The
determinism contract is asserted unconditionally at every worker count
(merged ``AccessSummary`` byte-identical to a serial reference replay
of the same layers); the >= 2.5x wall-clock bar at 4 workers only
applies on hosts that actually have 4 cores to scale onto.
"""

import os
import time

import numpy as np
import pytest

from repro.framework.replay import replay_reference
from repro.framework.requests import SampleRequest
from repro.framework.sampler import MultiHopSampler
from repro.graph.datasets import instantiate_dataset
from repro.graph.partition import HashPartitioner
from repro.memstore.store import PartitionedStore
from repro.parallel import ParallelSampler, PipelinedExecutor, micro_batches

MAX_NODES = 20000
TOTAL_ROOTS = 2048
BATCH_SIZE = 256
FANOUTS = (10, 10)
PARTITIONS = 4
REPEATS = 3
WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR = 2.5


def available_cores() -> int:
    return len(os.sched_getaffinity(0))


def serial_batched(graph, requests):
    best = float("inf")
    store = None
    for _ in range(REPEATS):
        store = PartitionedStore(graph, HashPartitioner(PARTITIONS))
        sampler = MultiHopSampler(
            store, seed=0, worker_partition=0, batched=True
        )
        start = time.perf_counter()
        for request in requests:
            sampler.sample(request)
        best = min(best, time.perf_counter() - start)
    return best, store


def parallel_run(graph, requests, workers):
    """Best-of wall clock plus the last run's results and summary."""
    best = float("inf")
    results = store = None
    for _ in range(REPEATS):
        store = PartitionedStore(graph, HashPartitioner(PARTITIONS))
        with ParallelSampler(
            store, workers=workers, seed=0, worker_partition=0
        ) as engine:
            executor = PipelinedExecutor(engine, depth=2)
            # Warm the pool (process spawn + plane attach), then time.
            engine.sample(requests[0])
            store.reset_trace()
            start = time.perf_counter()
            results = executor.run(requests)
            best = min(best, time.perf_counter() - start)
    return best, results, store


def test_parallel_engine_scaling(benchmark, report):
    graph = instantiate_dataset("ml", max_nodes=MAX_NODES, seed=0)
    roots = np.random.default_rng(0).integers(
        0, graph.num_nodes, size=TOTAL_ROOTS
    )
    requests = list(micro_batches(roots, BATCH_SIZE, FANOUTS))

    serial_s, _ = serial_batched(graph, requests)

    rows = ["workers    ms/epoch    vs serial"]
    rows.append(f"serial   {serial_s * 1e3:9.2f}         1.00x")
    speedups = {}
    reference = None
    for workers in WORKER_COUNTS:
        elapsed, results, store = parallel_run(graph, requests, workers)
        # Accounting parity at EVERY worker count: replay the merged
        # layers through the serial reference walk on a fresh store.
        replay_store = PartitionedStore(graph, HashPartitioner(PARTITIONS))
        for request, result in zip(requests, results):
            replay_reference(
                result, request, replay_store, worker_partition=0
            )
        assert store.summary == replay_store.summary
        # Worker-count invariance of the sampled layers themselves.
        if reference is None:
            reference = results
        else:
            for mine, theirs in zip(reference, results):
                for a, b in zip(mine.layers, theirs.layers):
                    np.testing.assert_array_equal(a, b)
        speedups[workers] = serial_s / elapsed
        rows.append(
            f"{workers:7d}  {elapsed * 1e3:9.2f}       {speedups[workers]:6.2f}x"
        )

    def run_once():
        _, results, _ = parallel_run(graph, requests[:2], 2)
        return results

    benchmark.pedantic(run_once, rounds=1, iterations=1)

    cores = available_cores()
    rows.append(f"host cores: {cores}")
    rows.append("accounting: byte-identical at every worker count")
    report(
        "Sharded parallel engine (ml instance, 2048 roots, "
        "batch 256, fanouts 10x10)",
        "\n".join(rows),
    )

    if cores >= 4:
        assert speedups[4] >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x at 4 workers on a "
            f"{cores}-core host, got {speedups[4]:.2f}x"
        )
    else:
        pytest.skip(
            f"scaling bar needs >= 4 cores (host has {cores}); "
            "parity assertions above still ran"
        )
