"""Figure 7: measured performance (latency) vs pipeline depth (Tech-1)."""

from repro.axe.fifo import Pipeline, split_work


WORK_CYCLES = 16
DEPTHS = (1, 2, 4, 8, 16)
ITEMS = 256


def sweep_depths():
    results = {}
    for depth in DEPTHS:
        pipeline = Pipeline(split_work(WORK_CYCLES, depth))
        results[depth] = pipeline.run(list(range(ITEMS))).cycles
    return results


def test_fig7_pipeline_depth(benchmark, report):
    results = benchmark.pedantic(sweep_depths, rounds=1, iterations=1)
    lines = ["depth  batch_latency(cycles)  speedup"]
    base = results[DEPTHS[0]]
    for depth in DEPTHS:
        lines.append(
            f"{depth:>5}  {results[depth]:>20}  {base / results[depth]:>7.2f}"
        )
    report(
        "Figure 7 — latency vs pipeline depth "
        f"({ITEMS} items, {WORK_CYCLES} cycles of work each)",
        "\n".join(lines),
    )
    # Shape: deeper pipeline, better performance — monotonic.
    latencies = [results[d] for d in DEPTHS]
    assert latencies == sorted(latencies, reverse=True)
    assert base / results[DEPTHS[-1]] > 8  # near-linear at depth 16
