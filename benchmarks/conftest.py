"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints the corresponding rows/series (run with ``-s`` to see them), in
addition to timing a representative kernel via pytest-benchmark.
"""

import pytest


@pytest.fixture
def report(capsys):
    """Print a report block even under captured output."""

    def _report(title, text):
        with capsys.disabled():
            print(f"\n=== {title} ===")
            print(text)

    return _report
