"""Figure 3: end-to-end LSD-GNN characterization (Table 3 application)."""

from repro.gnn.e2e import EndToEndModel


def compute_breakdowns():
    model = EndToEndModel()
    return model, model.breakdown(training=True), model.breakdown(training=False)


def test_fig3_e2e_breakdown(benchmark, report):
    model, train, infer = benchmark(compute_breakdowns)
    lines = [
        "phase      sampling%   embed%      nn%    total(ms/batch)",
        (
            f"training   {100 * train.sampling_fraction:>8.1f} "
            f"{100 * train.embedding_s / train.total_s:>8.1f} "
            f"{100 * train.nn_s / train.total_s:>8.1f} "
            f"{1e3 * train.total_s:>12.2f}"
        ),
        (
            f"inference  {100 * infer.sampling_fraction:>8.1f} "
            f"{100 * infer.embedding_s / infer.total_s:>8.1f} "
            f"{100 * infer.nn_s / infer.total_s:>8.1f} "
            f"{1e3 * infer.total_s:>12.2f}"
        ),
        f"graph-storage / NN-model bytes ratio: {model.storage_ratio():.2e}",
        "paper: sampling 64% (training) / 88% (inference); storage ratio ~1e5",
    ]
    report("Figure 3 — end-to-end characterization", "\n".join(lines))
    # Shape: sampling dominates both; more at inference; storage gap huge.
    assert 0.55 < train.sampling_fraction < 0.75
    assert 0.78 < infer.sampling_fraction < 0.95
    assert infer.sampling_fraction > train.sampling_fraction
    assert model.storage_ratio() > 1e5
