"""Pipelined sample→train engine: scaling, parity, and cache reuse.

The trainer is run at 0, 1, 2, and 4 workers on the ``ml``-shaped
synthetic instance. The determinism contract is asserted
unconditionally: epoch losses, the weights digest, and the merged
``AccessSummary`` are bit-identical at every worker count. The >= 2x
wall-clock bar at 4 workers only applies on hosts with >= 4 cores;
the neighborhood-cache epoch speedup is reported alongside.
"""

import os
import time

import numpy as np
import pytest

from repro.graph.datasets import instantiate_dataset
from repro.graph.partition import HashPartitioner
from repro.gnn.pipeline import PipelinedTrainer
from repro.memstore.store import PartitionedStore

MAX_NODES = 4000
BATCH_SIZE = 64
FANOUTS = (4, 3)
PARTITIONS = 4
NUM_LABELS = 4
EPOCHS = 3
WORKER_COUNTS = (0, 1, 2, 4)
SPEEDUP_FLOOR = 2.0


def available_cores() -> int:
    return len(os.sched_getaffinity(0))


def run_training(graph, labels, roots, workers, cached_epochs=0):
    """Timed epochs after one untimed warm-up; returns run artifacts."""
    store = PartitionedStore(graph, HashPartitioner(PARTITIONS))
    losses = []
    with PipelinedTrainer(
        store,
        labels,
        FANOUTS,
        seed=0,
        workers=workers,
        batch_size=BATCH_SIZE,
        cached_epochs=cached_epochs,
    ) as trainer:
        # Warm-up epoch absorbs pool startup; it runs identically at
        # every worker count, so parity covers it via the digest.
        losses.append(trainer.train_epoch(roots))
        start = time.perf_counter()
        for _ in range(EPOCHS):
            losses.append(trainer.train_epoch(roots))
        elapsed = time.perf_counter() - start
        digest = trainer.weights_digest()
    return elapsed, losses, digest, store.summary


def test_pipelined_training_scaling(benchmark, report):
    graph = instantiate_dataset("ml", max_nodes=MAX_NODES, seed=0)
    rng = np.random.default_rng(0)
    labels = (rng.random((graph.num_nodes, NUM_LABELS)) < 0.3).astype(
        np.float32
    )
    roots = np.arange(graph.num_nodes)

    rows = ["workers    s/epoch    vs workers=0"]
    elapsed = {}
    reference = None
    for workers in WORKER_COUNTS:
        seconds, losses, digest, summary = run_training(
            graph, labels, roots, workers
        )
        elapsed[workers] = seconds / EPOCHS
        # Bit-identical training at EVERY worker count.
        if reference is None:
            reference = (losses, digest, summary)
        else:
            assert losses == reference[0]
            assert digest == reference[1]
            assert summary == reference[2]
        rows.append(
            f"{workers:7d}  {elapsed[workers]:9.3f}"
            f"       {elapsed[0] / elapsed[workers]:6.2f}x"
        )

    # Neighborhood cache: epochs after the first are served from
    # memory; parity at cache-off was asserted above.
    fresh_s, _, _, _ = run_training(graph, labels, roots, 0)
    cached_s, _, _, summary = run_training(
        graph, labels, roots, 0, cached_epochs=EPOCHS + 1
    )
    assert summary.neighborhood_hits == EPOCHS * roots.size
    assert summary.neighborhood_misses == roots.size
    cache_speedup = fresh_s / cached_s
    rows.append(f"cached epochs: {cache_speedup:.2f}x vs re-sampling")

    def run_once():
        return run_training(graph, labels, roots[:512], 0)[2]

    benchmark.pedantic(run_once, rounds=1, iterations=1)

    cores = available_cores()
    rows.append(f"host cores: {cores}")
    rows.append("losses/weights: bit-identical at every worker count")
    report(
        "Pipelined sample->train engine (ml instance, "
        f"{graph.num_nodes} roots, batch {BATCH_SIZE}, fanouts 4x3)",
        "\n".join(rows),
    )

    if cores >= 4:
        speedup = elapsed[0] / elapsed[4]
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x at 4 workers on a "
            f"{cores}-core host, got {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"scaling bar needs >= 4 cores (host has {cores}); "
            "parity assertions above still ran"
        )
